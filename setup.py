"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools predates PEP 660 editable-wheel support
(``pip install -e .`` then falls back to the classic ``setup.py develop``
path, which needs this file).
"""

from setuptools import setup

setup()
