"""Wall-clock scaling of the campaign engine.

Two properties are measured:

* process-pool scaling -- the same small sweep at ``--jobs 1`` versus
  ``--jobs 4``.  On a multi-core machine the parallel run must not be slower
  than the serial one (the grid is embarrassingly parallel and only tiny
  picklable jobs cross the process boundary); on a single-core machine the
  assertion is skipped because a pool can only add overhead there.
* resume -- re-running a campaign against a populated result store must be
  far faster than computing it, since it executes zero simulations.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.campaign.engine import run_campaign
from repro.campaign.executors import ParallelExecutor, SerialExecutor
from repro.config.parameters import DataPolicySpec, TimingPolicyKind
from repro.config.presets import scaled_architecture
from repro.core.sweep import PolicyPoint
from repro.workloads.suite import WorkloadRequest

#: Grid sized so the serial run takes seconds: 2 apps x (baseline + 3 points).
POINTS = [
    PolicyPoint(50.0, TimingPolicyKind.PERIODIC, DataPolicySpec.all_lines()),
    PolicyPoint(50.0, TimingPolicyKind.REFRINT, DataPolicySpec.valid()),
    PolicyPoint(50.0, TimingPolicyKind.REFRINT, DataPolicySpec.writeback(32, 32)),
]

LENGTH_SCALE = 0.15


@pytest.fixture(scope="module")
def requests():
    return [
        WorkloadRequest(name, length_scale=LENGTH_SCALE)
        for name in ("fft", "blackscholes")
    ]


@pytest.fixture(scope="module")
def architecture():
    return scaled_architecture()


def _timed_campaign(requests, architecture, **kwargs):
    start = time.perf_counter()
    sweep, stats = run_campaign(
        requests, points=POINTS, architecture=architecture, **kwargs
    )
    return sweep, stats, time.perf_counter() - start


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="a 4-worker pool only reliably beats serial with >= 4 CPUs",
)
def test_parallel_campaign_not_slower_than_serial(requests, architecture):
    serial, _, serial_s = _timed_campaign(
        requests, architecture, executor=SerialExecutor()
    )
    # Best of two parallel runs: the pool's one-off start-up cost (process
    # spawn + interpreter re-import) should not fail a scaling assertion.
    timings = []
    for _ in range(2):
        parallel, _, parallel_s = _timed_campaign(
            requests, architecture, executor=ParallelExecutor(4)
        )
        assert parallel.to_dict() == serial.to_dict()
        timings.append(parallel_s)
    assert min(timings) <= serial_s * 1.25, (
        f"parallel campaign slower than serial: {min(timings):.2f}s vs {serial_s:.2f}s"
    )


def test_resumed_campaign_is_nearly_free(tmp_path, requests, architecture):
    store = tmp_path / "store"
    _, stats_cold, cold_s = _timed_campaign(
        requests, architecture, store=store, resume=True
    )
    assert stats_cold.executed == stats_cold.total
    _, stats_warm, warm_s = _timed_campaign(
        requests, architecture, store=store, resume=True
    )
    assert stats_warm.executed == 0
    assert warm_s < cold_s * 0.5, (
        f"resume barely faster than recompute: {warm_s:.2f}s vs {cold_s:.2f}s"
    )
