"""Store-throughput microbenchmark: puts/sec and resume-scan time at scale.

Measures the two operations that dominate a large campaign's non-simulation
cost -- committing a result (``put_record``) and reopening a populated
store for resume (the index replay / directory scan) -- at 10k synthetic
results on the segment backend, with the JSON backend measured at a tenth
of the volume for comparison (10k individual files would take minutes on
CI runners, which is precisely the problem the segment layout solves).

The emitted numbers (``BENCH_store.json``, trajectory-append like
``BENCH_hotpath.json``) are wall-clock and therefore recorded but **not**
gated; the assertions gate on exact counts only -- every put must be
resumable, recovery after a simulated crash must drop exactly one record,
and a migration must carry every entry -- so shared-runner timing noise
cannot fail the build.

Scale knob: ``REFRINT_STORE_BENCH_N`` (default 10000 synthetic results).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.campaign.segments import SegmentResultStore
from repro.campaign.store import ResultStore

#: Synthetic results committed to the segment backend.
N_RESULTS = int(os.environ.get("REFRINT_STORE_BENCH_N", "10000"))

#: The JSON backend writes one file per result; measure it at a tenth of
#: the volume so the comparison leg stays seconds, not minutes.
N_RESULTS_JSON = max(100, N_RESULTS // 10)

#: Sized so the 10k-point run spans many segments (~55 records each at the
#: ~7 KiB synthetic payload), exercising rollover and multi-segment replay.
SEGMENT_MAX_BYTES = 512 * 1024

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_store.json"


def synthetic_key(index: int) -> str:
    return hashlib.sha256(f"store-bench-{index}".encode()).hexdigest()


def synthetic_payload(index: int) -> dict:
    """A payload shaped like a real campaign entry (~7 KiB serialised)."""
    return {
        "job": {
            "key": synthetic_key(index),
            "application": "synthetic",
            "label": f"point-{index}",
            "length_scale": 1.0,
            "seed": index,
        },
        "hash_payload": {"workload": {"seed": index}, "config": {"point": index}},
        "result": {
            "label": f"point-{index}",
            "counters": {f"counter_{c:02d}": index * c for c in range(64)},
            "energy": {f"component_{c:02d}": index * 0.5 + c for c in range(32)},
            "trace": [index + offset for offset in range(512)],
        },
    }


def timed_puts(store, count: int) -> float:
    start = time.perf_counter()
    for index in range(count):
        store.put_record(synthetic_key(index), synthetic_payload(index))
    store.flush()
    return time.perf_counter() - start


def _append_trajectory_point(point: dict) -> None:
    history = []
    if BENCH_FILE.exists():
        try:
            history = json.loads(BENCH_FILE.read_text())
            if not isinstance(history, list):
                history = [history]
        except ValueError:
            history = []
    history.append(point)
    BENCH_FILE.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def emitted_point():
    point = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "n_results": N_RESULTS,
        "n_results_json": N_RESULTS_JSON,
    }
    yield point
    if os.environ.get("REFRINT_STORE_BENCH_EMIT") == "1":
        _append_trajectory_point(point)


@pytest.fixture(scope="module")
def populated_segment_store(tmp_path_factory, emitted_point):
    """The 10k-put leg; shared so the scan legs reuse the same store."""
    root = tmp_path_factory.mktemp("bench") / "segment"
    store = SegmentResultStore(root, segment_max_bytes=SEGMENT_MAX_BYTES)
    elapsed = timed_puts(store, N_RESULTS)
    store.close()
    emitted_point["segment_put_seconds"] = round(elapsed, 3)
    emitted_point["segment_puts_per_second"] = round(N_RESULTS / elapsed)
    emitted_point["segment_files"] = len(
        list((root / "segments").glob("seg-*.jsonl"))
    )
    return root


def test_segment_puts_all_resumable(populated_segment_store):
    """Gate: every committed record is present (exact count, no timing)."""
    store = SegmentResultStore(
        populated_segment_store, segment_max_bytes=SEGMENT_MAX_BYTES
    )
    assert len(store) == N_RESULTS
    assert store._read_record(synthetic_key(0))["job"]["application"] == "synthetic"
    assert store._read_record(synthetic_key(N_RESULTS - 1)) is not None


def test_segment_resume_scan(populated_segment_store, emitted_point):
    """Reopen the populated store cold: one index replay, exact count."""
    start = time.perf_counter()
    store = SegmentResultStore(
        populated_segment_store, segment_max_bytes=SEGMENT_MAX_BYTES
    )
    count = len(store)  # forces the index replay
    elapsed = time.perf_counter() - start
    assert count == N_RESULTS
    emitted_point["segment_resume_scan_seconds"] = round(elapsed, 3)


def test_segment_crash_recovery_scan(populated_segment_store, emitted_point):
    """Truncate the tail record; recovery must drop exactly one result."""
    import shutil

    crashed = populated_segment_store.parent / "segment-crashed"
    if crashed.exists():
        shutil.rmtree(crashed)
    shutil.copytree(populated_segment_store, crashed)
    last = sorted((crashed / "segments").glob("seg-*.jsonl"))[-1]
    blob = last.read_bytes()
    last.write_bytes(blob[: len(blob) - 20])
    start = time.perf_counter()
    store = SegmentResultStore(crashed, segment_max_bytes=SEGMENT_MAX_BYTES)
    count = len(store)
    elapsed = time.perf_counter() - start
    assert count == N_RESULTS - 1  # exactly the truncated record is gone
    emitted_point["segment_recovery_scan_seconds"] = round(elapsed, 3)


def test_json_put_and_scan_comparison(tmp_path, emitted_point):
    """The same workload on the per-file backend, at a tenth the volume."""
    root = tmp_path / "json"
    store = ResultStore(root)
    elapsed = timed_puts(store, N_RESULTS_JSON)
    emitted_point["json_put_seconds"] = round(elapsed, 3)
    emitted_point["json_puts_per_second"] = round(N_RESULTS_JSON / elapsed)
    start = time.perf_counter()
    reopened = ResultStore(root)
    count = len(reopened)  # forces the directory scan
    emitted_point["json_resume_scan_seconds"] = round(
        time.perf_counter() - start, 3
    )
    assert count == N_RESULTS_JSON


def test_migration_carries_every_entry(tmp_path, emitted_point):
    """Gate: segment -> json migration at small scale copies exact counts."""
    from repro.campaign.maintenance import migrate_store

    source_root = tmp_path / "mig-src"
    source = SegmentResultStore(source_root, segment_max_bytes=SEGMENT_MAX_BYTES)
    count = min(500, N_RESULTS)
    timed_puts(source, count)
    source.close()
    start = time.perf_counter()
    copied, skipped = migrate_store(source_root, tmp_path / "mig-dst", "json")
    emitted_point["migrate_500_seconds"] = round(time.perf_counter() - start, 3)
    assert (copied, skipped) == (count, 0)
    assert len(ResultStore(tmp_path / "mig-dst")) == count
