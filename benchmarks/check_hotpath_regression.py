"""Gate the freshly emitted hot-path benchmark point against the trajectory.

Usage (the CI smoke job, after running ``test_hotpath.py`` with
``REFRINT_HOTPATH_EMIT=1``)::

    python benchmarks/check_hotpath_regression.py

The script takes the *last* entry of ``BENCH_hotpath.json`` as the fresh
measurement and the latest *earlier* entry with the same ``quick_mode``
flag (i.e. the committed baseline) as the reference, then fails on a
>10% regression of:

* ``runahead.events_popped`` -- events popped per simulation.  This is a
  pure function of the code and the workload, so any growth is a real
  event-loop regression, not runner noise;
* ``event_reduction`` -- the staged-vs-runahead event-count factor,
  equally deterministic;
* ``runahead.protocol_calls`` and ``protocol_call_reduction`` (plus the
  private-hit leg's reduction) -- the protocol batching factor of the
  hit-run access path, equally deterministic.  Compared only when the
  baseline already records them (older trajectory points predate the
  metric);
* ``kernel_coverage`` (both legs) and ``kernel.protocol_calls`` -- the
  share of private-hit references retired through batch-replay kernel
  scans and the kernel leg's protocol-call count, both exact functions of
  the code and the workload.  Compared only when both points record a
  kernel leg (older points, and no-numpy hosts, have none);
* ``speedup`` / ``staged_speedup`` -- same-host wall-clock ratios
  (object time over run-ahead / staged time), where machine speed cancels
  out and only the relative cost of the fast paths remains.  These get a
  wider band: even as a ratio, best-of-N wall clock on a shared runner
  jitters far more than 10% (the absolute floor inside the benchmark test
  itself still applies on top).

Exits 0 when no committed baseline with a matching mode exists yet (first
run of a new mode seeds the trajectory).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

#: Allowed relative regression of the deterministic event-count metrics.
TOLERANCE = 0.10

#: Allowed relative regression of the wall-clock speedup ratios.
WALL_TOLERANCE = 0.30


def main() -> int:
    if not BENCH_FILE.exists():
        print(f"no {BENCH_FILE.name}; nothing to check")
        return 0
    history = json.loads(BENCH_FILE.read_text())
    if not isinstance(history, list) or len(history) < 2:
        print("fewer than two trajectory points; nothing to compare")
        return 0
    fresh = history[-1]
    baseline = next(
        (
            point
            for point in reversed(history[:-1])
            if point.get("quick_mode") == fresh.get("quick_mode")
            and "runahead" in point
        ),
        None,
    )
    if baseline is None:
        print("no committed baseline for this mode yet; seeding the trajectory")
        return 0

    failures = []

    def require(name: str, fresh_value: float, baseline_value: float,
                lower_is_better: bool, tolerance: float = TOLERANCE) -> None:
        if baseline_value <= 0:
            return
        if lower_is_better:
            limit = baseline_value * (1.0 + tolerance)
            ok = fresh_value <= limit
            direction = "<="
        else:
            limit = baseline_value * (1.0 - tolerance)
            ok = fresh_value >= limit
            direction = ">="
        status = "ok" if ok else "REGRESSION"
        print(
            f"{name}: {fresh_value} (baseline {baseline_value}, "
            f"require {direction} {limit:.3f}) {status}"
        )
        if not ok:
            failures.append(name)

    require(
        "runahead.events_popped",
        fresh["runahead"]["events_popped"],
        baseline["runahead"]["events_popped"],
        lower_is_better=True,
    )
    require(
        "event_reduction",
        fresh["event_reduction"],
        baseline["event_reduction"],
        lower_is_better=False,
    )
    if "protocol_calls" in baseline.get("runahead", {}):
        require(
            "runahead.protocol_calls",
            fresh["runahead"]["protocol_calls"],
            baseline["runahead"]["protocol_calls"],
            lower_is_better=True,
        )
    if "protocol_call_reduction" in baseline:
        require(
            "protocol_call_reduction",
            fresh["protocol_call_reduction"],
            baseline["protocol_call_reduction"],
            lower_is_better=False,
        )
    if "private_hit" in baseline and "private_hit" in fresh:
        require(
            "private_hit.protocol_call_reduction",
            fresh["private_hit"]["protocol_call_reduction"],
            baseline["private_hit"]["protocol_call_reduction"],
            lower_is_better=False,
        )
    if "kernel" in baseline and "kernel" in fresh:
        require(
            "kernel_coverage",
            fresh["kernel_coverage"],
            baseline["kernel_coverage"],
            lower_is_better=False,
        )
        require(
            "kernel.protocol_calls",
            fresh["kernel"]["protocol_calls"],
            baseline["kernel"]["protocol_calls"],
            lower_is_better=True,
        )
    fresh_ph = fresh.get("private_hit", {})
    base_ph = baseline.get("private_hit", {})
    if "kernel" in base_ph and "kernel" in fresh_ph:
        require(
            "private_hit.kernel_coverage",
            fresh_ph["kernel_coverage"],
            base_ph["kernel_coverage"],
            lower_is_better=False,
        )
        require(
            "private_hit.kernel.protocol_calls",
            fresh_ph["kernel"]["protocol_calls"],
            base_ph["kernel"]["protocol_calls"],
            lower_is_better=True,
        )
    require(
        "speedup", fresh["speedup"], baseline["speedup"],
        lower_is_better=False, tolerance=WALL_TOLERANCE,
    )
    require(
        "staged_speedup",
        fresh["staged_speedup"],
        baseline["staged_speedup"],
        lower_is_better=False,
        tolerance=WALL_TOLERANCE,
    )

    if failures:
        print(f"hot-path regression in: {', '.join(failures)}")
        return 1
    print("hot-path gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
