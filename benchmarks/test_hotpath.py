"""Hot-path benchmark: object backend vs staged array path vs run-ahead.

One single job -- the paper's headline configuration, Refrint with
WB(32, 32) at 50 us retention -- is simulated three ways:

* ``object``: the original one-object-per-line model replayed one heap
  event per reference (the seed's configuration);
* ``staged``: the struct-of-arrays staged path of PR 2, still replayed
  per-reference through the event queue;
* ``runahead``: the staged path driven by the run-ahead replay loop, with
  refresh timers drained in bulk from the calendar queue.

All three produce byte-identical results (pinned here and by
``tests/test_backend_equivalence.py``).  Each variant records wall-clock,
accesses-per-second and -- the structural metric the event-loop overhaul
is about -- *events popped per simulation*, which is deterministic for a
given code version and therefore comparable across machines.

Results are appended as a trajectory point to ``BENCH_hotpath.json`` in
the repository root when ``REFRINT_HOTPATH_EMIT=1`` is set (the CI smoke
job sets it; plain test runs must not dirty the committed trajectory), so
the speedup is visible over the project's history.  The file is always
appended to, never overwritten.

Quick mode (``REFRINT_HOTPATH_QUICK=1``, used by the CI smoke job) runs a
shorter trace with a relaxed gate so shared-runner noise cannot flake the
build.  The wall-clock gates are same-host ratios (best-of-N over
best-of-N), so machine load cancels out of the comparison; the event-count
gate is exact.  ``benchmarks/check_hotpath_regression.py`` additionally
compares the emitted point against the committed trajectory.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.config.parameters import (
    DataPolicySpec,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.config.presets import scaled_architecture, scaled_retention_cycles
from repro.core.simulator import RefrintSimulator
from repro.workloads.suite import build_application

QUICK = os.environ.get("REFRINT_HOTPATH_QUICK", "") not in ("", "0")
EMIT = os.environ.get("REFRINT_HOTPATH_EMIT", "") not in ("", "0")

#: Trace length and required run-ahead-vs-object speedup per mode.
LENGTH_SCALE = 0.1 if QUICK else 0.3
MIN_SPEEDUP = 1.2 if QUICK else 2.0

#: Required event-count reduction of run-ahead replay over per-reference
#: (staged) replay on this job.  Exact counts, no timing noise involved.
MIN_EVENT_REDUCTION = 5.0

#: Timing repetitions (best-of): absorbs scheduler noise on shared runners.
#: Overridable for very noisy hosts, where more rounds give best-of a
#: better chance of hitting an undisturbed slot.
ROUNDS = int(os.environ.get("REFRINT_HOTPATH_ROUNDS", "0")) or (2 if QUICK else 3)

#: The three measured variants: label -> (cache backend, replay mode).
VARIANTS = {
    "object": ("object", "event"),
    "staged": ("array", "event"),
    "runahead": ("array", "runahead"),
}

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


@pytest.fixture(scope="module")
def config():
    architecture = scaled_architecture()
    retention = scaled_retention_cycles(50.0)
    refresh = RefreshConfig(
        retention_cycles=retention,
        sentry_margin_cycles=RefreshConfig.derive_sentry_margin(
            architecture.l3_bank.num_lines, retention
        ),
        timing_policy=TimingPolicyKind.REFRINT,
        l3_data_policy=DataPolicySpec.writeback(32, 32),
    )
    return SimulationConfig.edram(refresh, architecture)


@pytest.fixture(scope="module")
def workload(config):
    return build_application(
        "fft", config.architecture, length_scale=LENGTH_SCALE
    )


def _measure(config, workload, backend: str, replay: str):
    """Best-of-N wall-clock for one variant; returns (seconds, result, stats)."""
    best = None
    result = None
    stats = None
    for _ in range(ROUNDS):
        simulator = RefrintSimulator(config, cache_backend=backend, replay=replay)
        start = time.perf_counter()
        result = simulator.run(workload)
        elapsed = time.perf_counter() - start
        stats = simulator.last_replay_stats
        if best is None or elapsed < best:
            best = elapsed
    return best, result, stats


def _accesses(result) -> int:
    """Data references retired (each hits the L1D exactly once)."""
    return result.counter("l1d_reads") + result.counter("l1d_writes")


def _append_trajectory_point(point: dict) -> None:
    history = []
    if BENCH_FILE.exists():
        try:
            history = json.loads(BENCH_FILE.read_text())
            if not isinstance(history, list):
                history = [history]
        except ValueError:
            history = []
    history.append(point)
    BENCH_FILE.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


def test_hotpath_object_vs_staged_vs_runahead(config, workload):
    measurements = {
        label: _measure(config, workload, backend, replay)
        for label, (backend, replay) in VARIANTS.items()
    }

    results = {label: m[1] for label, m in measurements.items()}
    accesses = _accesses(results["runahead"])
    canonical = {
        label: json.dumps(result.to_dict(), sort_keys=True)
        for label, result in results.items()
    }
    assert canonical["object"] == canonical["staged"] == canonical["runahead"]

    point = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick_mode": QUICK,
        "application": workload.name,
        "length_scale": LENGTH_SCALE,
        "config": config.label,
        "accesses": accesses,
    }
    for label, (seconds, _result, stats) in measurements.items():
        point[label] = {
            "wall_seconds": round(seconds, 4),
            "accesses_per_second": round(accesses / seconds),
            "events_popped": stats.events_popped,
        }
    speedup = measurements["object"][0] / measurements["runahead"][0]
    event_reduction = (
        measurements["staged"][2].events_popped
        / max(1, measurements["runahead"][2].events_popped)
    )
    point["speedup"] = round(speedup, 3)
    point["staged_speedup"] = round(
        measurements["object"][0] / measurements["staged"][0], 3
    )
    point["event_reduction"] = round(event_reduction, 2)
    if EMIT:
        _append_trajectory_point(point)

    assert event_reduction >= MIN_EVENT_REDUCTION, (
        f"run-ahead replay only cut events by {event_reduction:.1f}x "
        f"(staged {measurements['staged'][2].events_popped}, "
        f"runahead {measurements['runahead'][2].events_popped}; "
        f"required {MIN_EVENT_REDUCTION}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"run-ahead path only {speedup:.2f}x faster than the object backend "
        f"(required {MIN_SPEEDUP}x; object {measurements['object'][0]:.3f}s, "
        f"runahead {measurements['runahead'][0]:.3f}s)"
    )
