"""Hot-path benchmark: object backend vs staged array path vs run-ahead.

Two jobs are measured:

* the paper's headline configuration -- Refrint with WB(32, 32) at 50 us
  retention running ``fft`` -- simulated three ways: ``object`` (the
  original one-object-per-line model replayed one heap event per
  reference), ``staged`` (the struct-of-arrays staged path of PR 2,
  still replayed per-reference), and ``runahead`` (the staged path driven
  by the run-ahead replay loop with the batched hit-run access path);
* a *private-hit leg* -- the same configuration running ``blackscholes``,
  whose working set lives almost entirely in the private L1/L2 -- measured
  on the staged backend under both replay modes.  This is the job the
  protocol-level access batching is about: nearly every reference rides a
  hit run.

When numpy is installed, both jobs additionally measure a ``kernel`` leg:
the run-ahead loop with the columnar batch-replay kernel
(``kernel="numpy"``), which retires whole private-hit stretches per call.
The kernel leg is gated on two *exact* counts, not wall-clock: at least
``MIN_KERNEL_COVERAGE`` of the private-hit references must retire through
kernel batches, and its ``protocol_calls`` must equal the plain run-ahead
leg's (the kernel batches scans, it must never add protocol traffic).
Wall-clock is recorded but not gated -- at benchmark trace lengths the
Python-side staging overhead dominates and the kernel is not expected to
win; the gate is coverage, which is what scales.

All variants of a job produce byte-identical results (pinned here and by
``tests/test_backend_equivalence.py``).  Each variant records wall-clock,
accesses-per-second and two *exact* structural metrics:

* ``events_popped`` -- events through the heap per simulation (the PR 3
  event-loop metric);
* ``protocol_calls`` -- access-path protocol invocations (reads, writes
  and instruction fetches walked individually, plus one per committed hit
  run), with ``run_landings`` (bulk timestamp landings) reported next to
  it so the batching factor hides nothing.  Per-reference replay walks the
  protocol once per reference, so ``protocol_calls(event) /
  protocol_calls(runahead)`` is the batching factor of the hit-run path.

Both metrics are pure functions of the code and the workload --
deterministic, comparable across machines, and gated with no timing noise.

Results are appended as a trajectory point to ``BENCH_hotpath.json`` in
the repository root when ``REFRINT_HOTPATH_EMIT=1`` is set (the CI smoke
job sets it; plain test runs must not dirty the committed trajectory), so
the speedup is visible over the project's history.  The file is always
appended to, never overwritten.

Quick mode (``REFRINT_HOTPATH_QUICK=1``, used by the CI smoke job) runs a
shorter trace with relaxed gates so shared-runner noise cannot flake the
build; the shorter trace also has a larger cold-miss share, so the exact
protocol-call gate is mode-dependent.  The wall-clock gates are same-host
ratios (best-of-N over best-of-N), so machine load cancels out of the
comparison; the event-count and protocol-call gates are exact.
``benchmarks/check_hotpath_regression.py`` additionally compares the
emitted point against the committed trajectory.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.config.parameters import (
    DataPolicySpec,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.config.presets import scaled_architecture, scaled_retention_cycles
from repro.core.simulator import RefrintSimulator
from repro.mem.arrays import HAVE_NUMPY
from repro.workloads.suite import build_application

QUICK = os.environ.get("REFRINT_HOTPATH_QUICK", "") not in ("", "0")
EMIT = os.environ.get("REFRINT_HOTPATH_EMIT", "") not in ("", "0")

#: Trace length and required run-ahead-vs-object speedup per mode.
LENGTH_SCALE = 0.1 if QUICK else 0.3
MIN_SPEEDUP = 1.2 if QUICK else 2.0

#: Required event-count reduction of run-ahead replay over per-reference
#: (staged) replay on this job.  Exact counts, no timing noise involved.
MIN_EVENT_REDUCTION = 5.0

#: Required protocol-call reduction of the batched hit-run path over
#: per-reference replay, per job.  Exact counts.  Quick mode's shorter
#: traces are proportionally colder (more compulsory misses, which stay
#: slow-path), hence the lower bar.
MIN_PROTOCOL_REDUCTION = 4.0 if QUICK else 5.0

#: Required share of private-hit references retired through kernel
#: batches (exact counts: ``kernel_accesses / private_hit_references``).
#: Both benchmark applications measure ~0.97-0.98 at these trace lengths.
MIN_KERNEL_COVERAGE = 0.90

#: Timing repetitions (best-of): absorbs scheduler noise on shared runners.
#: Overridable for very noisy hosts, where more rounds give best-of a
#: better chance of hitting an undisturbed slot.
ROUNDS = int(os.environ.get("REFRINT_HOTPATH_ROUNDS", "0")) or (2 if QUICK else 3)

#: The measured variants: label -> (cache backend, replay mode, kernel).
VARIANTS = {
    "object": ("object", "event", "off"),
    "staged": ("array", "event", "off"),
    "runahead": ("array", "runahead", "off"),
}
if HAVE_NUMPY:
    VARIANTS["kernel"] = ("array", "runahead", "numpy")

#: The private-hit leg's application and measured variants.
PRIVATE_HIT_APPLICATION = "blackscholes"
PRIVATE_HIT_VARIANTS = {
    "staged": ("array", "event", "off"),
    "runahead": ("array", "runahead", "off"),
}
if HAVE_NUMPY:
    PRIVATE_HIT_VARIANTS["kernel"] = ("array", "runahead", "numpy")

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


@pytest.fixture(scope="module")
def config():
    architecture = scaled_architecture()
    retention = scaled_retention_cycles(50.0)
    refresh = RefreshConfig(
        retention_cycles=retention,
        sentry_margin_cycles=RefreshConfig.derive_sentry_margin(
            architecture.l3_bank.num_lines, retention
        ),
        timing_policy=TimingPolicyKind.REFRINT,
        l3_data_policy=DataPolicySpec.writeback(32, 32),
    )
    return SimulationConfig.edram(refresh, architecture)


@pytest.fixture(scope="module")
def workload(config):
    return build_application(
        "fft", config.architecture, length_scale=LENGTH_SCALE
    )


def _measure(config, workload, backend: str, replay: str, kernel: str = "off"):
    """Best-of-N wall-clock for one variant; returns (seconds, result, stats)."""
    best = None
    result = None
    stats = None
    for _ in range(ROUNDS):
        simulator = RefrintSimulator(
            config, cache_backend=backend, replay=replay, kernel=kernel
        )
        start = time.perf_counter()
        result = simulator.run(workload)
        elapsed = time.perf_counter() - start
        stats = simulator.last_replay_stats
        if best is None or elapsed < best:
            best = elapsed
    return best, result, stats


def _accesses(result) -> int:
    """Data references retired (each hits the L1D exactly once)."""
    return result.counter("l1d_reads") + result.counter("l1d_writes")


def _variant_point(seconds: float, accesses: int, stats) -> dict:
    point = {
        "wall_seconds": round(seconds, 4),
        "accesses_per_second": round(accesses / seconds),
        "events_popped": stats.events_popped,
        "protocol_calls": stats.protocol_calls,
        "run_landings": stats.run_landings,
    }
    if stats.kernel_batches:
        point["kernel_batches"] = stats.kernel_batches
        point["kernel_accesses"] = stats.kernel_accesses
        point["slow_references"] = stats.slow_references
        point["kernel_coverage"] = round(stats.kernel_coverage, 4)
    return point


def _append_trajectory_point(point: dict) -> None:
    history = []
    if BENCH_FILE.exists():
        try:
            history = json.loads(BENCH_FILE.read_text())
            if not isinstance(history, list):
                history = [history]
        except ValueError:
            history = []
    history.append(point)
    BENCH_FILE.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def emitted_point():
    """Mutable trajectory point shared by the tests; emitted at teardown."""
    point = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick_mode": QUICK,
        "length_scale": LENGTH_SCALE,
    }
    yield point
    # Emit only complete points: the tests record their fields after all
    # gates pass, so a failed gate (or a -k selection that skips a test)
    # leaves them unset and nothing partial or regressed can enter the
    # trajectory, where it would become the next baseline.
    if EMIT and "runahead" in point and "private_hit" in point:
        _append_trajectory_point(point)


def _gate_kernel(measurements: dict, job: str) -> None:
    """Exact-count gates for the kernel leg of one job (if measured)."""
    if "kernel" not in measurements:
        return
    stats = measurements["kernel"][2]
    plain = measurements["runahead"][2]
    # Exact counts: >= MIN_KERNEL_COVERAGE of the private-hit stream must
    # retire through kernel batches.  Integer arithmetic, no float slack.
    assert (
        stats.kernel_accesses * 100
        >= int(MIN_KERNEL_COVERAGE * 100) * stats.private_hit_references
    ), (
        f"kernel batches only cover {stats.kernel_coverage:.3f} of the "
        f"private-hit references on {job} "
        f"(kernel_accesses {stats.kernel_accesses}, "
        f"private_hit {stats.private_hit_references}; "
        f"required {MIN_KERNEL_COVERAGE})"
    )
    assert stats.protocol_calls == plain.protocol_calls, (
        f"kernel leg changed the protocol-call count on {job} "
        f"(kernel {stats.protocol_calls}, runahead {plain.protocol_calls}); "
        f"batching must never add protocol traffic"
    )


def test_hotpath_object_vs_staged_vs_runahead(config, workload, emitted_point):
    measurements = {
        label: _measure(config, workload, backend, replay, kernel)
        for label, (backend, replay, kernel) in VARIANTS.items()
    }

    results = {label: m[1] for label, m in measurements.items()}
    accesses = _accesses(results["runahead"])
    canonical = {
        label: json.dumps(result.to_dict(), sort_keys=True)
        for label, result in results.items()
    }
    for label in canonical:
        assert canonical[label] == canonical["object"], label

    speedup = measurements["object"][0] / measurements["runahead"][0]
    event_reduction = (
        measurements["staged"][2].events_popped
        / max(1, measurements["runahead"][2].events_popped)
    )
    protocol_reduction = (
        measurements["staged"][2].protocol_calls
        / max(1, measurements["runahead"][2].protocol_calls)
    )

    assert event_reduction >= MIN_EVENT_REDUCTION, (
        f"run-ahead replay only cut events by {event_reduction:.1f}x "
        f"(staged {measurements['staged'][2].events_popped}, "
        f"runahead {measurements['runahead'][2].events_popped}; "
        f"required {MIN_EVENT_REDUCTION}x)"
    )
    assert protocol_reduction >= MIN_PROTOCOL_REDUCTION, (
        f"hit-run batching only cut protocol calls by {protocol_reduction:.1f}x "
        f"(staged {measurements['staged'][2].protocol_calls}, "
        f"runahead {measurements['runahead'][2].protocol_calls}; "
        f"required {MIN_PROTOCOL_REDUCTION}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"run-ahead path only {speedup:.2f}x faster than the object backend "
        f"(required {MIN_SPEEDUP}x; object {measurements['object'][0]:.3f}s, "
        f"runahead {measurements['runahead'][0]:.3f}s)"
    )
    _gate_kernel(measurements, workload.name)

    # Record only after every gate has passed: a regressed point must never
    # enter the trajectory, where it would become the next baseline.
    point = emitted_point
    point["application"] = workload.name
    point["config"] = config.label
    point["accesses"] = accesses
    for label, (seconds, _result, stats) in measurements.items():
        point[label] = _variant_point(seconds, accesses, stats)
    point["speedup"] = round(speedup, 3)
    point["staged_speedup"] = round(
        measurements["object"][0] / measurements["staged"][0], 3
    )
    point["event_reduction"] = round(event_reduction, 2)
    point["protocol_call_reduction"] = round(protocol_reduction, 2)
    if "kernel" in measurements:
        point["kernel_coverage"] = round(
            measurements["kernel"][2].kernel_coverage, 4
        )


def test_hotpath_private_hit_batching(config, emitted_point):
    """The private-hit leg: protocol batching on an L1/L2-resident workload."""
    workload = build_application(
        PRIVATE_HIT_APPLICATION, config.architecture, length_scale=LENGTH_SCALE
    )
    measurements = {
        label: _measure(config, workload, backend, replay, kernel)
        for label, (backend, replay, kernel) in PRIVATE_HIT_VARIANTS.items()
    }
    canonical = {
        label: json.dumps(m[1].to_dict(), sort_keys=True)
        for label, m in measurements.items()
    }
    for label in canonical:
        assert canonical[label] == canonical["staged"], label

    accesses = _accesses(measurements["runahead"][1])
    protocol_reduction = (
        measurements["staged"][2].protocol_calls
        / max(1, measurements["runahead"][2].protocol_calls)
    )
    assert protocol_reduction >= MIN_PROTOCOL_REDUCTION, (
        f"hit-run batching only cut protocol calls by {protocol_reduction:.1f}x "
        f"on the private-hit leg "
        f"(staged {measurements['staged'][2].protocol_calls}, "
        f"runahead {measurements['runahead'][2].protocol_calls}; "
        f"required {MIN_PROTOCOL_REDUCTION}x)"
    )
    _gate_kernel(measurements, workload.name)
    # Only gate-passing measurements enter the trajectory.
    emitted_point["private_hit"] = {
        "application": workload.name,
        "accesses": accesses,
        "protocol_call_reduction": round(protocol_reduction, 2),
        **{
            label: _variant_point(m[0], accesses, m[2])
            for label, m in measurements.items()
        },
    }
    if "kernel" in measurements:
        emitted_point["private_hit"]["kernel_coverage"] = round(
            measurements["kernel"][2].kernel_coverage, 4
        )
