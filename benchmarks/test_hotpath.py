"""Old-vs-new hot-path benchmark: object backend versus array backend.

One single job -- the paper's headline configuration, Refrint with
WB(32, 32) at 50 us retention -- is simulated through both cache backends.
The object backend is the original one-object-per-line model (dataclass
allocations and property chains on every access); the array backend is the
struct-of-arrays staged path.  Both produce byte-identical results (pinned
by ``tests/test_backend_equivalence.py``); this benchmark tracks the price
of the old representation and gates against regressions of the new one.

Wall-clock and accesses-per-second (data references retired per second of
host time) for both backends are appended as a trajectory point to
``BENCH_hotpath.json`` in the repository root when ``REFRINT_HOTPATH_EMIT=1``
is set (the CI smoke job sets it; plain test runs must not dirty the
committed trajectory), so the speedup is visible over the project's
history.

Quick mode (``REFRINT_HOTPATH_QUICK=1``, used by the CI smoke job) runs a
shorter trace with a relaxed gate so shared-runner noise cannot flake the
build; the full run asserts the refactor's >= 2x target.  The gate is a
same-host ratio (best-of-N object time over best-of-N array time), so
machine load cancels out of the comparison.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.config.parameters import (
    DataPolicySpec,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.config.presets import scaled_architecture, scaled_retention_cycles
from repro.core.simulator import RefrintSimulator
from repro.workloads.suite import build_application

QUICK = os.environ.get("REFRINT_HOTPATH_QUICK", "") not in ("", "0")
EMIT = os.environ.get("REFRINT_HOTPATH_EMIT", "") not in ("", "0")

#: Trace length and required array-vs-object speedup per mode.
LENGTH_SCALE = 0.1 if QUICK else 0.3
MIN_SPEEDUP = 1.2 if QUICK else 2.0

#: Timing repetitions (best-of): absorbs scheduler noise on shared runners.
ROUNDS = 2 if QUICK else 3

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


@pytest.fixture(scope="module")
def config():
    architecture = scaled_architecture()
    retention = scaled_retention_cycles(50.0)
    refresh = RefreshConfig(
        retention_cycles=retention,
        sentry_margin_cycles=RefreshConfig.derive_sentry_margin(
            architecture.l3_bank.num_lines, retention
        ),
        timing_policy=TimingPolicyKind.REFRINT,
        l3_data_policy=DataPolicySpec.writeback(32, 32),
    )
    return SimulationConfig.edram(refresh, architecture)


@pytest.fixture(scope="module")
def workload(config):
    return build_application(
        "fft", config.architecture, length_scale=LENGTH_SCALE
    )


def _measure(config, workload, backend: str):
    """Best-of-N wall-clock for one backend; returns (seconds, result)."""
    best = None
    result = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = RefrintSimulator(config, cache_backend=backend).run(workload)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _accesses(result) -> int:
    """Data references retired (each hits the L1D exactly once)."""
    return result.counter("l1d_reads") + result.counter("l1d_writes")


def _append_trajectory_point(point: dict) -> None:
    history = []
    if BENCH_FILE.exists():
        try:
            history = json.loads(BENCH_FILE.read_text())
            if not isinstance(history, list):
                history = [history]
        except ValueError:
            history = []
    history.append(point)
    BENCH_FILE.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


def test_hotpath_object_vs_array(config, workload):
    object_seconds, object_result = _measure(config, workload, "object")
    array_seconds, array_result = _measure(config, workload, "array")

    accesses = _accesses(array_result)
    assert accesses == _accesses(object_result)
    speedup = object_seconds / array_seconds
    point = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick_mode": QUICK,
        "application": workload.name,
        "length_scale": LENGTH_SCALE,
        "config": config.label,
        "accesses": accesses,
        "object": {
            "wall_seconds": round(object_seconds, 4),
            "accesses_per_second": round(accesses / object_seconds),
        },
        "array": {
            "wall_seconds": round(array_seconds, 4),
            "accesses_per_second": round(accesses / array_seconds),
        },
        "speedup": round(speedup, 3),
    }
    if EMIT:
        _append_trajectory_point(point)

    assert array_result.execution_cycles == object_result.execution_cycles
    assert speedup >= MIN_SPEEDUP, (
        f"array backend only {speedup:.2f}x faster than the object backend "
        f"(required {MIN_SPEEDUP}x; object {object_seconds:.3f}s, "
        f"array {array_seconds:.3f}s)"
    )
