"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's tables/figures: they quantify the sensitivity of
Refrint to its two main microarchitectural parameters -- the Sentry-bit
margin (Section 4.1) and the sentry grouping factor (Section 5) -- and the
effect of asymmetric WB(n, m) tuples, which the paper mentions but does not
sweep.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config.parameters import (
    DataPolicySpec,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.config.presets import scaled_architecture, scaled_retention_cycles
from repro.core.simulator import RefrintSimulator
from repro.workloads.suite import build_application

LENGTH = 0.15


@pytest.fixture(scope="module")
def architecture():
    return scaled_architecture()


@pytest.fixture(scope="module")
def workload(architecture):
    return build_application("fft", architecture, length_scale=LENGTH)


def _refresh(architecture, margin=None, data=None):
    retention = scaled_retention_cycles(50.0)
    if margin is None:
        margin = RefreshConfig.derive_sentry_margin(
            architecture.l3_bank.num_lines, retention
        )
    return RefreshConfig(
        retention_cycles=retention,
        sentry_margin_cycles=margin,
        timing_policy=TimingPolicyKind.REFRINT,
        l3_data_policy=data or DataPolicySpec.valid(),
    )


def test_ablation_sentry_margin(benchmark, architecture, workload):
    """A tighter Sentry margin means fewer refreshes per line (Section 4.1)."""

    def run():
        results = {}
        retention = scaled_retention_cycles(50.0)
        for label, margin in (
            ("conservative (= lines per bank)", architecture.l3_bank.num_lines),
            ("tight (1/8 of retention)", retention // 8),
        ):
            config = SimulationConfig.edram(
                _refresh(architecture, margin=margin), architecture
            )
            results[label] = RefrintSimulator(config).run(workload)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    conservative = results["conservative (= lines per bank)"]
    tight = results["tight (1/8 of retention)"]
    print("\nsentry margin ablation (L3 refreshes):")
    for label, result in results.items():
        print(f"  {label:32s} {result.counter('l3_refreshes')}")
    assert tight.counter("l3_refreshes") <= conservative.counter("l3_refreshes")
    assert tight.counter("decay_violations") == 0


def test_ablation_asymmetric_wb_tuples(benchmark, architecture, workload):
    """WB(n, m) with n > m keeps dirty lines longer, trading DRAM writes."""

    def run():
        results = {}
        for n, m in ((4, 4), (16, 4), (4, 16)):
            data = DataPolicySpec.writeback(n, m)
            config = SimulationConfig.edram(
                _refresh(architecture, data=data), architecture
            )
            results[(n, m)] = RefrintSimulator(config).run(workload)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print("\nasymmetric WB(n,m) ablation:")
    for (n, m), result in results.items():
        print(
            f"  WB({n},{m}): dram={result.counter('dram_accesses')} "
            f"l3_refreshes={result.counter('l3_refreshes')} "
            f"invalidations={result.counter('l3_policy_invalidations')}"
        )
    # Keeping dirty lines longer (larger n) must not increase DRAM accesses.
    assert (
        results[(16, 4)].counter("dram_accesses")
        <= results[(4, 4)].counter("dram_accesses") * 1.05
    )


def test_ablation_periodic_group_count(benchmark, architecture, workload):
    """More refresh groups shorten each blocking burst of the periodic scheme."""

    def run():
        results = {}
        for groups in (1, 4, 16):
            l3 = dataclasses.replace(architecture.l3_bank, num_refresh_groups=groups)
            arch = dataclasses.replace(architecture, l3_bank=l3)
            retention = scaled_retention_cycles(50.0)
            refresh = RefreshConfig(
                retention_cycles=retention,
                sentry_margin_cycles=RefreshConfig.derive_sentry_margin(
                    arch.l3_bank.num_lines, retention
                ),
                timing_policy=TimingPolicyKind.PERIODIC,
                l3_data_policy=DataPolicySpec.all_lines(),
            )
            config = SimulationConfig.edram(refresh, arch)
            results[groups] = RefrintSimulator(config).run(workload)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print("\nperiodic group-count ablation (execution cycles):")
    for groups, result in results.items():
        print(f"  {groups:3d} groups: {result.execution_cycles}")
    # A single monolithic refresh pass blocks the bank longest.
    assert results[16].execution_cycles <= results[1].execution_cycles
