"""Throughput benchmarks of the simulator itself.

These do not correspond to a paper table or figure; they track how fast the
substrates run (references simulated per second for each configuration
family and the cost of one full sweep point), which is what determines how
large an experiment the harness can afford.
"""

from __future__ import annotations

import pytest

from repro.config.parameters import (
    DataPolicySpec,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.config.presets import scaled_architecture, scaled_retention_cycles
from repro.core.simulator import RefrintSimulator
from repro.workloads.suite import build_application

#: Trace length used by the throughput benchmarks (short but non-trivial).
LENGTH = 0.15


@pytest.fixture(scope="module")
def architecture():
    return scaled_architecture()


@pytest.fixture(scope="module")
def workload(architecture):
    return build_application("barnes", architecture, length_scale=LENGTH)


def _edram_config(architecture, timing, data):
    retention = scaled_retention_cycles(50.0)
    refresh = RefreshConfig(
        retention_cycles=retention,
        sentry_margin_cycles=RefreshConfig.derive_sentry_margin(
            architecture.l3_bank.num_lines, retention
        ),
        timing_policy=timing,
        l3_data_policy=data,
    )
    return SimulationConfig.edram(refresh, architecture)


def test_simulate_sram_baseline(benchmark, architecture, workload):
    result = benchmark.pedantic(
        lambda: RefrintSimulator(SimulationConfig.sram(architecture)).run(workload),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert result.execution_cycles > 0


def test_simulate_edram_periodic_all(benchmark, architecture, workload):
    config = _edram_config(
        architecture, TimingPolicyKind.PERIODIC, DataPolicySpec.all_lines()
    )
    result = benchmark.pedantic(
        lambda: RefrintSimulator(config).run(workload),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert result.counter("l3_refreshes") > 0


def test_simulate_edram_refrint_wb(benchmark, architecture, workload):
    config = _edram_config(
        architecture, TimingPolicyKind.REFRINT, DataPolicySpec.writeback(32, 32)
    )
    result = benchmark.pedantic(
        lambda: RefrintSimulator(config).run(workload),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert result.counter("decay_violations") == 0


def test_workload_generation(benchmark, architecture):
    workload = benchmark(
        build_application, "fft", architecture, 0.5
    )
    assert workload.total_references() > 0
