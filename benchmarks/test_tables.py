"""Benchmarks regenerating the paper's descriptive tables.

Tables 3.1, 5.1, 5.2, 5.3, 5.4 and 6.1 are regenerated from the library's
own data structures; each benchmark times the regeneration and asserts the
content matches the paper.
"""

from __future__ import annotations

from repro.experiments.tables import (
    application_binning_table,
    applications_table,
    architecture_table,
    cell_comparison_table,
    policy_taxonomy_table,
    render_table,
    sweep_table,
)


def test_table_3_1_policy_taxonomy(benchmark):
    text = benchmark(lambda: render_table(policy_taxonomy_table()))
    print("\n" + text)
    for policy in ("Periodic", "Refrint", "All", "Valid", "Dirty", "WB(n,m)"):
        assert policy in text


def test_table_5_1_architecture(benchmark):
    text = benchmark(lambda: render_table(architecture_table()))
    print("\n" + text)
    assert "16 core CMP" in text
    assert "4 x 4 torus" in text
    assert "Directory MESI protocol at L3" in text


def test_table_5_2_cell_comparison(benchmark):
    text = benchmark(lambda: render_table(cell_comparison_table()))
    print("\n" + text)
    assert "0.25" in text  # eDRAM leakage ratio
    assert "access energy" in text  # refresh energy == access energy


def test_table_5_3_applications(benchmark):
    table = benchmark(applications_table)
    print("\n" + render_table(table))
    assert len(table.rows) == 11


def test_table_5_4_parameter_sweep(benchmark):
    text = benchmark(lambda: render_table(sweep_table()))
    print("\n" + text)
    assert "42" in text
    assert "50 us, 100 us, 200 us" in text


def test_table_6_1_application_binning(benchmark):
    text = benchmark(lambda: render_table(application_binning_table()))
    print("\n" + text)
    assert "Class 1" in text and "Class 2" in text and "Class 3" in text
    assert "fft" in text and "barnes" in text and "raytrace" in text
