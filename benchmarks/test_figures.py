"""Benchmarks regenerating the paper's evaluation figures (Figs. 6.1 - 6.4).

All four figures are produced from one shared Table 5.4 sweep (see
``conftest.py`` for how the sweep size is controlled).  Each benchmark
prints the regenerated figure as a text table -- the same rows the paper's
stacked-bar plots report -- and asserts the qualitative shape the paper
describes.
"""

from __future__ import annotations

import pytest

from repro.core.classes import class_members
from repro.experiments.figures import (
    figure_6_1,
    figure_6_2,
    figure_6_3,
    figure_6_4,
    render_figure,
)
from repro.experiments.runner import headline_summary


def _class_filter(sweep, app_class):
    """Applications of one class that are present in the sweep (or None)."""
    present = [name for name in class_members(app_class) if name in sweep.baselines]
    return present or None


#: Policy labels whose bars must stay below the SRAM baseline in every view.
#: The aggressive Dirty / small-(n,m) WB policies are excluded: the scaled
#: geometry exaggerates their invalidation penalty (see EXPERIMENTS.md), so
#: only the policies the paper's headline claims rest on are asserted here.
CONSERVATIVE_POLICIES = ("P.all", "P.valid", "R.all", "R.valid", "R.WB(32,32)")


def _conservative_labels(sweep):
    return [
        point.label for point in sweep.points
        if point.policy_label in CONSERVATIVE_POLICIES
    ]


def test_figure_6_1_memory_energy_by_level(benchmark, sweep):
    figure = benchmark(figure_6_1, sweep)
    print("\n" + render_figure(figure))
    totals = dict(zip(figure.bar_labels, figure.totals()))
    # Every non-aggressive eDRAM configuration consumes less memory energy
    # than full SRAM.
    assert all(totals[label] < 1.0 for label in _conservative_labels(sweep))
    # The L3 is the dominant on-chip level, as in Section 6.2.
    for index, label in enumerate(figure.bar_labels):
        l3 = figure.value(label, "L3")
        l1 = figure.value(label, "L1")
        l2 = figure.value(label, "L2")
        assert l3 > l1 and l3 > l2, label


def test_figure_6_2_memory_energy_by_component(benchmark, sweep):
    figure = benchmark(figure_6_2, sweep)
    print("\n" + render_figure(figure))
    # Refresh energy shrinks as retention time grows (Section 6.3).
    retentions = sweep.retention_times()
    if len(retentions) > 1:
        first = [p.label for p in sweep.points_for_retention(retentions[0])]
        last = [p.label for p in sweep.points_for_retention(retentions[-1])]
        refresh_first = sum(figure.value(label, "Refresh") for label in first)
        refresh_last = sum(figure.value(label, "Refresh") for label in last)
        assert refresh_last < refresh_first
    # Periodic-All carries more refresh energy than Refrint-Valid.
    for retention in retentions:
        p_all = next(
            p.label for p in sweep.points_for_retention(retention)
            if p.policy_label == "P.all"
        )
        r_valid = next(
            p.label for p in sweep.points_for_retention(retention)
            if p.policy_label == "R.valid"
        )
        assert figure.value(r_valid, "Refresh") < figure.value(p_all, "Refresh")


def test_figure_6_2_per_class_views(benchmark, sweep):
    figures = benchmark(
        lambda: [
            figure_6_2(sweep, applications=_class_filter(sweep, app_class))
            for app_class in (1, 2, 3)
        ]
    )
    for figure in figures:
        print("\n" + render_figure(figure))
        totals = dict(zip(figure.bar_labels, figure.totals()))
        assert all(totals[label] < 1.0 for label in _conservative_labels(sweep))


def test_figure_6_3_total_energy(benchmark, sweep):
    figure = benchmark(figure_6_3, sweep)
    print("\n" + render_figure(figure))
    values = dict(zip(figure.bar_labels, figure.series[0].values))
    # Total system energy of the non-aggressive eDRAM configurations is below
    # full SRAM, but by less than the memory-only saving (cores and network
    # are unchanged by the memory technology).
    memory = dict(zip(figure.bar_labels, figure_6_1(sweep).totals()))
    for label in _conservative_labels(sweep):
        assert values[label] < 1.0
    for label, system in values.items():
        assert system > memory[label]


def test_figure_6_4_execution_time(benchmark, sweep):
    figure = benchmark(figure_6_4, sweep)
    print("\n" + render_figure(figure))
    times = dict(zip(figure.bar_labels, figure.series[0].values))
    for retention in sweep.retention_times():
        points = {p.policy_label: p.label for p in sweep.points_for_retention(retention)}
        # Periodic-All slows down more than Refrint-WB(32,32) (Section 6.5).
        assert times[points["P.all"]] > times[points["R.WB(32,32)"]]
        # Refrint with a conservative policy stays close to full-SRAM speed.
        assert times[points["R.valid"]] < 1.10


def test_headline_numbers(benchmark, sweep):
    """The abstract's comparison at 50 us retention.

    Paper: Periodic-All consumes 50 % of the SRAM memory energy with an 18 %
    slowdown; Refrint WB(32,32) consumes 36 % with a 2 % slowdown (and 72 %
    vs 61 % of system energy).  The reproduction checks the ordering and the
    rough magnitudes; EXPERIMENTS.md records the measured values.
    """
    summary = benchmark(headline_summary, sweep, 50.0)
    print("\nheadline summary @50us:")
    for key, value in summary.items():
        print(f"  {key:28s} {value:.3f}")
    assert 0.35 <= summary["periodic_all_memory"] <= 0.70
    assert 0.30 <= summary["refrint_wb32_memory"] <= 0.55
    assert summary["refrint_wb32_memory"] < summary["periodic_all_memory"]
    assert summary["refrint_wb32_system"] < summary["periodic_all_system"]
    assert summary["periodic_all_time"] > 1.03
    assert summary["refrint_wb32_time"] < 1.08
    assert summary["refrint_wb32_time"] < summary["periodic_all_time"]
