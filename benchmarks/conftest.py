"""Shared fixtures for the benchmark harness.

The Chapter 6 figures are all produced from the same Table 5.4 sweep, so the
sweep is run once per benchmark session (module-scoped fixture) and every
figure/table benchmark reads from it.  The size of the sweep is controlled
by environment variables (see ``repro.experiments.runner.ExperimentScale``):

* default                      -- one representative application per class,
                                  short traces, all 3 retention times and all
                                  14 policy combinations (a few minutes);
* ``REFRINT_APPS=all``         -- the full eleven-application suite;
* ``REFRINT_LENGTH_SCALE=1.0`` -- full-length synthetic traces.

Benchmark timings therefore measure the figure-regeneration code on top of a
prepared sweep; the sweep itself is reported by ``test_sweep_table_5_4``.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner, ExperimentScale


@pytest.fixture(scope="session")
def experiment_runner() -> ExperimentRunner:
    """The shared experiment runner (scale picked up from the environment)."""
    return ExperimentRunner(scale=ExperimentScale.from_environment())


@pytest.fixture(scope="session")
def sweep(experiment_runner):
    """Run the shared sweep once and reuse it across figure benchmarks."""
    return experiment_runner.sweep()
