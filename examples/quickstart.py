#!/usr/bin/env python3
"""Quickstart: compare a full-SRAM hierarchy with Refrint-managed eDRAM.

This example runs one 16-threaded synthetic application (``fft``) on three
configurations of the simulated chip multiprocessor:

* the full-SRAM baseline,
* a naive full-eDRAM hierarchy (Periodic timing, All data policy), and
* Refrint with the WB(32, 32) data policy at the L3,

and prints the memory-energy and execution-time comparison the paper's
abstract quotes.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.config.parameters import (
    DataPolicySpec,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.core.simulator import RefrintSimulator
from repro.workloads.suite import build_application


def edram_config(base: SimulationConfig, timing: TimingPolicyKind,
                 data: DataPolicySpec) -> SimulationConfig:
    """Clone the scaled eDRAM configuration with a different policy pair."""
    assert base.refresh is not None
    refresh = RefreshConfig(
        retention_cycles=base.refresh.retention_cycles,
        sentry_margin_cycles=base.refresh.sentry_margin_cycles,
        timing_policy=timing,
        l3_data_policy=data,
    )
    return SimulationConfig.edram(refresh, base.architecture)


def main() -> None:
    # A laptop-scale configuration: the cache geometry and the 50 us eDRAM
    # retention period are scaled down together so that the refresh pressure
    # per line matches the paper's full-size system.
    reference = SimulationConfig.scaled(retention_us=50.0)
    workload = build_application("fft", reference, length_scale=0.5)
    print(
        f"workload: {workload.name} ({workload.num_threads} threads, "
        f"{workload.total_references()} data references)"
    )

    configurations = {
        "full-SRAM baseline": reference.as_sram_baseline(),
        "eDRAM Periodic.All (naive)": edram_config(
            reference, TimingPolicyKind.PERIODIC, DataPolicySpec.all_lines()
        ),
        "eDRAM Refrint.WB(32,32)": edram_config(
            reference, TimingPolicyKind.REFRINT, DataPolicySpec.writeback(32, 32)
        ),
    }

    results = {}
    for label, config in configurations.items():
        print(f"simulating {label} ...")
        results[label] = RefrintSimulator(config).run(workload)

    baseline = results["full-SRAM baseline"]
    print()
    print(f"{'configuration':32s} {'memory energy':>14s} {'system energy':>14s} {'exec. time':>11s}")
    for label, result in results.items():
        memory = result.normalised_memory_energy(baseline)
        system = result.normalised_system_energy(baseline)
        time = result.normalised_execution_time(baseline)
        print(f"{label:32s} {memory:14.3f} {system:14.3f} {time:11.3f}")
    print()
    print("(all values normalised to the full-SRAM baseline, as in the paper)")


if __name__ == "__main__":
    main()
