#!/usr/bin/env python3
"""Retention-time sensitivity and a custom refresh policy.

Two things are demonstrated here:

1. the effect of the eDRAM retention time (50 / 100 / 200 us in the paper's
   Table 5.4) on refresh energy and on the Periodic-vs-Refrint gap, and
2. how to plug a *custom* data policy into the refresh controllers -- the
   policy interface (:class:`repro.refresh.policies.DataPolicy`) is small, so
   downstream users can experiment with smarter policies (reuse predictors,
   software hints, ...) without touching the simulator.

Run with::

    python examples/retention_sweep.py
"""

from __future__ import annotations

from repro.config.parameters import DataPolicySpec, SimulationConfig, TimingPolicyKind
from repro.core.simulator import RefrintSimulator
from repro.core.sweep import PolicyPoint
from repro.mem.line import CacheLine
from repro.refresh.policies import PolicyAction, PolicyDecision, ValidPolicy
from repro.workloads.suite import build_application


# ---------------------------------------------------------------------------
# Part 1: retention-time sensitivity (Table 5.4's retention axis)
# ---------------------------------------------------------------------------

def retention_sensitivity() -> None:
    reference = SimulationConfig.scaled()
    workload = build_application("barnes", reference, length_scale=0.4)
    baseline = RefrintSimulator(reference.as_sram_baseline()).run(workload)
    print("Retention-time sensitivity (barnes, normalised to full-SRAM)")
    print(f"{'retention':>10s} {'policy':>12s} {'memory':>8s} {'refresh share':>14s} {'time':>6s}")
    for retention_us in (50.0, 100.0, 200.0):
        for timing in (TimingPolicyKind.PERIODIC, TimingPolicyKind.REFRINT):
            point = PolicyPoint(retention_us, timing, DataPolicySpec.valid())
            config = point.simulation_config(reference.architecture)
            result = RefrintSimulator(config).run(workload)
            refresh_share = (
                result.energy.by_component["refresh"] / baseline.memory_energy()
            )
            print(
                f"{retention_us:>8.0f}us {point.policy_label:>12s} "
                f"{result.normalised_memory_energy(baseline):8.3f} "
                f"{refresh_share:14.3f} "
                f"{result.normalised_execution_time(baseline):6.3f}"
            )
    print()


# ---------------------------------------------------------------------------
# Part 2: plugging in a custom data policy
# ---------------------------------------------------------------------------

class RecentlyUsedPolicy(ValidPolicy):
    """Refresh a valid line only if it was accessed in the last N cycles.

    This is *not* one of the paper's policies -- it is an example of how a
    downstream user can express "let cold lines decay" with the library's
    policy interface.  Lines idle for longer than ``idle_limit_cycles`` are
    invalidated instead of refreshed.
    """

    label = "recently-used"

    def __init__(self, idle_limit_cycles: int) -> None:
        self.idle_limit_cycles = idle_limit_cycles
        self._now = 0

    def set_time(self, cycle: int) -> None:
        """The controller's view of time, injected before each decision."""
        self._now = cycle

    def decide(self, line: CacheLine) -> PolicyDecision:
        if not line.valid:
            return PolicyDecision(PolicyAction.SKIP)
        idle_for = self._now - line.last_access_cycle
        if idle_for > self.idle_limit_cycles:
            return PolicyDecision(PolicyAction.INVALIDATE)
        return PolicyDecision(PolicyAction.REFRESH)


def custom_policy_demo() -> None:
    from repro.hierarchy.hierarchy import CacheHierarchy
    from repro.refresh.refrint import RefrintRefreshController
    from repro.utils.events import EventQueue
    from repro.config.parameters import RefreshConfig

    reference = SimulationConfig.scaled()
    architecture = reference.architecture
    hierarchy = CacheHierarchy(architecture)
    events = EventQueue()
    refresh = reference.refresh
    assert refresh is not None

    # Attach the custom policy to one L3 bank and drive it by hand.
    bank = hierarchy.banks[0]
    policy = RecentlyUsedPolicy(idle_limit_cycles=2 * refresh.retention_cycles)
    controller = RefrintRefreshController(
        "l3", 0, bank.cache, policy, refresh, hierarchy, events
    )
    controller.start(0)

    # Touch a handful of blocks owned by bank 0, then let time pass.
    line_bytes = architecture.line_bytes
    for index in range(8):
        address = index * line_bytes * architecture.num_l3_banks  # bank 0 blocks
        hierarchy.read(0, address, cycle=index)
    policy.set_time(0)
    horizon = 8 * refresh.retention_cycles
    # Advance in chunks, keeping the policy's clock in sync with the queue.
    step = refresh.retention_cycles
    for until in range(step, horizon + step, step):
        policy.set_time(until)
        events.run(until=until)

    print("Custom 'recently-used' policy demo (one L3 bank):")
    print(f"  valid lines remaining : {bank.cache.count_valid()}")
    print(f"  refreshes performed   : {hierarchy.counters['l3_refreshes']}")
    print(f"  policy invalidations  : {hierarchy.counters['l3_policy_invalidations_total']}")
    print("  (idle lines were invalidated instead of being refreshed forever)")


if __name__ == "__main__":
    retention_sensitivity()
    custom_policy_demo()
