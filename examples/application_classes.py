#!/usr/bin/env python3
"""Application classes and the data policies that suit them (Fig. 3.1).

The paper bins its applications into three classes by footprint and by the
visibility the last-level cache has of upper-level activity (Table 6.1), and
argues that the best data policy differs per class:

* Class 1 (large footprint, high visibility)  -> WB(n, m), even small (n, m)
* Class 2 (small footprint, high visibility)  -> WB(n, m) with large (n, m), or Valid
* Class 3 (small footprint, low visibility)   -> Valid

This example runs one representative application per class under the Valid,
WB(8, 8) and WB(32, 32) Refrint policies and prints the per-class comparison
so the class-dependent behaviour is visible.

Run with::

    python examples/application_classes.py
"""

from __future__ import annotations

from repro.config.parameters import (
    DataPolicySpec,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.core.classes import class_of
from repro.core.simulator import RefrintSimulator
from repro.workloads.suite import build_application

REPRESENTATIVES = ("fft", "barnes", "blackscholes")
POLICIES = {
    "R.valid": DataPolicySpec.valid(),
    "R.WB(8,8)": DataPolicySpec.writeback(8, 8),
    "R.WB(32,32)": DataPolicySpec.writeback(32, 32),
}


def main() -> None:
    reference = SimulationConfig.scaled(retention_us=50.0)
    print(f"{'application':14s} {'class':>5s} {'policy':>12s} "
          f"{'memory':>8s} {'time':>6s} {'L3 refreshes':>13s} {'DRAM':>8s}")
    for name in REPRESENTATIVES:
        workload = build_application(name, reference, length_scale=0.5)
        baseline = RefrintSimulator(reference.as_sram_baseline()).run(workload)
        for label, data_policy in POLICIES.items():
            refresh = RefreshConfig(
                retention_cycles=reference.refresh.retention_cycles,
                sentry_margin_cycles=reference.refresh.sentry_margin_cycles,
                timing_policy=TimingPolicyKind.REFRINT,
                l3_data_policy=data_policy,
            )
            config = SimulationConfig.edram(refresh, reference.architecture)
            result = RefrintSimulator(config).run(workload)
            print(
                f"{name:14s} {class_of(name):>5d} {label:>12s} "
                f"{result.normalised_memory_energy(baseline):8.3f} "
                f"{result.normalised_execution_time(baseline):6.3f} "
                f"{result.counter('l3_refreshes'):13d} "
                f"{result.counter('dram_accesses'):8d}"
            )
        print()
    print("Class 3 applications favour Valid (aggressive invalidation hurts")
    print("data that is hot in the L1/L2 but invisible to the L3), while the")
    print("streaming Class 1 application tolerates WB(n, m) far better.")


if __name__ == "__main__":
    main()
