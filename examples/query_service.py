#!/usr/bin/env python3
"""A client for the sweep query service (and the CI smoke driver).

Builds a typed query from flags, POSTs it to a running service
(``python -m repro.cli serve``), prints the answers with their
exact-vs-surrogate flags and provenance, and can *assert* expectations so
CI can gate on the service's behaviour with this same script:

* ``--expect-exact`` / ``--expect-surrogate`` -- fail unless every
  (non-baseline) answer is ground truth / an interpolation;
* ``--expect-source store|simulated|surrogate`` -- fail unless every
  answer names that provenance source;
* ``--expect-stat jobs_executed=3`` -- fail unless the service's exact
  counter has that value after the query (repeatable);
* ``--wait-backfill`` -- poll ``/v1/stats`` until no scheduled backfill is
  outstanding (so a following query can assert the exact re-answer).

Examples::

    # Ask for the stored grid (instant, exact):
    python examples/query_service.py --applications fft --retentions 50,200

    # What-if between grid points (sub-millisecond, exact=False + bounds):
    python examples/query_service.py --applications fft --retentions 125

Only the standard library is used, like the service itself.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

DEFAULT_URL = "http://127.0.0.1:8023"


def fetch(url: str, payload=None):
    """One JSON request; returns (status, parsed body)."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def wait_for_service(base_url: str, timeout_s: float = 30.0) -> dict:
    """Poll /v1/health until the service answers (it may still be booting)."""
    deadline = time.monotonic() + timeout_s
    last_error = None
    while time.monotonic() < deadline:
        try:
            status, body = fetch(f"{base_url}/v1/health")
            if status == 200:
                return body
        except OSError as error:
            last_error = error
        time.sleep(0.2)
    raise SystemExit(f"service at {base_url} not answering: {last_error}")


def wait_for_backfills(base_url: str, timeout_s: float = 120.0) -> dict:
    """Poll /v1/stats until every scheduled backfill has completed."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        _, stats = fetch(f"{base_url}/v1/stats")
        if stats["backfills_completed"] >= stats["backfills_scheduled"]:
            return stats
        time.sleep(0.2)
    raise SystemExit("backfills did not complete in time")


def print_answer(answer: dict) -> None:
    kind = "exact" if answer["exact"] else "approx"
    source = answer["provenance"]["source"]
    line = (
        f"  {answer['application']:14s} {answer['label']:22s} "
        f"[{kind}/{source}]"
    )
    metrics = answer["metrics"]
    line += (
        f" memory={metrics['memory_energy_j']:.4e} J"
        f" cycles={metrics['execution_cycles']:.0f}"
    )
    if answer.get("bounds"):
        line += f" bounds={answer['bounds']}"
    if answer.get("normalised"):
        norm = answer["normalised"]
        line += f" vs-SRAM mem={norm['memory']:.3f} time={norm['time']:.3f}"
    print(line)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=DEFAULT_URL)
    parser.add_argument("--applications", default="fft")
    parser.add_argument("--retentions", default="50")
    parser.add_argument("--timing", default="refrint")
    parser.add_argument("--data", default="WB(32,32)")
    parser.add_argument("--length-scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--no-surrogate", action="store_true")
    parser.add_argument("--expect-exact", action="store_true")
    parser.add_argument("--expect-surrogate", action="store_true")
    parser.add_argument("--expect-source", default=None)
    parser.add_argument(
        "--expect-stat", action="append", default=[], metavar="NAME=VALUE"
    )
    parser.add_argument("--wait-backfill", action="store_true")
    parser.add_argument("--stats", action="store_true", help="print /v1/stats")
    args = parser.parse_args(argv)

    health = wait_for_service(args.url)
    print(f"service ok: store={health['store_backend']}, "
          f"surrogate={'on' if health['surrogate'] else 'off'}")

    query = {
        "applications": args.applications,
        "retentions_us": args.retentions,
        "timing_policies": [args.timing],
        "data_policies": [args.data],
        "length_scale": args.length_scale,
        "allow_surrogate": not args.no_surrogate,
    }
    if args.seed is not None:
        query["seed"] = args.seed
    status, body = fetch(f"{args.url}/v1/query", query)
    if status != 200:
        print(f"query failed ({status}): {body.get('error')}", file=sys.stderr)
        return 1

    print(f"exact={body['exact']}")
    for answer in body["answers"]:
        print_answer(answer)
    if body.get("aggregates"):
        print("aggregates (all-application averages vs SRAM):")
        for label, values in body["aggregates"].items():
            print(f"  {label:22s} memory={values['memory']:.3f} "
                  f"system={values['system']:.3f} time={values['time']:.3f}")

    checked = [
        answer for answer in body["answers"]
        if answer["label"] != "SRAM baseline"
    ]
    if args.expect_exact and not all(a["exact"] for a in checked):
        print("EXPECTATION FAILED: wanted exact answers", file=sys.stderr)
        return 1
    if args.expect_surrogate:
        bad = [a for a in checked if a["exact"] or not a.get("bounds")]
        if bad:
            print("EXPECTATION FAILED: wanted surrogate answers with bounds",
                  file=sys.stderr)
            return 1
    if args.expect_source is not None:
        sources = {a["provenance"]["source"] for a in checked}
        if sources != {args.expect_source}:
            print(f"EXPECTATION FAILED: wanted source={args.expect_source}, "
                  f"got {sorted(sources)}", file=sys.stderr)
            return 1

    if args.wait_backfill:
        stats = wait_for_backfills(args.url)
        print(f"backfills complete: {stats['backfills_completed']}")

    if args.stats or args.expect_stat:
        _, stats = fetch(f"{args.url}/v1/stats")
        print(f"stats: {json.dumps(stats)}")
        for expectation in args.expect_stat:
            name, _, wanted = expectation.partition("=")
            if stats.get(name) != int(wanted):
                print(f"EXPECTATION FAILED: stats[{name}] == "
                      f"{stats.get(name)}, wanted {wanted}", file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
