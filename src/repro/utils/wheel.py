"""Bucketed calendar queue (timer wheel) for refresh fire times.

The refresh subsystem used to keep one heap event alive per sentry group and
per periodic refresh group -- for the L1s, whose sentry groups are single
lines, that meant one event per line per sentry period, and the simulator's
event queue spent more time on refresh timers than on the workload itself.

:class:`RefreshWheel` replaces those per-group events with a calendar queue:

* An *entry* is ``(ready, deadline, callback, payload)``.  ``ready`` is the
  earliest cycle the entry may be processed (the predicted sentry decay or
  the periodic group's nominal pass time); ``deadline`` is the latest.  A
  periodic pass is exact (``deadline == ready``); a lazy Refrint timer may
  be served up to ``sentry margin - 1`` cycles late, because the margin is
  precisely the headroom between a Sentry bit's decay and the line's own.
* Entries are hashed into fixed-width *buckets* by their deadline.  Because
  a bucket spans ``[b*w, (b+1)*w)``, the earliest non-empty bucket always
  contains the globally earliest deadline, so finding the next required
  service time never scans the whole wheel.
* The wheel keeps exactly **one** event in the :class:`~repro.utils.events.EventQueue`,
  armed at the earliest pending deadline.  When it fires, every entry that
  is *ready* by that cycle -- across all due buckets, and typically across
  many refresh controllers sharing the wheel -- is drained in one callback,
  in deterministic (bucket, insertion) order.  Re-arming happens once per
  drain, so a burst of reschedules costs one heap push instead of one per
  group.

Entries whose deadline forces an earlier service time than the armed event
cause a cancel + re-arm; the queue's heap compaction (see
:meth:`~repro.utils.events.EventQueue._note_cancelled`) keeps those
cancelled entries from accumulating.

An entry may carry a *due probe*: a cheap predicate consulted when the
entry comes up in a drain.  If the probe reports that the entry's group has
no due work (its predicted earliest decay was pushed out by ordinary
accesses recharging the lines) it returns the group's new earliest service
time and the wheel re-buckets the entry without invoking the callback --
the per-group due-time index that lets the Refrint interrupt scans skip
groups with nothing to serve.  A probe must answer exactly as the callback
would have: return None whenever the callback would perform any observable
work at this cycle, and otherwise the same next fire time the callback
would have armed.

Determinism: drains happen at exact deadline cycles, entries are processed
in (bucket index, insertion order) order, and the wheel itself never
consults wall-clock state -- so simulations are reproducible and identical
across cache backends and replay modes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.utils.events import Event, EventQueue

#: Default bucket width in cycles.  Narrow enough that a drain rarely visits
#: entries that are not yet ready, wide enough that simultaneous sentry
#: timers (and the staggered periodic passes of identical controllers)
#: coalesce into one queue event.
DEFAULT_BUCKET_CYCLES = 64

#: An entry: (ready cycle, deadline cycle, callback, payload, probe).
#: ``probe`` is None for always-served entries; otherwise
#: ``probe(cycle, payload)`` returns None to serve the entry now, or the
#: next cycle at which the entry's group can possibly have due work.
WheelEntry = Tuple[
    int, int, Callable[[int, Any], None], Any,
    Optional[Callable[[int, Any], Optional[int]]],
]


class RefreshWheel:
    """Calendar queue of refresh timers, driven by one queue event.

    One wheel is shared by every refresh controller of a simulation (see
    :func:`~repro.refresh.controller.build_refresh_controllers`); a
    controller constructed standalone builds a private one.  Sharing is what
    lets one drain serve many controllers: the 32 L1 controllers of a chip
    arm thousands of single-line sentry timers whose deadlines land in the
    same handful of buckets.
    """

    def __init__(
        self, events: EventQueue, bucket_cycles: int = DEFAULT_BUCKET_CYCLES
    ) -> None:
        if bucket_cycles < 1:
            raise ValueError("bucket_cycles must be >= 1")
        self.events = events
        self.bucket_cycles = bucket_cycles
        self._buckets: Dict[int, List[WheelEntry]] = {}
        self._armed: Optional[Event] = None
        self._armed_time: Optional[int] = None
        self._len = 0
        self._draining = False
        #: Number of times the queue event fired (drains), for diagnostics.
        self.drains = 0
        #: Entries re-bucketed by their due probe instead of being served
        #: (group interrupt scans skipped), for diagnostics.
        self.skips = 0
        #: Entries examined by drains (served or probe-skipped).  Every skip
        #: is an examined entry, so ``skips <= scans`` always -- one of the
        #: invariants repro.validate checks per run.
        self.scans = 0

    def __len__(self) -> int:
        return self._len

    def schedule(
        self,
        ready: int,
        deadline: int,
        callback: Callable[[int, Any], None],
        payload: Any = None,
        probe: Optional[Callable[[int, Any], Optional[int]]] = None,
    ) -> None:
        """Add a timer servable anywhere in ``[ready, deadline]`` cycles.

        ``callback(cycle, payload)`` runs during some drain at a cycle in
        that window.  Periodic (exact) timers pass ``deadline == ready``.
        ``probe``, if given, is consulted first at service time: returning
        None serves the entry, returning a cycle re-buckets it there (with
        the same slack) without running the callback.
        """
        if deadline < ready:
            raise ValueError(f"deadline {deadline} precedes ready {ready}")
        bucket = deadline // self.bucket_cycles
        entries = self._buckets.get(bucket)
        if entries is None:
            self._buckets[bucket] = [(ready, deadline, callback, payload, probe)]
        else:
            entries.append((ready, deadline, callback, payload, probe))
        self._len += 1
        # During a drain the handler re-arms once at the end; outside one,
        # pull the armed event earlier if this deadline precedes it.
        if not self._draining and (
            self._armed_time is None or deadline < self._armed_time
        ):
            self._arm(deadline)

    def next_deadline(self) -> Optional[int]:
        """Earliest cycle by which some pending timer must be served."""
        if not self._buckets:
            return None
        earliest_bucket = min(self._buckets)
        return min(entry[1] for entry in self._buckets[earliest_bucket])

    # -- internals -----------------------------------------------------------

    def _arm(self, time: int) -> None:
        if self._armed is not None:
            self._armed.cancel()
        self._armed = self.events.schedule(time, self._drain)
        self._armed_time = time

    def _drain(self, cycle: int, _payload: Any) -> None:
        """Serve every ready entry, then re-arm at the next deadline.

        The armed event fires at the earliest pending deadline, so nothing
        is ever served late(r than its deadline); entries whose ``ready``
        has passed ride along in the same drain even if their deadline lies
        further out (that is the batching).  Buckets are visited in index
        order and entries in insertion order, which keeps the simulation
        deterministic.
        """
        self._armed = None
        self._armed_time = None
        self.drains += 1
        max_bucket = cycle // self.bucket_cycles
        due: List[WheelEntry] = []
        for bucket in sorted(b for b in self._buckets if b <= max_bucket):
            entries = self._buckets[bucket]
            keep = [entry for entry in entries if entry[0] > cycle]
            if len(keep) == len(entries):
                continue
            if keep:
                self._buckets[bucket] = keep
            else:
                del self._buckets[bucket]
            due.extend(entry for entry in entries if entry[0] <= cycle)
        self._len -= len(due)
        self.scans += len(due)
        # Callbacks reschedule their groups through schedule(); defer the
        # re-arm until every handler has run so the whole burst costs one
        # queue operation.  An entry with a due probe is asked first: if
        # its group has nothing due (every predicted-decayed line was
        # recharged by an access since the timer was armed), the entry is
        # re-bucketed at the group's new earliest possible decay and the
        # scan is skipped entirely.
        self._draining = True
        schedule = self.schedule
        try:
            for ready, deadline, callback, payload, probe in due:
                if probe is not None:
                    next_ready = probe(cycle, payload)
                    if next_ready is not None:
                        self.skips += 1
                        schedule(
                            next_ready, next_ready + (deadline - ready),
                            callback, payload, probe,
                        )
                        continue
                callback(cycle, payload)
        finally:
            self._draining = False
        next_deadline = self.next_deadline()
        if next_deadline is not None:
            self._arm(next_deadline)

    def __repr__(self) -> str:
        return (
            f"RefreshWheel(entries={self._len}, "
            f"bucket_cycles={self.bucket_cycles}, "
            f"armed_at={self._armed_time})"
        )
