"""Shared low-level utilities: event scheduling, statistics, address math."""

from repro.utils.addr import (
    block_address,
    block_offset,
    interleaved_bank,
    is_power_of_two,
    log2_int,
)
from repro.utils.events import Event, EventQueue
from repro.utils.statistics import Counter, RunningStat, WeightedAverage

__all__ = [
    "Counter",
    "Event",
    "EventQueue",
    "RunningStat",
    "WeightedAverage",
    "block_address",
    "block_offset",
    "interleaved_bank",
    "is_power_of_two",
    "log2_int",
]
