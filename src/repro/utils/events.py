"""A minimal discrete-event scheduler.

The simulator is event driven: cores schedule their next memory reference
after the previous one completes, periodic refresh controllers schedule one
event per line group per retention period, and Refrint controllers schedule
one event per live Sentry bit.  Events carry a callback and an arbitrary
payload; ties are broken by insertion order so simulation is deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional, Tuple


class Event:
    """A scheduled callback.

    Attributes:
        time: simulation time (cycles) at which the event fires.
        seq: monotonically increasing tie-breaker assigned by the queue.
        callback: callable invoked as ``callback(time, payload)``.
        payload: arbitrary data handed back to the callback.
        cancelled: cancelled events are skipped when popped.

    The heap itself is keyed by plain ``(time, seq, event)`` tuples, so
    ordering is decided by C-level int comparisons and the event object
    never needs rich-comparison methods -- with hundreds of thousands of
    heap operations per simulation, Python-level ``__lt__`` dispatch was a
    measurable share of the event loop.
    """

    __slots__ = ("time", "seq", "callback", "payload", "cancelled", "queue")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[[int, Any], None],
        payload: Any = None,
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.payload = payload
        self.cancelled = False
        self.queue = queue

    def cancel(self) -> None:
        """Mark this event so the queue drops it instead of firing it."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._note_cancelled()
            self.queue = None

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time}, seq={self.seq}, "
            f"cancelled={self.cancelled})"
        )


class EventQueue:
    """Priority queue of events ordered by (time, insertion order).

    Heap entries are ``(time, seq, callback, payload, handle)`` tuples;
    ``handle`` is the :class:`Event` returned by :meth:`schedule` (so it can
    be cancelled) or None for fire-and-forget entries pushed by
    :meth:`schedule_callback`.  ``seq`` is unique, so tuple comparison never
    reaches the non-comparable elements.
    """

    def __init__(self) -> None:
        self._heap: list[Tuple] = []
        self._counter = itertools.count()
        self._now = 0
        self._live = 0

    @property
    def now(self) -> int:
        """Current simulation time (time of the last event popped)."""
        return self._now

    def __len__(self) -> int:
        # O(1): a live-event counter is maintained on schedule/cancel/pop
        # instead of scanning the heap for cancelled entries.
        return self._live

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` when a tracked event is cancelled."""
        self._live -= 1

    def schedule(
        self,
        time: int,
        callback: Callable[[int, Any], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` at ``time``; returns the event handle.

        Raises:
            ValueError: if ``time`` is in the past.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time}, current time is {self._now}"
            )
        seq = next(self._counter)
        event = Event(time, seq, callback, payload, queue=self)
        heapq.heappush(self._heap, (time, seq, callback, payload, event))
        self._live += 1
        return event

    def schedule_callback(
        self,
        time: int,
        callback: Callable[[int, Any], None],
        payload: Any = None,
    ) -> None:
        """Schedule a fire-and-forget callback (no cancellable handle).

        The hot-path variant of :meth:`schedule` for producers that never
        cancel (cores, refresh controllers): no :class:`Event` object is
        allocated, the entry lives purely in the heap tuple.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time}, current time is {self._now}"
            )
        heapq.heappush(
            self._heap, (time, next(self._counter), callback, payload, None)
        )
        self._live += 1

    def schedule_after(
        self,
        delay: int,
        callback: Callable[[int, Any], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` ``delay`` cycles from the current time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, payload)

    def pop(self) -> Optional[Event]:
        """Pop and return the next live event, advancing the clock.

        Returns None when the queue is empty.  The event is *not* executed;
        callers decide whether to invoke the callback.
        """
        while self._heap:
            time, seq, callback, payload, handle = heapq.heappop(self._heap)
            if handle is None:
                handle = Event(time, seq, callback, payload)
            elif handle.cancelled:
                continue
            else:
                handle.queue = None
            self._live -= 1
            self._now = time
            return handle
        return None

    def drain_until_count(self, done: list, target: int, max_events: int) -> int:
        """Execute events until ``done`` has grown to ``target`` entries.

        This is the simulator's hot drain loop: callbacks append to ``done``
        (one entry per finished core), and the loop runs with direct heap
        access -- no per-event Optional wrapper, no re-dispatch through
        :meth:`pop`.  Returns the number of events executed.

        Raises:
            RuntimeError: if the queue empties before ``done`` reaches
                ``target``, or more than ``max_events`` events execute.
        """
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        while len(done) < target:
            while True:
                if not heap:
                    raise RuntimeError(
                        "event queue drained before the completion target was "
                        "reached; a producer failed to schedule its next event"
                    )
                time, _, callback, payload, handle = pop(heap)
                if handle is None:
                    break
                if not handle.cancelled:
                    handle.queue = None
                    break
            self._live -= 1
            self._now = time
            callback(time, payload)
            executed += 1
            if executed > max_events:
                raise RuntimeError(
                    "event limit exceeded; the simulation appears to be stuck"
                )
        return executed

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Execute events in order.

        Args:
            until: stop (without executing) at the first event later than this
                time; the clock is left at the last executed event.
            max_events: stop after executing this many events.

        Returns:
            The number of events executed.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            time, _, callback, payload, handle = self._heap[0]
            if handle is not None and handle.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            if handle is not None:
                handle.queue = None
            self._live -= 1
            self._now = time
            callback(time, payload)
            executed += 1
        return executed

    def empty(self) -> bool:
        """Return True when no live events remain."""
        return self._live == 0
