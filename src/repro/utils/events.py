"""A minimal discrete-event scheduler.

The simulator is event driven: cores schedule their next memory reference
after the previous one completes, periodic refresh controllers schedule one
event per line group per retention period, and Refrint controllers schedule
one event per live Sentry bit.  Events carry a callback and an arbitrary
payload; ties are broken by insertion order so simulation is deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: simulation time (cycles) at which the event fires.
        seq: monotonically increasing tie-breaker assigned by the queue.
        callback: callable invoked as ``callback(time, payload)``.
        payload: arbitrary data handed back to the callback.
        cancelled: cancelled events are skipped when popped.
    """

    time: int
    seq: int
    callback: Callable[[int, Any], None] = field(compare=False)
    payload: Any = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)
    queue: Optional["EventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark this event so the queue drops it instead of firing it."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._note_cancelled()
            self.queue = None


class EventQueue:
    """Priority queue of :class:`Event` ordered by (time, insertion order)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0
        self._live = 0

    @property
    def now(self) -> int:
        """Current simulation time (time of the last event popped)."""
        return self._now

    def __len__(self) -> int:
        # O(1): a live-event counter is maintained on schedule/cancel/pop
        # instead of scanning the heap for cancelled entries.
        return self._live

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` when a tracked event is cancelled."""
        self._live -= 1

    def _detach(self, event: Event) -> None:
        """Stop tracking a popped live event (cancel() becomes a no-op)."""
        self._live -= 1
        event.queue = None

    def schedule(
        self,
        time: int,
        callback: Callable[[int, Any], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` at ``time``; returns the event handle.

        Raises:
            ValueError: if ``time`` is in the past.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time}, current time is {self._now}"
            )
        event = Event(
            time=time, seq=next(self._counter), callback=callback,
            payload=payload, queue=self,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_after(
        self,
        delay: int,
        callback: Callable[[int, Any], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` ``delay`` cycles from the current time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, payload)

    def pop(self) -> Optional[Event]:
        """Pop and return the next live event, advancing the clock.

        Returns None when the queue is empty.  The event is *not* executed;
        callers decide whether to invoke the callback.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._detach(event)
            self._now = event.time
            return event
        return None

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Execute events in order.

        Args:
            until: stop (without executing) at the first event later than this
                time; the clock is left at the last executed event.
            max_events: stop after executing this many events.

        Returns:
            The number of events executed.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            self._detach(event)
            self._now = event.time
            event.callback(event.time, event.payload)
            executed += 1
        return executed

    def empty(self) -> bool:
        """Return True when no live events remain."""
        return self._live == 0
