"""A minimal discrete-event scheduler.

The simulator is event driven, but the high-rate producers no longer pay
one heap entry each: under run-ahead replay (the default) cores execute
their references inline and only *claim* a ``(time, seq)`` key per
reference (:meth:`EventQueue.claim_seq`), and the refresh controllers keep
their timers in a calendar queue (:mod:`repro.utils.wheel`) that holds a
single armed event here.  What still flows through the heap -- wheel
drains, and per-reference callbacks under ``replay="event"`` -- carries a
callback and an arbitrary payload; ties are broken by insertion order so
simulation is deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional, Tuple


class Event:
    """A scheduled callback.

    Attributes:
        time: simulation time (cycles) at which the event fires.
        seq: monotonically increasing tie-breaker assigned by the queue.
        callback: callable invoked as ``callback(time, payload)``.
        payload: arbitrary data handed back to the callback.
        cancelled: cancelled events are skipped when popped.

    The heap itself is keyed by plain ``(time, seq, event)`` tuples, so
    ordering is decided by C-level int comparisons and the event object
    never needs rich-comparison methods -- with hundreds of thousands of
    heap operations per simulation, Python-level ``__lt__`` dispatch was a
    measurable share of the event loop.
    """

    __slots__ = ("time", "seq", "callback", "payload", "cancelled", "queue")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[[int, Any], None],
        payload: Any = None,
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.payload = payload
        self.cancelled = False
        self.queue = queue

    def cancel(self) -> None:
        """Mark this event so the queue drops it instead of firing it."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._note_cancelled()
            self.queue = None

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time}, seq={self.seq}, "
            f"cancelled={self.cancelled})"
        )


class EventQueue:
    """Priority queue of events ordered by (time, insertion order).

    Heap entries are ``(time, seq, callback, payload, handle)`` tuples;
    ``handle`` is the :class:`Event` returned by :meth:`schedule` (so it can
    be cancelled) or None for fire-and-forget entries pushed by
    :meth:`schedule_callback`.  ``seq`` is unique, so tuple comparison never
    reaches the non-comparable elements.
    """

    #: Compaction threshold: the heap is rebuilt without its cancelled
    #: entries once they outnumber the live ones (and enough have piled up
    #: for the O(n) rebuild to be worth it).  Producers that cancel on every
    #: reschedule -- the refresh wheel re-arming at an earlier deadline --
    #: would otherwise grow the heap with dead tuples until popped.
    _COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self._heap: list[Tuple] = []
        self._counter = itertools.count()
        self._now = 0
        self._live = 0
        self._cancelled = 0
        #: Events executed or handed out for execution over this queue's
        #: lifetime (cancelled entries are not counted).  The benchmark
        #: harness reads this to track event-count reduction.
        self.popped_events = 0

    @property
    def now(self) -> int:
        """Current simulation time (time of the last event popped)."""
        return self._now

    def __len__(self) -> int:
        # O(1): a live-event counter is maintained on schedule/cancel/pop
        # instead of scanning the heap for cancelled entries.
        return self._live

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` when a tracked event is cancelled."""
        self._live -= 1
        self._cancelled += 1
        if (
            self._cancelled >= self._COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without its cancelled entries.

        In place: the drain loops (and the run-ahead driver) hold long-lived
        local aliases to the heap list, so the list object must survive.
        """
        self._heap[:] = [
            entry for entry in self._heap
            if entry[4] is None or not entry[4].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def schedule(
        self,
        time: int,
        callback: Callable[[int, Any], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` at ``time``; returns the event handle.

        Raises:
            ValueError: if ``time`` is in the past.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time}, current time is {self._now}"
            )
        seq = next(self._counter)
        event = Event(time, seq, callback, payload, queue=self)
        heapq.heappush(self._heap, (time, seq, callback, payload, event))
        self._live += 1
        return event

    def schedule_callback(
        self,
        time: int,
        callback: Callable[[int, Any], None],
        payload: Any = None,
    ) -> None:
        """Schedule a fire-and-forget callback (no cancellable handle).

        The hot-path variant of :meth:`schedule` for producers that never
        cancel (cores, refresh controllers): no :class:`Event` object is
        allocated, the entry lives purely in the heap tuple.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time}, current time is {self._now}"
            )
        heapq.heappush(
            self._heap, (time, next(self._counter), callback, payload, None)
        )
        self._live += 1

    def schedule_after(
        self,
        delay: int,
        callback: Callable[[int, Any], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` ``delay`` cycles from the current time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, payload)

    def pop(self) -> Optional[Event]:
        """Pop and return the next live event, advancing the clock.

        Returns None when the queue is empty.  The event is *not* executed;
        callers decide whether to invoke the callback.
        """
        while self._heap:
            time, seq, callback, payload, handle = heapq.heappop(self._heap)
            if handle is None:
                handle = Event(time, seq, callback, payload)
            elif handle.cancelled:
                self._cancelled -= 1
                continue
            else:
                handle.queue = None
            self._live -= 1
            self._now = time
            self.popped_events += 1
            return handle
        return None

    def claim_seq(self) -> int:
        """Draw the next tie-breaker sequence number without scheduling.

        Claiming a sequence number per inlined unit of work keeps the
        (time, seq) order of everything else -- and therefore the whole
        simulation -- byte-identical to scheduling that work as events.
        This is the sanctioned form of what the run-ahead replay driver
        does per reference (the driver itself draws from the shared
        counter directly, one call per reference being too hot for method
        dispatch; the two must stay equivalent).
        """
        return next(self._counter)

    def claim_seq_bulk(self, n: int) -> int:
        """Claim ``n`` consecutive sequence numbers, returning the last one.

        The batch-replay kernel retires a whole stretch of references in
        one call but must consume exactly the sequence numbers the scalar
        loop would have (one per executed reference with a successor), or
        the (time, seq) order of later events shifts and replay stops
        being byte-identical.  Rebinding the counter skips the n-1
        intermediate draws in O(1); callers must re-read ``_counter``
        afterwards rather than hold an alias across this call.
        """
        first = next(self._counter)
        if n > 1:
            self._counter = itertools.count(first + n)
        return first + n - 1

    def advance_clock(self, time: int) -> None:
        """Advance the clock to ``time`` (inline work executed off-queue).

        Sanctioned equivalent of the run-ahead driver's direct forward
        store of ``_now``; external callers running work off-queue should
        use this checked form.
        """
        if time < self._now:
            raise ValueError(
                f"cannot move the clock back to {time}, current time is {self._now}"
            )
        self._now = time

    def peek_key(self) -> Optional[Tuple[int, int]]:
        """(time, seq) of the earliest live event, or None when empty.

        Cancelled entries encountered at the top are dropped on the way, so
        repeated peeks stay cheap.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            handle = entry[4]
            if handle is not None and handle.cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            return (entry[0], entry[1])
        return None

    def run_until_key(self, time: int, seq: int) -> int:
        """Execute every live event ordered strictly before ``(time, seq)``.

        The run-ahead replay driver uses this to let refresh events fire in
        their exact heap order relative to the core reference it is about to
        execute inline.  The clock is left at the last executed event (or
        untouched when nothing ran); returns the number of events executed.
        """
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        while heap:
            entry = heap[0]
            handle = entry[4]
            if handle is not None and handle.cancelled:
                pop(heap)
                self._cancelled -= 1
                continue
            if entry[0] > time or (entry[0] == time and entry[1] >= seq):
                break
            pop(heap)
            if handle is not None:
                handle.queue = None
            self._live -= 1
            self._now = entry[0]
            self.popped_events += 1
            entry[2](entry[0], entry[3])
            executed += 1
        return executed

    def drain_until_count(self, done: list, target: int, max_events: int) -> int:
        """Execute events until ``done`` has grown to ``target`` entries.

        This is the simulator's hot drain loop: callbacks append to ``done``
        (one entry per finished core), and the loop runs with direct heap
        access -- no per-event Optional wrapper, no re-dispatch through
        :meth:`pop`.  Returns the number of events executed.

        Raises:
            RuntimeError: if the queue empties before ``done`` reaches
                ``target``, or more than ``max_events`` events execute.
        """
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        while len(done) < target:
            while True:
                if not heap:
                    raise RuntimeError(
                        "event queue drained before the completion target was "
                        "reached; a producer failed to schedule its next event"
                    )
                time, _, callback, payload, handle = pop(heap)
                if handle is None:
                    break
                if not handle.cancelled:
                    handle.queue = None
                    break
                self._cancelled -= 1
            self._live -= 1
            self._now = time
            self.popped_events += 1
            callback(time, payload)
            executed += 1
            if executed > max_events:
                raise RuntimeError(
                    "event limit exceeded; the simulation appears to be stuck"
                )
        return executed

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Execute events in order.

        Args:
            until: stop (without executing) at the first event later than this
                time; the clock is left at the last executed event.
            max_events: stop after executing this many events.

        Returns:
            The number of events executed.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            time, _, callback, payload, handle = self._heap[0]
            if handle is not None and handle.cancelled:
                heapq.heappop(self._heap)
                self._cancelled -= 1
                continue
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            if handle is not None:
                handle.queue = None
            self._live -= 1
            self._now = time
            self.popped_events += 1
            callback(time, payload)
            executed += 1
        return executed

    def empty(self) -> bool:
        """Return True when no live events remain."""
        return self._live == 0
