"""Address arithmetic helpers.

All addresses handled by the simulator are plain Python integers (byte
addresses).  Caches operate on *block addresses*: the byte address with the
block-offset bits stripped.  The shared L3 is banked and blocks are statically
interleaved across banks by block address, as in the paper (Section 5).
"""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Return log2 of a power-of-two integer.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def block_address(address: int, block_size: int) -> int:
    """Strip the block-offset bits from a byte address.

    The result identifies the cache block containing ``address``.
    """
    return address & ~(block_size - 1)


def block_offset(address: int, block_size: int) -> int:
    """Return the byte offset of ``address`` within its cache block."""
    return address & (block_size - 1)


def interleaved_bank(address: int, block_size: int, num_banks: int) -> int:
    """Map a byte address to an L3 bank by block-level interleaving.

    Consecutive cache blocks map to consecutive banks, which statically
    spreads the address space over the banks of the shared L3 exactly as the
    paper's static address-to-bank mapping does.
    """
    return (address // block_size) % num_banks


def set_index(address: int, block_size: int, num_sets: int) -> int:
    """Return the set index of a byte address within a cache."""
    return (address // block_size) % num_sets


def tag_bits(address: int, block_size: int, num_sets: int) -> int:
    """Return the tag of a byte address within a cache."""
    return address // (block_size * num_sets)
