"""Lightweight statistics helpers used throughout the simulator."""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping


class Counter:
    """A named bag of integer counters.

    This is a thin wrapper over a defaultdict that supports addition and
    snapshotting, used for event counts such as hits, misses, refreshes,
    invalidations and network messages.
    """

    def __init__(self, initial: Mapping[str, int] | None = None) -> None:
        self._counts: Dict[str, int] = defaultdict(int)
        if initial:
            for key, value in initial.items():
                self._counts[key] = int(value)

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counts[name] += amount

    @property
    def raw(self) -> Dict[str, int]:
        """The live underlying defaultdict, for hot paths.

        Incrementing ``counter.raw[key] += n`` skips one method call per
        event, which matters on paths executed once per simulated memory
        access.  Callers must treat it as write-mostly: reads should keep
        going through :meth:`get` / indexing.
        """
        return self._counts

    def get(self, name: str) -> int:
        """Return the value of counter ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def merge(self, other: "Counter") -> None:
        """Add all counters from ``other`` into this one."""
        for key, value in other._counts.items():
            self._counts[key] += value

    def as_dict(self) -> Dict[str, int]:
        """Return a plain-dict snapshot of all counters."""
        return dict(self._counts)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"Counter({inner})"


@dataclass
class RunningStat:
    """Streaming mean / variance / min / max (Welford's algorithm)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the running statistics."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many samples into the running statistics."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Population variance of the samples seen so far."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation of the samples seen so far."""
        return math.sqrt(self.variance)


@dataclass
class WeightedAverage:
    """Weighted arithmetic mean accumulator."""

    total: float = 0.0
    weight: float = 0.0

    def add(self, value: float, weight: float = 1.0) -> None:
        """Add ``value`` with the given ``weight``."""
        if weight < 0:
            raise ValueError("weight must be non-negative")
        self.total += value * weight
        self.weight += weight

    @property
    def value(self) -> float:
        """The weighted mean (0.0 when nothing has been added)."""
        if self.weight == 0:
            return 0.0
        return self.total / self.weight


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Used for averaging normalised metrics (energy and execution-time ratios)
    across applications, which is the conventional way to average ratios.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of an empty sequence")
    for index, value in enumerate(values):
        if value <= 0:
            raise ValueError(
                "geometric_mean requires strictly positive values, got "
                f"{value!r} at index {index}"
            )
    log_sum = sum(math.log(v) for v in values)
    return math.exp(log_sum / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain arithmetic mean; raises on empty input."""
    values = list(values)
    if not values:
        raise ValueError("arithmetic_mean of an empty sequence")
    return sum(values) / len(values)
