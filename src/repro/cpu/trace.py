"""Memory reference traces.

The paper drives its evaluation with 16-threaded SPLASH-2 / PARSEC binaries
executed by the SESC simulator.  Here a thread's execution is represented by
a :class:`TraceStream`: an ordered sequence of :class:`TraceRecord` entries,
each describing one data reference (read or write) plus the number of
non-memory instructions executed since the previous reference.  The core
model replays the stream, charging a fixed number of cycles per non-memory
instruction and blocking on the memory system for each reference.

Traces are ordinary Python iterables, so they can come from the synthetic
generators in :mod:`repro.workloads`, from files, or from tests that need a
precisely controlled access sequence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence


class MemoryOperation(enum.Enum):
    """Kind of one data reference."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class TraceRecord:
    """One data reference in a thread's trace.

    Attributes:
        address: byte address referenced.
        operation: read or write.
        gap_instructions: non-memory instructions executed since the
            previous record (each costs one pipeline cycle and one
            instruction fetch).
    """

    address: int
    operation: MemoryOperation
    gap_instructions: int = 0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("addresses must be non-negative")
        if self.gap_instructions < 0:
            raise ValueError("gap_instructions must be non-negative")

    @property
    def is_write(self) -> bool:
        """True for a store."""
        return self.operation is MemoryOperation.WRITE


class TraceStream:
    """A finite, replayable sequence of trace records for one thread."""

    def __init__(self, records: Iterable[TraceRecord], thread_id: int = 0) -> None:
        self._records: List[TraceRecord] = list(records)
        self.thread_id = thread_id

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    @property
    def records(self) -> Sequence[TraceRecord]:
        """The underlying records (read-only view)."""
        return tuple(self._records)

    def total_instructions(self) -> int:
        """Total instructions represented (memory ops plus gaps)."""
        return sum(record.gap_instructions + 1 for record in self._records)

    def read_fraction(self) -> float:
        """Fraction of data references that are reads."""
        if not self._records:
            return 0.0
        reads = sum(1 for record in self._records if not record.is_write)
        return reads / len(self._records)

    def footprint_bytes(self, line_bytes: int = 64) -> int:
        """Number of distinct cache blocks touched, times the block size."""
        blocks = {record.address // line_bytes for record in self._records}
        return len(blocks) * line_bytes
