"""Trace-replay core model.

Each of the 16 cores replays one thread's :class:`~repro.cpu.trace.TraceStream`
against the shared memory hierarchy.  The model is deliberately simple -- the
paper's dual-issue out-of-order MIPS32 core is replaced by an in-order engine
that charges one cycle per non-memory instruction and blocks on every data
reference until the hierarchy answers.  The effects the evaluation cares
about are preserved: periodic refresh passes block the arrays and delay the
accesses behind them, and policies that invalidate useful data early cause
extra misses whose latency lengthens execution time (Section 6.5).

Instruction fetches are modelled in two parts: every instruction is charged
one L1I access for energy purposes, and one real instruction fetch is issued
through the hierarchy per ``ifetch_interval`` instructions (walking a small
per-thread code region) so the instruction working set occupies cache lines
and is subject to refresh like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.cpu.trace import TraceStream
from repro.hierarchy.hierarchy import CacheHierarchy
from repro.utils.events import EventQueue

#: Number of instructions represented by one real instruction-fetch access.
DEFAULT_IFETCH_INTERVAL = 16

#: Bytes of the per-thread code region walked by the modelled fetches.  Kept
#: small (an inner-loop sized footprint) so that, on the scaled geometry,
#: code does not crowd data out of the small private caches.
DEFAULT_CODE_REGION_BYTES = 512


@dataclass
class CoreStats:
    """Per-core execution statistics."""

    references_completed: int = 0
    instructions_executed: int = 0
    busy_cycles: int = 0
    stall_cycles: int = 0
    finish_cycle: Optional[int] = None

    @property
    def finished(self) -> bool:
        """True once the core has drained its trace."""
        return self.finish_cycle is not None


class Core:
    """One trace-replay core attached to the shared hierarchy."""

    def __init__(
        self,
        core_id: int,
        trace: TraceStream,
        hierarchy: CacheHierarchy,
        event_queue: EventQueue,
        code_base_address: Optional[int] = None,
        ifetch_interval: int = DEFAULT_IFETCH_INTERVAL,
        code_region_bytes: int = DEFAULT_CODE_REGION_BYTES,
        on_finish: Optional[Callable[[int, "Core"], None]] = None,
    ) -> None:
        if ifetch_interval < 1:
            raise ValueError("ifetch_interval must be >= 1")
        self.core_id = core_id
        self.trace = trace
        self.hierarchy = hierarchy
        self.events = event_queue
        self.stats = CoreStats()
        self.ifetch_interval = ifetch_interval
        self.code_region_bytes = code_region_bytes
        # Each thread executes from its own code region high in the address
        # space so code and data never collide.
        self.code_base_address = (
            code_base_address
            if code_base_address is not None
            else (1 << 40) + core_id * code_region_bytes
        )
        self._on_finish = on_finish
        self._next_index = 0
        self._instructions_since_ifetch = 0
        self._code_offset = 0
        self._line_bytes = hierarchy.architecture.line_bytes
        self._counts = hierarchy.counters.raw
        # Bound-method caches for the per-reference dispatch.
        self._read = hierarchy.read
        self._write = hierarchy.write
        # The trace unpacked into parallel field lists: the replay loop runs
        # once per reference and a plain list index is several times cheaper
        # than TraceStream.__getitem__ plus dataclass attribute and property
        # lookups on every record.
        self._num_records = len(trace)
        self._addresses = [record.address for record in trace]
        self._is_write = [record.is_write for record in trace]
        self._gaps = [record.gap_instructions for record in trace]

    # -- lifecycle -------------------------------------------------------------

    def start(self, cycle: int) -> None:
        """Schedule the core's first reference at ``cycle`` (event replay)."""
        issue_time = self.begin(cycle)
        if issue_time is not None:
            self.events.schedule_callback(issue_time, self._on_reference)

    def begin(self, cycle: int) -> Optional[int]:
        """Charge the leading instruction gap; return the first issue time.

        Returns None when the trace is empty (the core finishes on the
        spot).  Both replay modes call this; only the event mode then puts a
        callback on the queue, the run-ahead driver keeps the issue time in
        its own ready list.
        """
        if self._num_records == 0:
            self._finish(cycle)
            return None
        first_gap = self._gaps[0]
        self.stats.busy_cycles += first_gap
        self._account_instructions(cycle, first_gap)
        return cycle + first_gap

    @property
    def finished(self) -> bool:
        """True once the core has drained its trace."""
        return self.stats.finished

    # -- event handling ---------------------------------------------------------

    def step(self, cycle: int) -> Optional[int]:
        """Execute the reference issued at ``cycle``; return the next issue time.

        This is the per-reference body shared by both replay modes.  Returns
        None when the trace is drained (the core finishes at completion of
        this reference).
        """
        index = self._next_index
        if self._is_write[index]:
            latency = self._write(self.core_id, self._addresses[index], cycle)
        else:
            latency = self._read(self.core_id, self._addresses[index], cycle)
        stats = self.stats
        stats.references_completed += 1
        stats.busy_cycles += 1
        if latency > 1:
            stats.stall_cycles += latency - 1
        index += 1
        self._next_index = index

        if index >= self._num_records:
            self._finish(cycle + latency)
            return None

        gap = self._gaps[index]
        stats.busy_cycles += gap
        issue_time = cycle + latency + gap
        self._account_instructions(cycle + latency, gap)
        return issue_time

    def _on_reference(self, cycle: int, _payload: Any) -> None:
        issue_time = self.step(cycle)
        if issue_time is not None:
            self.events.schedule_callback(issue_time, self._on_reference)

    # -- helpers ------------------------------------------------------------------

    def _account_instructions(self, cycle: int, count: int) -> None:
        """Charge instruction-fetch energy and issue periodic real fetches."""
        if count <= 0:
            return
        self.stats.instructions_executed += count
        counts = self._counts
        counts["l1i_reads"] += count
        counts["instructions"] += count
        self._instructions_since_ifetch += count
        while self._instructions_since_ifetch >= self.ifetch_interval:
            self._instructions_since_ifetch -= self.ifetch_interval
            address = self.code_base_address + self._code_offset
            self._code_offset = (
                self._code_offset + self._line_bytes
            ) % self.code_region_bytes
            self.hierarchy.instruction_fetch(self.core_id, address, cycle)

    def _finish(self, cycle: int) -> None:
        self.stats.finish_cycle = cycle
        if self._on_finish is not None:
            self._on_finish(cycle, self)
