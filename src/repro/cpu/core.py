"""Trace-replay core model.

Each of the 16 cores replays one thread's :class:`~repro.cpu.trace.TraceStream`
against the shared memory hierarchy.  The model is deliberately simple -- the
paper's dual-issue out-of-order MIPS32 core is replaced by an in-order engine
that charges one cycle per non-memory instruction and blocks on every data
reference until the hierarchy answers.  The effects the evaluation cares
about are preserved: periodic refresh passes block the arrays and delay the
accesses behind them, and policies that invalidate useful data early cause
extra misses whose latency lengthens execution time (Section 6.5).

Instruction fetches are modelled in two parts: every instruction is charged
one L1I access for energy purposes, and one real instruction fetch is issued
through the hierarchy per ``ifetch_interval`` instructions (walking a small
per-thread code region) so the instruction working set occupies cache lines
and is subject to refresh like everything else.

Under run-ahead replay the cores drive a *batched* access path
(:meth:`Core.step_fast`): a reference that the private hierarchy can resolve
without a directory transaction -- an L1 hit, an L2-served read, a store to
an M/E line -- only touches the core's own replacement/refresh timestamps
and globally additive counters, so its effects are deferred into a
:class:`~repro.coherence.protocol.RunBuffer` and committed in one staged
:meth:`~repro.coherence.protocol.DirectoryProtocol.hit_run` call.  The run
is validated per *block* (one probe and MESI check when the block or epoch
changes), not per reference, so a core streaming hits out of its L1 pays a
few list appends per reference.  Runs are cut only where someone could
observe the pending state: the core's own slow (state-changing) access, a
refresh-wheel drain, or trace completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.cpu.trace import TraceStream
from repro.hierarchy.hierarchy import CacheHierarchy

# After the hierarchy: importing anything under repro.coherence runs that
# package's __init__, whose protocol import needs repro.hierarchy fully
# initialised first.
from repro.coherence.runbuffer import RunBuffer
from repro.mem.line import MESI_EXCLUSIVE, MESI_MODIFIED, MESI_SHARED
from repro.utils.events import EventQueue

#: Number of instructions represented by one real instruction-fetch access.
DEFAULT_IFETCH_INTERVAL = 16

#: Bytes of the per-thread code region walked by the modelled fetches.  Kept
#: small (an inner-loop sized footprint) so that, on the scaled geometry,
#: code does not crowd data out of the small private caches.
DEFAULT_CODE_REGION_BYTES = 512


@dataclass
class CoreStats:
    """Per-core execution statistics."""

    references_completed: int = 0
    instructions_executed: int = 0
    busy_cycles: int = 0
    stall_cycles: int = 0
    finish_cycle: Optional[int] = None

    @property
    def finished(self) -> bool:
        """True once the core has drained its trace."""
        return self.finish_cycle is not None


class Core:
    """One trace-replay core attached to the shared hierarchy."""

    def __init__(
        self,
        core_id: int,
        trace: TraceStream,
        hierarchy: CacheHierarchy,
        event_queue: EventQueue,
        code_base_address: Optional[int] = None,
        ifetch_interval: int = DEFAULT_IFETCH_INTERVAL,
        code_region_bytes: int = DEFAULT_CODE_REGION_BYTES,
        on_finish: Optional[Callable[[int, "Core"], None]] = None,
        prepare_runs: bool = True,
    ) -> None:
        if ifetch_interval < 1:
            raise ValueError("ifetch_interval must be >= 1")
        self.core_id = core_id
        self.trace = trace
        self.hierarchy = hierarchy
        self.events = event_queue
        self.stats = CoreStats()
        self.ifetch_interval = ifetch_interval
        self.code_region_bytes = code_region_bytes
        # Each thread executes from its own code region high in the address
        # space so code and data never collide.
        self.code_base_address = (
            code_base_address
            if code_base_address is not None
            else (1 << 40) + core_id * code_region_bytes
        )
        self._on_finish = on_finish
        self._next_index = 0
        self._instructions_since_ifetch = 0
        self._code_offset = 0
        self._line_bytes = hierarchy.architecture.line_bytes
        self._counts = hierarchy.counters.raw
        # Bound-method caches for the per-reference dispatch.
        self._read = hierarchy.read
        self._write = hierarchy.write
        # The trace unpacked into parallel field lists: the replay loop runs
        # once per reference and a plain list index is several times cheaper
        # than TraceStream.__getitem__ plus dataclass attribute and property
        # lookups on every record.
        self._num_records = len(trace)
        self._addresses = [record.address for record in trace]
        self._is_write = [record.is_write for record in trace]
        self._gaps = [record.gap_instructions for record in trace]
        # Batched access path (run-ahead replay only; event replay passes
        # prepare_runs=False and never pays for it).  Block addresses are
        # precomputed so the same-line fast path is one list read and an
        # int compare; the private caches and the hit-run plumbing are
        # bound once.
        block_mask = ~(self._line_bytes - 1)
        self._block_mask = block_mask
        self._blocks = (
            [address & block_mask for address in self._addresses]
            if prepare_runs
            else None
        )
        caches = hierarchy.cores[core_id]
        self._l1i = caches.l1i
        self._l1d = caches.l1d
        self._l2 = caches.l2
        self._l1d_cycles = caches.l1d.access_cycles
        self._l2_cycles = caches.l2.access_cycles
        # A run write always costs the L1D access (write-through) plus the
        # L2 access; a run read served by the L1D costs the L1D alone.
        self._l1d_l2_cycles = caches.l1d.access_cycles + caches.l2.access_cycles
        self._run = RunBuffer()
        self._commit_run = hierarchy.commit_hit_run
        self._protocol = hierarchy.protocol
        self._epoch = hierarchy.protocol.run_epoch
        # Cached resolution of the most recent servable block: its private
        # line indices and permissions, valid only while the protocol epoch
        # is unchanged (a slow transaction anywhere may recall or
        # back-invalidate private lines).
        self._cb = -1
        self._cb_epoch = -1
        self._cb_l1d = -1
        self._cb_l2 = -1
        self._cb_wok = False
        # Deferred CoreStats tallies, applied on flush.
        self._run_refs = 0
        self._run_busy = 0
        self._run_stall = 0
        self._run_instr = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self, cycle: int) -> None:
        """Schedule the core's first reference at ``cycle`` (event replay)."""
        issue_time = self.begin(cycle)
        if issue_time is not None:
            self.events.schedule_callback(issue_time, self._on_reference)

    def begin(self, cycle: int) -> Optional[int]:
        """Charge the leading instruction gap; return the first issue time.

        Returns None when the trace is empty (the core finishes on the
        spot).  Both replay modes call this; only the event mode then puts a
        callback on the queue, the run-ahead driver keeps the issue time in
        its own ready list.
        """
        if self._num_records == 0:
            self._finish(cycle)
            return None
        first_gap = self._gaps[0]
        self.stats.busy_cycles += first_gap
        self._account_instructions(cycle, first_gap)
        return cycle + first_gap

    @property
    def finished(self) -> bool:
        """True once the core has drained its trace."""
        return self.stats.finished

    # -- event handling ---------------------------------------------------------

    def step(self, cycle: int) -> Optional[int]:
        """Execute the reference issued at ``cycle``; return the next issue time.

        This is the per-reference body shared by both replay modes.  Returns
        None when the trace is drained (the core finishes at completion of
        this reference).
        """
        index = self._next_index
        if self._is_write[index]:
            latency = self._write(self.core_id, self._addresses[index], cycle)
        else:
            latency = self._read(self.core_id, self._addresses[index], cycle)
        stats = self.stats
        stats.references_completed += 1
        stats.busy_cycles += 1
        if latency > 1:
            stats.stall_cycles += latency - 1
        index += 1
        self._next_index = index

        if index >= self._num_records:
            self._finish(cycle + latency)
            return None

        gap = self._gaps[index]
        stats.busy_cycles += gap
        issue_time = cycle + latency + gap
        self._account_instructions(cycle + latency, gap)
        return issue_time

    def step_fast(self, cycle: int) -> Optional[int]:
        """Like :meth:`step`, but private hits join the pending run.

        Byte-equivalent to :meth:`step`: a reference the private caches can
        serve without a directory transaction defers its timestamp/counter
        effects into the run buffer (committed later in one
        ``hit_run`` staged call); anything else lands the run and falls
        back to the ordinary protocol walk.  Only the run-ahead driver
        calls this -- event replay keeps the one-call-per-reference path.
        """
        index = self._next_index
        block = self._blocks[index]
        write = self._is_write[index]
        if block != self._cb or self._cb_epoch != self._epoch[0]:
            if not self._resolve_block(block, cycle, write):
                self.land_run()
                return self.step(cycle)
        buf = self._run
        if write:
            if not self._cb_wok and not self._resolve_write(cycle):
                self.land_run()
                return self.step(cycle)
            buf.l1d_writes += 1
            l1d_index = self._cb_l1d
            if l1d_index >= 0:
                buf.l1d_hits += 1
                idxs = buf.l1d_idx
                if idxs and idxs[-1] == l1d_index:
                    buf.l1d_cyc[-1] = cycle
                    buf.l1d_cnt[-1] += 1
                else:
                    idxs.append(l1d_index)
                    buf.l1d_cyc.append(cycle)
                    buf.l1d_cnt.append(1)
            else:
                buf.l1d_misses += 1
            # The store proceeds to the write-back L2 (write-through L1);
            # the L2 is stamped when its access completes.
            latency = self._l1d_l2_cycles
            l2_index = self._cb_l2
            idxs = buf.l2_idx
            if idxs and idxs[-1] == l2_index:
                buf.l2_cyc[-1] = cycle + latency
                buf.l2_cnt[-1] += 1
            else:
                idxs.append(l2_index)
                buf.l2_cyc.append(cycle + latency)
                buf.l2_cnt.append(1)
            buf.l2_writes += 1
            buf.l2_hits += 1
        else:
            buf.l1d_reads += 1
            l1d_index = self._cb_l1d
            if l1d_index >= 0:
                buf.l1d_hits += 1
                idxs = buf.l1d_idx
                if idxs and idxs[-1] == l1d_index:
                    buf.l1d_cyc[-1] = cycle
                    buf.l1d_cnt[-1] += 1
                else:
                    idxs.append(l1d_index)
                    buf.l1d_cyc.append(cycle)
                    buf.l1d_cnt.append(1)
                latency = self._l1d_cycles
            else:
                latency = self._serve_read_from_l2(block, cycle)

        self._run_refs += 1
        if latency > 1:
            self._run_stall += latency - 1
        index += 1
        self._next_index = index
        if index >= self._num_records:
            self._run_busy += 1
            self.commit_run()
            self._finish(cycle + latency)
            return None
        gap = self._gaps[index]
        self._run_busy += 1 + gap
        if gap:
            # Inlined common case of the gap accounting: charge the L1I
            # energy tallies; hand off to _ifetch_run only when a real
            # instruction fetch falls due.
            self._run_instr += gap
            buf.l1i_reads += gap
            buf.instructions += gap
            since = self._instructions_since_ifetch + gap
            if since < self.ifetch_interval:
                self._instructions_since_ifetch = since
            else:
                self._ifetch_run(cycle + latency, since)
        return cycle + latency + gap

    def land_run(self) -> None:
        """Land the pending timestamp touches; keep the run open.

        Bulk-applies the coalesced per-cache touch lists so the array state
        (replacement stamps, refresh timestamps, WB Counts) is exactly what
        sequential execution would show, then drops the cached block
        resolution.  The counter tallies and per-core statistics stay
        pending -- nothing reads them until the run is committed -- so a
        landing is a cache-level bulk write, not a protocol transaction.

        Called by the run-ahead driver before any queued event executes
        (refresh work reads and rewrites the timestamp vectors), and by the
        core itself before its own slow accesses (whose victim choices read
        the LRU stamps).  Safe and cheap when nothing is pending.
        """
        if self._run.land_touches(self._l1d, self._l1i, self._l2):
            self._protocol.run_landings += 1
        self._cb = -1
        self._cb_epoch = -1

    def commit_run(self) -> None:
        """Commit the whole pending run: touches, tallies and statistics.

        One staged ``hit_run`` call resolves everything the run deferred;
        called when the core drains its trace (and harmless when nothing is
        pending).
        """
        if self._run_refs or self._run_instr:
            stats = self.stats
            stats.references_completed += self._run_refs
            stats.busy_cycles += self._run_busy
            stats.stall_cycles += self._run_stall
            stats.instructions_executed += self._run_instr
            self._run_refs = 0
            self._run_busy = 0
            self._run_stall = 0
            self._run_instr = 0
        buf = self._run
        if not buf.empty():
            self._commit_run(self.core_id, buf)
        self._cb = -1
        self._cb_epoch = -1

    def _resolve_block(self, block: int, cycle: int, write: bool) -> bool:
        """Validate one block for run membership; cache the resolution.

        Returns True when the reference can be served privately: the L1D
        holds the block, or the L2 does (reads fill the L1D; writes
        additionally need M/E, checked by :meth:`_resolve_write`).  Any
        refresh blocking (``busy_horizon``) disqualifies the block so the
        slow path performs the stall accounting.  The resolution stays
        valid until the protocol epoch moves -- one probe and state check
        covers every consecutive reference to the same line.
        """
        self._cb = block
        self._cb_epoch = self._epoch[0]
        self._cb_l1d = -1
        self._cb_l2 = -1
        self._cb_wok = False
        l1d = self._l1d
        if cycle < l1d.busy_horizon:
            return False
        l1d_index = l1d.probe_index(block)
        if l1d_index >= 0:
            self._cb_l1d = l1d_index
            if not write:
                return True
        else:
            l2 = self._l2
            if cycle < l2.busy_horizon:
                return False
            l2_index = l2.probe_index(block)
            if l2_index < 0:
                return False
            self._cb_l2 = l2_index
            if not write:
                return True
        return self._resolve_write(cycle)

    def _resolve_write(self, cycle: int) -> bool:
        """Check write permission on the cached block's L2 line.

        M passes as-is; E is silently upgraded to M in place (the same
        local transition the sequential write path performs); S needs a
        directory upgrade and I a fetch, both slow.
        """
        l2 = self._l2
        if cycle < l2.busy_horizon:
            return False
        l2_index = self._cb_l2
        if l2_index < 0:
            l2_index = l2.probe_index(self._cb)
            if l2_index < 0:
                return False
            self._cb_l2 = l2_index
        code = l2.state_code(l2_index)
        if code == MESI_MODIFIED:
            self._cb_wok = True
            return True
        if code == MESI_EXCLUSIVE:
            l2.set_state_code(l2_index, MESI_MODIFIED)
            self._cb_wok = True
            return True
        return False

    def _serve_read_from_l2(self, block: int, cycle: int) -> int:
        """An L1D-missing read served by the L2: touch L2, fill the L1D.

        The fill is applied eagerly (after landing the pending L1D touches,
        whose stamps decide the victim) because it changes which blocks the
        L1D holds; the timestamp and counter effects stay deferred.
        Returns the reference's latency.
        """
        buf = self._run
        buf.l1d_misses += 1
        buf.l2_reads += 1
        buf.l2_hits += 1
        # The L2 is stamped when its access completes, the same cycle the
        # L1D fill lands.
        latency = self._l1d_cycles + self._l2_cycles
        l2_index = self._cb_l2
        idxs = buf.l2_idx
        touch_cycle = cycle + latency
        if idxs and idxs[-1] == l2_index:
            buf.l2_cyc[-1] = touch_cycle
            buf.l2_cnt[-1] += 1
        else:
            idxs.append(l2_index)
            buf.l2_cyc.append(touch_cycle)
            buf.l2_cnt.append(1)
        l1d = self._l1d
        if buf.land_touches(l1d, None, None):
            self._protocol.run_landings += 1
        buf.l1d_writes += 1
        self._cb_l1d = l1d.fill_block(block, MESI_SHARED, cycle + latency)
        return latency

    def _ifetch_run(self, cycle: int, since: int) -> None:
        """Issue the real instruction fetches a gap has made due.

        The per-instruction energy tallies were already recorded inline;
        this handles only the interval crossings.  A fetch whose code line
        hits the L1I joins the run (its latency is never on the critical
        path); a miss or a refresh-blocked L1I lands the run and walks the
        protocol like any other slow access.
        """
        buf = self._run
        interval = self.ifetch_interval
        while since >= interval:
            since -= interval
            address = self.code_base_address + self._code_offset
            self._code_offset = (
                self._code_offset + self._line_bytes
            ) % self.code_region_bytes
            l1i = self._l1i
            if cycle >= l1i.busy_horizon:
                l1i_index = l1i.probe_index(address & self._block_mask)
                if l1i_index >= 0:
                    buf.l1i_reads += 1
                    buf.l1i_hits += 1
                    idxs = buf.l1i_idx
                    if idxs and idxs[-1] == l1i_index:
                        buf.l1i_cyc[-1] = cycle
                        buf.l1i_cnt[-1] += 1
                    else:
                        idxs.append(l1i_index)
                        buf.l1i_cyc.append(cycle)
                        buf.l1i_cnt.append(1)
                    continue
            # Refresh-stalled or L1I miss: a real protocol walk.
            self._instructions_since_ifetch = since
            self.land_run()
            self.hierarchy.instruction_fetch(self.core_id, address, cycle)
        self._instructions_since_ifetch = since

    def _on_reference(self, cycle: int, _payload: Any) -> None:
        issue_time = self.step(cycle)
        if issue_time is not None:
            self.events.schedule_callback(issue_time, self._on_reference)

    # -- helpers ------------------------------------------------------------------

    def _account_instructions(self, cycle: int, count: int) -> None:
        """Charge instruction-fetch energy and issue periodic real fetches."""
        if count <= 0:
            return
        self.stats.instructions_executed += count
        counts = self._counts
        counts["l1i_reads"] += count
        counts["instructions"] += count
        self._instructions_since_ifetch += count
        while self._instructions_since_ifetch >= self.ifetch_interval:
            self._instructions_since_ifetch -= self.ifetch_interval
            address = self.code_base_address + self._code_offset
            self._code_offset = (
                self._code_offset + self._line_bytes
            ) % self.code_region_bytes
            self.hierarchy.instruction_fetch(self.core_id, address, cycle)

    def _finish(self, cycle: int) -> None:
        self.stats.finish_cycle = cycle
        if self._on_finish is not None:
            self._on_finish(cycle, self)
