"""Trace-replay core model.

Each of the 16 cores replays one thread's :class:`~repro.cpu.trace.TraceStream`
against the shared memory hierarchy.  The model is deliberately simple -- the
paper's dual-issue out-of-order MIPS32 core is replaced by an in-order engine
that charges one cycle per non-memory instruction and blocks on every data
reference until the hierarchy answers.  The effects the evaluation cares
about are preserved: periodic refresh passes block the arrays and delay the
accesses behind them, and policies that invalidate useful data early cause
extra misses whose latency lengthens execution time (Section 6.5).

Instruction fetches are modelled in two parts: every instruction is charged
one L1I access for energy purposes, and one real instruction fetch is issued
through the hierarchy per ``ifetch_interval`` instructions (walking a small
per-thread code region) so the instruction working set occupies cache lines
and is subject to refresh like everything else.

Under run-ahead replay the cores drive a *batched* access path
(:meth:`Core.step_fast`): a reference that the private hierarchy can resolve
without a directory transaction -- an L1 hit, an L2-served read, a store to
an M/E line -- only touches the core's own replacement/refresh timestamps
and globally additive counters, so its effects are deferred into a
:class:`~repro.coherence.protocol.RunBuffer` and committed in one staged
:meth:`~repro.coherence.protocol.DirectoryProtocol.hit_run` call.  The run
is validated per *block* (one probe and MESI check when the block or epoch
changes), not per reference, so a core streaming hits out of its L1 pays a
few list appends per reference.  Runs are cut only where someone could
observe the pending state: the core's own slow (state-changing) access, a
refresh-wheel drain, or trace completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.cpu.trace import TraceStream
from repro.hierarchy.hierarchy import CacheHierarchy

# After the hierarchy: importing anything under repro.coherence runs that
# package's __init__, whose protocol import needs repro.hierarchy fully
# initialised first.
from repro.coherence.runbuffer import RunBuffer, merge_extend
from repro.mem.line import MESI_EXCLUSIVE, MESI_MODIFIED, MESI_SHARED
from repro.utils.events import EventQueue

try:  # numpy is optional; the batch kernel requires it (resolve_kernel gates).
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: Number of instructions represented by one real instruction-fetch access.
DEFAULT_IFETCH_INTERVAL = 16

#: Most references one kernel scan examines.  A longer stretch simply takes
#: several scans; the cap bounds the staging buffers and keeps a scan's
#: columns inside cache.
KERNEL_WINDOW = 2048

#: Staging span of a *promise* scan (a waiting core probed by the driver's
#: horizon computation).  The promise only needs to stretch modestly past
#: the core's pending issue time for the running core's relaxed bound to
#: open up; a short window keeps the per-epoch staging cost of the whole
#: waiting set negligible.  The core's own retiring scans still stage the
#: full :data:`KERNEL_WINDOW`.
PROMISE_WINDOW = 96

#: Capacity of the per-core resolved-block cache (satellite: multi-block
#: LRU).  Small on purpose: it only needs to cover the distinct blocks a
#: core alternates between within one run.
RESOLVED_CACHE_CAPACITY = 64

#: Bytes of the per-thread code region walked by the modelled fetches.  Kept
#: small (an inner-loop sized footprint) so that, on the scaled geometry,
#: code does not crowd data out of the small private caches.
DEFAULT_CODE_REGION_BYTES = 512


@dataclass
class CoreStats:
    """Per-core execution statistics."""

    references_completed: int = 0
    instructions_executed: int = 0
    busy_cycles: int = 0
    stall_cycles: int = 0
    finish_cycle: Optional[int] = None

    @property
    def finished(self) -> bool:
        """True once the core has drained its trace."""
        return self.finish_cycle is not None


class Core:
    """One trace-replay core attached to the shared hierarchy."""

    def __init__(
        self,
        core_id: int,
        trace: TraceStream,
        hierarchy: CacheHierarchy,
        event_queue: EventQueue,
        code_base_address: Optional[int] = None,
        ifetch_interval: int = DEFAULT_IFETCH_INTERVAL,
        code_region_bytes: int = DEFAULT_CODE_REGION_BYTES,
        on_finish: Optional[Callable[[int, "Core"], None]] = None,
        prepare_runs: bool = True,
        kernel: str = "off",
    ) -> None:
        if ifetch_interval < 1:
            raise ValueError("ifetch_interval must be >= 1")
        self.core_id = core_id
        self.trace = trace
        self.hierarchy = hierarchy
        self.events = event_queue
        self.stats = CoreStats()
        self.ifetch_interval = ifetch_interval
        self.code_region_bytes = code_region_bytes
        # Each thread executes from its own code region high in the address
        # space so code and data never collide.
        self.code_base_address = (
            code_base_address
            if code_base_address is not None
            else (1 << 40) + core_id * code_region_bytes
        )
        self._on_finish = on_finish
        self._next_index = 0
        self._instructions_since_ifetch = 0
        self._code_offset = 0
        self._line_bytes = hierarchy.architecture.line_bytes
        self._counts = hierarchy.counters.raw
        # Bound-method caches for the per-reference dispatch.
        self._read = hierarchy.read
        self._write = hierarchy.write
        # The trace unpacked into parallel field lists: the replay loop runs
        # once per reference and a plain list index is several times cheaper
        # than TraceStream.__getitem__ plus dataclass attribute and property
        # lookups on every record.
        self._num_records = len(trace)
        self._addresses = [record.address for record in trace]
        self._is_write = [record.is_write for record in trace]
        self._gaps = [record.gap_instructions for record in trace]
        # Batched access path (run-ahead replay only; event replay passes
        # prepare_runs=False and never pays for it).  Block addresses are
        # precomputed so the same-line fast path is one list read and an
        # int compare; the private caches and the hit-run plumbing are
        # bound once.
        block_mask = ~(self._line_bytes - 1)
        self._block_mask = block_mask
        self._blocks = (
            [address & block_mask for address in self._addresses]
            if prepare_runs
            else None
        )
        caches = hierarchy.cores[core_id]
        self._l1i = caches.l1i
        self._l1d = caches.l1d
        self._l2 = caches.l2
        self._l1d_cycles = caches.l1d.access_cycles
        self._l2_cycles = caches.l2.access_cycles
        # A run write always costs the L1D access (write-through) plus the
        # L2 access; a run read served by the L1D costs the L1D alone.
        self._l1d_l2_cycles = caches.l1d.access_cycles + caches.l2.access_cycles
        self._run = RunBuffer()
        self._commit_run = hierarchy.commit_hit_run
        self._protocol = hierarchy.protocol
        self._epoch = hierarchy.protocol.run_epoch
        # Cached resolution of the most recent servable block: its private
        # line indices and permissions, valid only while the protocol epoch
        # is unchanged (a slow transaction anywhere may recall or
        # back-invalidate private lines).
        self._cb = -1
        self._cb_epoch = -1
        self._cb_l1d = -1
        self._cb_l2 = -1
        self._cb_wok = False
        # Deferred CoreStats tallies, applied on flush.
        self._run_refs = 0
        self._run_busy = 0
        self._run_stall = 0
        self._run_instr = 0
        # Multi-block resolution cache: block -> (l1d index, l2 index,
        # write ok) for every block resolved since the last landing.  The
        # same validity rules as the one-entry ``_cb`` cache apply (dropped
        # on epoch change and on every landing); on top of those the cache
        # survives block *switches*, so a core alternating between lines
        # pays one probe per line per run instead of one per switch.
        self._resolved: dict = {}
        self._resolved_epoch = -1
        self._res_hits = 0
        self._res_misses = 0
        # Dirty-core registry: the core adds itself when it first defers
        # run state, and the run-ahead drivers land only registered cores
        # at a wheel drain.  The flag being False guarantees ``_cb == -1``,
        # an empty resolution cache and an empty run buffer (they are
        # cleared wherever the flag is), so skipping ``land_run`` for
        # unregistered cores is exact, not an approximation.
        self._in_dirty = False
        self._dirty_cores = hierarchy.protocol.dirty_cores
        # Batch-replay kernel staging (see repro.kernels): the trace as
        # int64 columns, the scan dispatch, and the per-core coverage
        # counters.  Only built when a kernel mode is selected.
        self.kernel = kernel
        self._kernel_batches = 0
        self._kernel_accesses = 0
        self._slow_refs = 0
        self._last_seq = -1
        self._frontier = -1
        self._frontier_epoch = -1
        self._frontier_gen = -1
        self._staged_lo = -1
        self._staged_end = -1
        self._staged_epoch = -1
        self._staged_gen = -1
        self._read_stall = max(self._l1d_cycles - 1, 0)
        self._write_stall = max(self._l1d_l2_cycles - 1, 0)
        if kernel != "off" and prepare_runs:
            from repro.kernels import scanner_for

            self._scan = scanner_for(kernel)
            count = self._num_records
            self._blocks_np = _np.array(
                self._blocks if self._blocks is not None else [],
                dtype=_np.int64,
            )
            self._write_np = _np.array(self._is_write, dtype=_np.int64)
            gaps_next = _np.zeros(count, dtype=_np.int64)
            if count > 1:
                gaps_next[: count - 1] = self._gaps[1:]
            self._gaps_next_np = gaps_next
            # The instruction-fetch slot model: the code region as
            # ``nslots`` line-sized slots whose L1I indices are probed per
            # scan.  It only holds when the region tiles into whole lines
            # (the offset walk then cycles through slot-aligned addresses);
            # otherwise crossings simply cap every stretch and fall back to
            # the scalar fetch path.
            self._slots_ok = (
                code_region_bytes % self._line_bytes == 0
                and code_region_bytes >= self._line_bytes
            )
            self._nslots = max(1, code_region_bytes // self._line_bytes)
            self._code_idx = _np.empty(self._nslots, dtype=_np.int64)
            empty = _np.empty(0, dtype=_np.int64)
            self._map_blocks = empty
            self._map_l1d = empty
            self._map_l2 = empty
            self._map_wok = empty
        else:
            self._scan = None

    # -- lifecycle -------------------------------------------------------------

    def start(self, cycle: int) -> None:
        """Schedule the core's first reference at ``cycle`` (event replay)."""
        issue_time = self.begin(cycle)
        if issue_time is not None:
            self.events.schedule_callback(issue_time, self._on_reference)

    def begin(self, cycle: int) -> Optional[int]:
        """Charge the leading instruction gap; return the first issue time.

        Returns None when the trace is empty (the core finishes on the
        spot).  Both replay modes call this; only the event mode then puts a
        callback on the queue, the run-ahead driver keeps the issue time in
        its own ready list.
        """
        if self._num_records == 0:
            self._finish(cycle)
            return None
        first_gap = self._gaps[0]
        self.stats.busy_cycles += first_gap
        self._account_instructions(cycle, first_gap)
        return cycle + first_gap

    @property
    def finished(self) -> bool:
        """True once the core has drained its trace."""
        return self.stats.finished

    # -- event handling ---------------------------------------------------------

    def step(self, cycle: int) -> Optional[int]:
        """Execute the reference issued at ``cycle``; return the next issue time.

        This is the per-reference body shared by both replay modes.  Returns
        None when the trace is drained (the core finishes at completion of
        this reference).
        """
        index = self._next_index
        if self._is_write[index]:
            latency = self._write(self.core_id, self._addresses[index], cycle)
        else:
            latency = self._read(self.core_id, self._addresses[index], cycle)
        stats = self.stats
        stats.references_completed += 1
        stats.busy_cycles += 1
        if latency > 1:
            stats.stall_cycles += latency - 1
        index += 1
        self._next_index = index

        if index >= self._num_records:
            self._finish(cycle + latency)
            return None

        gap = self._gaps[index]
        stats.busy_cycles += gap
        issue_time = cycle + latency + gap
        self._account_instructions(cycle + latency, gap)
        return issue_time

    def step_fast(self, cycle: int) -> Optional[int]:
        """Like :meth:`step`, but private hits join the pending run.

        Byte-equivalent to :meth:`step`: a reference the private caches can
        serve without a directory transaction defers its timestamp/counter
        effects into the run buffer (committed later in one
        ``hit_run`` staged call); anything else lands the run and falls
        back to the ordinary protocol walk.  Only the run-ahead driver
        calls this -- event replay keeps the one-call-per-reference path.
        """
        index = self._next_index
        block = self._blocks[index]
        write = self._is_write[index]
        if not self._in_dirty:
            self._in_dirty = True
            self._dirty_cores.append(self)
        if block != self._cb or self._cb_epoch != self._epoch[0]:
            epoch = self._epoch[0]
            resolved = self._resolved
            if self._resolved_epoch != epoch:
                if resolved:
                    resolved.clear()
                self._resolved_epoch = epoch
            entry = resolved.get(block)
            if entry is not None:
                # A block resolved earlier in this run: reload it without
                # re-probing.  Refresh to most-recently-used so eviction
                # drops the coldest resolution (the entry set is unchanged,
                # so the kernel's map arrays stay valid).
                self._res_hits += 1
                del resolved[block]
                resolved[block] = entry
                self._cb = block
                self._cb_epoch = epoch
                self._cb_l1d, self._cb_l2, self._cb_wok = entry
            else:
                self._res_misses += 1
                if not self._resolve_block(block, cycle, write):
                    self._slow_refs += 1
                    self.land_run()
                    return self.step(cycle)
        buf = self._run
        if write:
            if not self._cb_wok and not self._resolve_write(cycle):
                self._slow_refs += 1
                self.land_run()
                return self.step(cycle)
            buf.l1d_writes += 1
            l1d_index = self._cb_l1d
            if l1d_index >= 0:
                buf.l1d_hits += 1
                idxs = buf.l1d_idx
                if idxs and idxs[-1] == l1d_index:
                    buf.l1d_cyc[-1] = cycle
                    buf.l1d_cnt[-1] += 1
                else:
                    idxs.append(l1d_index)
                    buf.l1d_cyc.append(cycle)
                    buf.l1d_cnt.append(1)
            else:
                buf.l1d_misses += 1
            # The store proceeds to the write-back L2 (write-through L1);
            # the L2 is stamped when its access completes.
            latency = self._l1d_l2_cycles
            l2_index = self._cb_l2
            idxs = buf.l2_idx
            if idxs and idxs[-1] == l2_index:
                buf.l2_cyc[-1] = cycle + latency
                buf.l2_cnt[-1] += 1
            else:
                idxs.append(l2_index)
                buf.l2_cyc.append(cycle + latency)
                buf.l2_cnt.append(1)
            buf.l2_writes += 1
            buf.l2_hits += 1
        else:
            buf.l1d_reads += 1
            l1d_index = self._cb_l1d
            if l1d_index >= 0:
                buf.l1d_hits += 1
                idxs = buf.l1d_idx
                if idxs and idxs[-1] == l1d_index:
                    buf.l1d_cyc[-1] = cycle
                    buf.l1d_cnt[-1] += 1
                else:
                    idxs.append(l1d_index)
                    buf.l1d_cyc.append(cycle)
                    buf.l1d_cnt.append(1)
                latency = self._l1d_cycles
            else:
                latency = self._serve_read_from_l2(block, cycle)

        self._run_refs += 1
        if latency > 1:
            self._run_stall += latency - 1
        index += 1
        self._next_index = index
        if index >= self._num_records:
            self._run_busy += 1
            self.commit_run()
            self._finish(cycle + latency)
            return None
        gap = self._gaps[index]
        self._run_busy += 1 + gap
        if gap:
            # Inlined common case of the gap accounting: charge the L1I
            # energy tallies; hand off to _ifetch_run only when a real
            # instruction fetch falls due.
            self._run_instr += gap
            buf.l1i_reads += gap
            buf.instructions += gap
            since = self._instructions_since_ifetch + gap
            if since < self.ifetch_interval:
                self._instructions_since_ifetch = since
            else:
                self._ifetch_run(cycle + latency, since)
        return cycle + latency + gap

    def step_batch(
        self,
        cycle: int,
        strict: int,
        relaxed: int,
        gen: int,
        allow_scalar: bool,
    ) -> Optional[int]:
        """One unit of kernel-mode replay: a batched stretch or one reference.

        Byte-equivalent to the same references through :meth:`step_fast`.
        When the upcoming reference's block is already resolved, a columnar
        scan (:mod:`repro.kernels`) classifies up to :data:`KERNEL_WINDOW`
        references at once and the whole eligible stretch -- bounded by
        ``relaxed``, the kernel horizon -- retires in one call: touch lists
        merge onto the run buffer seam-coalesced, counter tallies add in
        closed form, and the stretch claims its sequence numbers in one
        :meth:`~repro.utils.events.EventQueue.claim_seq_bulk` draw.
        Anything the scan cannot promise falls back to one scalar
        :meth:`step_fast` reference, allowed only below the ``strict``
        horizon (``allow_scalar`` marks the batch's unconditional first
        action).  Horizons of ``-1`` are unbounded.

        Returns the next issue time, None when the trace drained, or -1
        when blocked (nothing retirable below the horizons); the claimed
        sequence number of the pending reference is left in ``_last_seq``.
        The scan's private frontier is published (stamped with the
        protocol epoch and driver generation ``gen``) so the driver can let
        *other* cores run past this core's pending references while they
        are promised to stay core-private operations.

        One call stitches vector segments across *seams*: a read absent
        from the L1D but resident in the private L2 is a structural fill
        -- core-private, commuting with other cores' promised references
        just like a pure hit -- so below the relaxed horizon it executes
        as one :meth:`step_fast` reference between two scans, with the
        staged hit map repaired in place, instead of ending the batch.
        """
        l1d = self._l1d
        l2 = self._l2
        # The kernel never retires the trace's final record: the scalar
        # path owns finish/commit, and every kernel-retired reference must
        # have a successor (it claims that successor's sequence number).
        if (
            self._num_records - 1 - self._next_index > 0
            and cycle >= l1d.busy_horizon
            and cycle >= l2.busy_horizon
        ):
            epoch0 = self._epoch[0]
            probe_d = l1d.probe_index
            probe_2 = l2.probe_index
            state = l2.state_code
            progressed = False
            next_time = cycle
            # ``allow_scalar`` is the driver's proof that this core is the
            # globally earliest actor at (time, seq).  That licence covers
            # more than one scalar step: when the horizon sits at or below
            # the batch start, the reference issuing exactly at ``cycle``
            # may still retire -- as a kernel batch of one -- because every
            # later reference of this stretch issues strictly after it.
            # The boost is consumed by the first action.
            boost = allow_scalar
            while True:
                index = self._next_index
                window = self._num_records - 1 - index
                if window <= 0:
                    break
                if window > KERNEL_WINDOW:
                    window = KERNEL_WINDOW
                # Classify the pending reference with direct probes: a
                # scan-retirable reference (or a horizon-blocked one whose
                # scan still yields a publishable frontier) goes to the
                # scan; a seam fill executes here; anything else ends the
                # batch at the scalar gate.
                block = self._blocks[index]
                seam = False
                if self._is_write[index]:
                    l2_index = probe_2(block)
                    eligible = l2_index >= 0 and state(l2_index) in (
                        MESI_MODIFIED,
                        MESI_EXCLUSIVE,
                    )
                else:
                    eligible = probe_d(block) >= 0
                    seam = not eligible and probe_2(block) >= 0
                if not eligible and not seam:
                    break
                horizon = relaxed
                if boost and 0 <= relaxed <= cycle:
                    horizon = cycle + 1
                if (
                    seam
                    and (horizon < 0 or cycle < horizon)
                    and self._seam_tail_private(index, cycle)
                ):
                    boost = False
                    next_time = self.step_fast(cycle)
                    self._kernel_accesses += 1
                    self._last_seq = self.events.claim_seq()
                    progressed = True
                    if (
                        self._staged_epoch == epoch0
                        and self._staged_gen == gen
                        and self._staged_lo <= index < self._staged_end
                    ):
                        # The fill re-homed one L1D way: drop the map's
                        # claim on whatever that way held and point the
                        # filled block's slot at it.
                        way = self._cb_l1d
                        map_l1d = self._map_l1d
                        map_l1d[map_l1d == way] = -1
                        pos = int(
                            _np.searchsorted(self._map_blocks, block)
                        )
                        if (
                            pos < self._map_blocks.size
                            and int(self._map_blocks[pos]) == block
                        ):
                            map_l1d[pos] = way
                    if self._epoch[0] != epoch0 or not self._in_dirty:
                        return next_time
                    cycle = next_time
                    continue
                # Staged maps persist across batches: their probe results
                # only move at a directory transaction (epoch) or a wheel
                # drain (generation), and any scalar-tail step voids them
                # explicitly.  Re-stage only when the pending stretch runs
                # off the staged one.
                if (
                    self._staged_epoch != epoch0
                    or self._staged_gen != gen
                    or index < self._staged_lo
                ):
                    avail = 0
                else:
                    avail = self._staged_end - index
                if avail >= window:
                    w = window
                elif avail > 0:
                    w = avail
                else:
                    self._stage_window(index, window)
                    self._staged_lo = index
                    self._staged_end = index + window
                    self._staged_epoch = epoch0
                    self._staged_gen = gen
                    w = window
                # The scanned span is NOT capped at the horizon: the
                # scan's private frontier -- how far the stretch stays
                # core-private, ignoring the horizon -- is what lets
                # the driver relax the other cores' horizons, so
                # scanning past the cut is the point, not waste.
                result = self._scan(
                    self._blocks_np,
                    self._write_np,
                    self._gaps_next_np,
                    index,
                    w,
                    cycle,
                    horizon,
                    self._map_blocks,
                    self._map_l1d,
                    self._map_l2,
                    self._map_wok,
                    self._l1d_cycles,
                    self._l1d_l2_cycles,
                    self._instructions_since_ifetch,
                    self.ifetch_interval,
                    self._code_offset // self._line_bytes,
                    self._code_slots(cycle),
                )
                if not result[0]:
                    frontier = result[2]
                    if frontier > cycle:
                        # Horizon-blocked with a real private prefix:
                        # publish the promise so other cores may retire
                        # past this core's pending reference.
                        self._frontier = frontier
                        self._frontier_epoch = epoch0
                        self._frontier_gen = gen
                    break
                if not self._in_dirty:
                    self._in_dirty = True
                    self._dirty_cores.append(self)
                boost = False
                next_time = self._apply_scan(result, index, epoch0, gen)
                progressed = True
                if 0 <= relaxed <= next_time:
                    return next_time
                cycle = next_time
            if progressed:
                return next_time
        if not allow_scalar and 0 <= strict <= cycle:
            return -1
        keep = (
            self._frontier_epoch == self._epoch[0]
            and self._frontier_gen == gen
            and cycle < self._frontier
        )
        next_time = self.step_fast(cycle)
        # A scalar step may fill the L1D or change MESI state without
        # moving the epoch: the staged hit maps are no longer trustworthy.
        self._staged_epoch = -1
        # A scalar reference issuing *inside* the published promise is one
        # the scan classified private and the horizon cut: it retires as
        # the same core-private operation, so the frontier stays honest
        # for the references behind it (issue times are strictly
        # increasing, so ``cycle < frontier`` is exactly ``position <
        # first non-private``).  Anything at or past the frontier may
        # change state: void it.
        if not keep:
            self._frontier_epoch = -1
        if next_time is not None:
            self._last_seq = self.events.claim_seq()
        return next_time

    def promise(self, cycle: int, gen: int) -> int:
        """Publish this waiting core's private frontier for the driver.

        Called from the driver's horizon computation on cores that are
        *not* at the head of the ready list and have no current promise:
        stage (or reuse) the hit map, scan with a closed horizon, and
        publish the private frontier so the running core's relaxed bound
        can pass this core's pending issue time ``cycle``.  Entirely
        side-effect free on simulation state.  Returns the frontier when
        one was promised (> ``cycle``), else ``cycle``; the result --
        including "no promise", stored as a zero frontier -- is cached
        against the (epoch, generation) stamps so repeated horizon
        computations cost one dict-free comparison.
        """
        epoch0 = self._epoch[0]
        if self._frontier_epoch == epoch0 and self._frontier_gen == gen:
            frontier = self._frontier
            return frontier if frontier > cycle else cycle
        self._frontier = 0
        self._frontier_epoch = epoch0
        self._frontier_gen = gen
        index = self._next_index
        window = self._num_records - 1 - index
        if window <= 0:
            return cycle
        l1d = self._l1d
        l2 = self._l2
        if cycle < l1d.busy_horizon or cycle < l2.busy_horizon:
            return cycle
        if window > PROMISE_WINDOW:
            window = PROMISE_WINDOW
        block = self._blocks[index]
        if self._is_write[index]:
            l2_index = l2.probe_index(block)
            if l2_index < 0 or l2.state_code(l2_index) not in (
                MESI_MODIFIED,
                MESI_EXCLUSIVE,
            ):
                return cycle
        elif l1d.probe_index(block) < 0 and l2.probe_index(block) < 0:
            return cycle
        if (
            self._staged_epoch != epoch0
            or self._staged_gen != gen
            or index < self._staged_lo
        ):
            avail = 0
        else:
            avail = self._staged_end - index
        if avail >= window:
            w = window
        elif avail > 0:
            w = avail
        else:
            self._stage_window(index, window)
            self._staged_lo = index
            self._staged_end = index + window
            self._staged_epoch = epoch0
            self._staged_gen = gen
            w = window
        result = self._scan(
            self._blocks_np,
            self._write_np,
            self._gaps_next_np,
            index,
            w,
            cycle,
            cycle,
            self._map_blocks,
            self._map_l1d,
            self._map_l2,
            self._map_wok,
            self._l1d_cycles,
            self._l1d_l2_cycles,
            self._instructions_since_ifetch,
            self.ifetch_interval,
            self._code_offset // self._line_bytes,
            self._code_slots(cycle),
        )
        frontier = result[2]
        if frontier > cycle:
            self._frontier = frontier
            return frontier
        return cycle

    def _apply_scan(self, result, index: int, epoch: int, gen: int) -> int:
        """Land one scan's plan: touches, tallies, stats, seqs, frontier.

        Each aggregate below is the closed form of what n iterations of
        :meth:`step_fast` would have accumulated one reference at a time;
        the hypothesis suite pins the equivalence per backend.
        """
        (
            n, next_time, frontier,
            d_idx, d_cyc, d_cnt,
            l2_idx, l2_cyc, l2_cnt,
            i_idx, i_cyc, i_cnt,
            writes, d_hits, gsum, ncross, lat_sum, since_out,
            upgrades,
        ) = result
        if upgrades:
            # First-writes to Exclusive lines retired in-scan: perform the
            # same silent E->M transition the scalar write path does, once
            # per line at batch end (nothing observes the line in between),
            # and mark the map slot writable-as-Modified.
            l2 = self._l2
            map_l2 = self._map_l2
            map_wok = self._map_wok
            for slot in upgrades:
                l2.set_state_code(int(map_l2[slot]), MESI_MODIFIED)
                map_wok[slot] = 1
        buf = self._run
        merge_extend(buf.l1d_idx, buf.l1d_cyc, buf.l1d_cnt, d_idx, d_cyc, d_cnt)
        merge_extend(buf.l2_idx, buf.l2_cyc, buf.l2_cnt, l2_idx, l2_cyc, l2_cnt)
        merge_extend(buf.l1i_idx, buf.l1i_cyc, buf.l1i_cnt, i_idx, i_cyc, i_cnt)
        reads = n - writes
        buf.l1d_reads += reads
        buf.l1d_writes += writes
        buf.l1d_hits += d_hits
        buf.l1d_misses += n - d_hits
        buf.l2_writes += writes
        buf.l2_hits += writes
        buf.l1i_reads += gsum + ncross
        buf.l1i_hits += ncross
        buf.instructions += gsum
        self._run_refs += n
        self._run_stall += reads * self._read_stall + writes * self._write_stall
        self._run_busy += n + gsum
        self._run_instr += gsum
        self._instructions_since_ifetch = since_out
        if ncross:
            self._code_offset = (
                self._code_offset + ncross * self._line_bytes
            ) % self.code_region_bytes
        self._next_index = index + n
        self._kernel_batches += 1
        self._kernel_accesses += n
        self._last_seq = self.events.claim_seq_bulk(n)
        self._frontier = frontier
        self._frontier_epoch = epoch
        self._frontier_gen = gen
        return next_time

    def _stage_window(self, index: int, window: int) -> None:
        """Build the scan's hit map by probing the private caches directly.

        Probes every distinct block of the staged window once -- tags,
        validity and the L2 MESI state -- with no side effects, exactly the
        classification :meth:`_resolve_block` / :meth:`_resolve_write`
        perform minus their caching.  Writability is encoded three-way:
        ``1`` Modified (writes retire as-is), ``2`` Exclusive (writes
        retire with a batch-end upgrade), ``0`` not writable.  Pure
        private hits never move tags or states, and the seams inside one
        batch repair the map in place (an L1D fill re-homes one way, an
        E->M upgrade flips one ``wok``), so one build covers every scan of
        the staged stretch.  The caller has already checked the busy
        horizons; no events run inside a batch, so they cannot move.
        """
        probe_d = self._l1d.probe_index
        probe_2 = self._l2.probe_index
        state = self._l2.state_code
        blocks_u = _np.unique(self._blocks_np[index : index + window])
        m = blocks_u.size
        map_l1d = _np.empty(m, dtype=_np.int64)
        map_l2 = _np.empty(m, dtype=_np.int64)
        map_wok = _np.empty(m, dtype=_np.int64)
        for t, block in enumerate(blocks_u.tolist()):
            map_l1d[t] = probe_d(block)
            l2_index = probe_2(block)
            map_l2[t] = l2_index
            if l2_index >= 0:
                code = state(l2_index)
                map_wok[t] = (
                    1
                    if code == MESI_MODIFIED
                    else (2 if code == MESI_EXCLUSIVE else 0)
                )
            else:
                map_wok[t] = 0
        self._map_blocks = blocks_u
        self._map_l1d = map_l1d
        self._map_l2 = map_l2
        self._map_wok = map_wok

    def _seam_tail_private(self, index: int, cycle: int) -> bool:
        """True when the seam reference's trailing gap stays in-run.

        A seam executes via :meth:`step_fast` *above* the strict horizon,
        which is only sound while every side effect is core-private.  The
        data access is (the caller classified it an L2-served fill); the
        risk is the trailing instruction gap making real fetches due whose
        code lines miss the L1I -- those land the run and walk the
        protocol out of order.  Pre-verify them instead: every crossing's
        slot must be L1I-resident and the L1I unblocked at the fetch cycle
        (``busy_horizon`` is fixed inside a batch).  Conservative failures
        just end the batch at the scalar gate.
        """
        since = self._instructions_since_ifetch + self._gaps[index + 1]
        crossings = since // self.ifetch_interval
        if crossings == 0:
            return True
        if not self._slots_ok:
            return False
        l1i = self._l1i
        if cycle + self._l1d_cycles + self._l2_cycles < l1i.busy_horizon:
            return False
        probe = l1i.probe_index
        base = self.code_base_address
        mask = self._block_mask
        line_bytes = self._line_bytes
        nslots = self._nslots
        slot0 = self._code_offset // line_bytes
        for j in range(min(crossings, nslots)):
            address = base + ((slot0 + j) % nslots) * line_bytes
            if probe(address & mask) < 0:
                return False
        return True

    def _code_slots(self, cycle: int) -> "_np.ndarray":
        """Per-slot L1I line indices for the scan's crossing checks.

        ``-1`` marks a slot the kernel must not promise: the code line is
        absent, the L1I is refresh-blocked past the batch start, or the
        region does not tile into whole lines.  Conservative by design --
        a ``-1`` only forces the crossing-carrying reference down the
        scalar fetch path, which re-checks everything per fetch.
        """
        code_idx = self._code_idx
        l1i = self._l1i
        if not self._slots_ok or cycle < l1i.busy_horizon:
            code_idx[:] = -1
            return code_idx
        probe = l1i.probe_index
        base = self.code_base_address
        mask = self._block_mask
        line_bytes = self._line_bytes
        for slot in range(self._nslots):
            code_idx[slot] = probe((base + slot * line_bytes) & mask)
        return code_idx

    def land_run(self) -> None:
        """Land the pending timestamp touches; keep the run open.

        Bulk-applies the coalesced per-cache touch lists so the array state
        (replacement stamps, refresh timestamps, WB Counts) is exactly what
        sequential execution would show, then drops the cached block
        resolution.  The counter tallies and per-core statistics stay
        pending -- nothing reads them until the run is committed -- so a
        landing is a cache-level bulk write, not a protocol transaction.

        Called by the run-ahead driver before any queued event executes
        (refresh work reads and rewrites the timestamp vectors), and by the
        core itself before its own slow accesses (whose victim choices read
        the LRU stamps).  Safe and cheap when nothing is pending.
        """
        if self._run.land_touches(self._l1d, self._l1i, self._l2):
            self._protocol.run_landings += 1
        self._cb = -1
        self._cb_epoch = -1
        self._in_dirty = False
        self._frontier_epoch = -1
        if self._resolved:
            self._resolved.clear()

    def commit_run(self) -> None:
        """Commit the whole pending run: touches, tallies and statistics.

        One staged ``hit_run`` call resolves everything the run deferred;
        called when the core drains its trace (and harmless when nothing is
        pending).
        """
        if self._run_refs or self._run_instr:
            stats = self.stats
            stats.references_completed += self._run_refs
            stats.busy_cycles += self._run_busy
            stats.stall_cycles += self._run_stall
            stats.instructions_executed += self._run_instr
            self._run_refs = 0
            self._run_busy = 0
            self._run_stall = 0
            self._run_instr = 0
        buf = self._run
        if not buf.empty():
            self._commit_run(self.core_id, buf)
        self._cb = -1
        self._cb_epoch = -1
        self._in_dirty = False
        self._frontier_epoch = -1
        if self._resolved:
            self._resolved.clear()

    def _store_resolution(self) -> None:
        """Remember the current block's resolution in the multi-block cache.

        Called on every successful resolution (and on permission upgrades
        and L1D fills, which change an existing entry's fields).  Evicts
        the least-recently-refreshed entry at capacity.
        """
        resolved = self._resolved
        block = self._cb
        if block not in resolved and len(resolved) >= RESOLVED_CACHE_CAPACITY:
            del resolved[next(iter(resolved))]
        resolved[block] = (self._cb_l1d, self._cb_l2, self._cb_wok)

    def _resolve_block(self, block: int, cycle: int, write: bool) -> bool:
        """Validate one block for run membership; cache the resolution.

        Returns True when the reference can be served privately: the L1D
        holds the block, or the L2 does (reads fill the L1D; writes
        additionally need M/E, checked by :meth:`_resolve_write`).  Any
        refresh blocking (``busy_horizon``) disqualifies the block so the
        slow path performs the stall accounting.  The resolution stays
        valid until the protocol epoch moves -- one probe and state check
        covers every consecutive reference to the same line.
        """
        self._cb = block
        self._cb_epoch = self._epoch[0]
        self._cb_l1d = -1
        self._cb_l2 = -1
        self._cb_wok = False
        l1d = self._l1d
        if cycle < l1d.busy_horizon:
            return False
        l1d_index = l1d.probe_index(block)
        if l1d_index >= 0:
            self._cb_l1d = l1d_index
            if not write:
                self._store_resolution()
                return True
        else:
            l2 = self._l2
            if cycle < l2.busy_horizon:
                return False
            l2_index = l2.probe_index(block)
            if l2_index < 0:
                return False
            self._cb_l2 = l2_index
            if not write:
                self._store_resolution()
                return True
        return self._resolve_write(cycle)

    def _resolve_write(self, cycle: int) -> bool:
        """Check write permission on the cached block's L2 line.

        M passes as-is; E is silently upgraded to M in place (the same
        local transition the sequential write path performs); S needs a
        directory upgrade and I a fetch, both slow.
        """
        l2 = self._l2
        if cycle < l2.busy_horizon:
            return False
        l2_index = self._cb_l2
        if l2_index < 0:
            l2_index = l2.probe_index(self._cb)
            if l2_index < 0:
                return False
            self._cb_l2 = l2_index
        code = l2.state_code(l2_index)
        if code == MESI_MODIFIED:
            self._cb_wok = True
            self._store_resolution()
            return True
        if code == MESI_EXCLUSIVE:
            l2.set_state_code(l2_index, MESI_MODIFIED)
            self._cb_wok = True
            self._store_resolution()
            return True
        return False

    def _serve_read_from_l2(self, block: int, cycle: int) -> int:
        """An L1D-missing read served by the L2: touch L2, fill the L1D.

        The fill is applied eagerly (after landing the pending L1D touches,
        whose stamps decide the victim) because it changes which blocks the
        L1D holds; the timestamp and counter effects stay deferred.
        Returns the reference's latency.
        """
        buf = self._run
        buf.l1d_misses += 1
        buf.l2_reads += 1
        buf.l2_hits += 1
        # The L2 is stamped when its access completes, the same cycle the
        # L1D fill lands.
        latency = self._l1d_cycles + self._l2_cycles
        l2_index = self._cb_l2
        idxs = buf.l2_idx
        touch_cycle = cycle + latency
        if idxs and idxs[-1] == l2_index:
            buf.l2_cyc[-1] = touch_cycle
            buf.l2_cnt[-1] += 1
        else:
            idxs.append(l2_index)
            buf.l2_cyc.append(touch_cycle)
            buf.l2_cnt.append(1)
        l1d = self._l1d
        if buf.land_touches(l1d, None, None):
            self._protocol.run_landings += 1
        buf.l1d_writes += 1
        self._cb_l1d = l1d.fill_block(block, MESI_SHARED, cycle + latency)
        # The fill repurposed one L1D way: any cached resolution pointing
        # at that way now describes the evicted block and must drop its
        # L1D index (the block usually remains L2-resolvable).
        filled = self._cb_l1d
        resolved = self._resolved
        if resolved:
            for other, entry in resolved.items():
                if entry[0] == filled and other != block:
                    resolved[other] = (-1, entry[1], entry[2])
        self._store_resolution()
        return latency

    def _ifetch_run(self, cycle: int, since: int) -> None:
        """Issue the real instruction fetches a gap has made due.

        The per-instruction energy tallies were already recorded inline;
        this handles only the interval crossings.  A fetch whose code line
        hits the L1I joins the run (its latency is never on the critical
        path); a miss or a refresh-blocked L1I lands the run and walks the
        protocol like any other slow access.
        """
        buf = self._run
        interval = self.ifetch_interval
        while since >= interval:
            since -= interval
            address = self.code_base_address + self._code_offset
            self._code_offset = (
                self._code_offset + self._line_bytes
            ) % self.code_region_bytes
            l1i = self._l1i
            if cycle >= l1i.busy_horizon:
                l1i_index = l1i.probe_index(address & self._block_mask)
                if l1i_index >= 0:
                    buf.l1i_reads += 1
                    buf.l1i_hits += 1
                    idxs = buf.l1i_idx
                    if idxs and idxs[-1] == l1i_index:
                        buf.l1i_cyc[-1] = cycle
                        buf.l1i_cnt[-1] += 1
                    else:
                        idxs.append(l1i_index)
                        buf.l1i_cyc.append(cycle)
                        buf.l1i_cnt.append(1)
                    continue
            # Refresh-stalled or L1I miss: a real protocol walk.
            self._instructions_since_ifetch = since
            self.land_run()
            self.hierarchy.instruction_fetch(self.core_id, address, cycle)
        self._instructions_since_ifetch = since

    def _on_reference(self, cycle: int, _payload: Any) -> None:
        issue_time = self.step(cycle)
        if issue_time is not None:
            self.events.schedule_callback(issue_time, self._on_reference)

    # -- helpers ------------------------------------------------------------------

    def _account_instructions(self, cycle: int, count: int) -> None:
        """Charge instruction-fetch energy and issue periodic real fetches."""
        if count <= 0:
            return
        self.stats.instructions_executed += count
        counts = self._counts
        counts["l1i_reads"] += count
        counts["instructions"] += count
        self._instructions_since_ifetch += count
        while self._instructions_since_ifetch >= self.ifetch_interval:
            self._instructions_since_ifetch -= self.ifetch_interval
            address = self.code_base_address + self._code_offset
            self._code_offset = (
                self._code_offset + self._line_bytes
            ) % self.code_region_bytes
            self.hierarchy.instruction_fetch(self.core_id, address, cycle)

    def _finish(self, cycle: int) -> None:
        self.stats.finish_cycle = cycle
        if self._on_finish is not None:
            self._on_finish(cycle, self)
