"""Trace-replay core model.

Each of the 16 cores replays one thread's :class:`~repro.cpu.trace.TraceStream`
against the shared memory hierarchy.  The model is deliberately simple -- the
paper's dual-issue out-of-order MIPS32 core is replaced by an in-order engine
that charges one cycle per non-memory instruction and blocks on every data
reference until the hierarchy answers.  The effects the evaluation cares
about are preserved: periodic refresh passes block the arrays and delay the
accesses behind them, and policies that invalidate useful data early cause
extra misses whose latency lengthens execution time (Section 6.5).

Instruction fetches are modelled in two parts: every instruction is charged
one L1I access for energy purposes, and one real instruction fetch is issued
through the hierarchy per ``ifetch_interval`` instructions (walking a small
per-thread code region) so the instruction working set occupies cache lines
and is subject to refresh like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.cpu.trace import TraceStream
from repro.hierarchy.hierarchy import CacheHierarchy
from repro.utils.events import EventQueue

#: Number of instructions represented by one real instruction-fetch access.
DEFAULT_IFETCH_INTERVAL = 16

#: Bytes of the per-thread code region walked by the modelled fetches.  Kept
#: small (an inner-loop sized footprint) so that, on the scaled geometry,
#: code does not crowd data out of the small private caches.
DEFAULT_CODE_REGION_BYTES = 512


@dataclass
class CoreStats:
    """Per-core execution statistics."""

    references_completed: int = 0
    instructions_executed: int = 0
    busy_cycles: int = 0
    stall_cycles: int = 0
    finish_cycle: Optional[int] = None

    @property
    def finished(self) -> bool:
        """True once the core has drained its trace."""
        return self.finish_cycle is not None


class Core:
    """One trace-replay core attached to the shared hierarchy."""

    def __init__(
        self,
        core_id: int,
        trace: TraceStream,
        hierarchy: CacheHierarchy,
        event_queue: EventQueue,
        code_base_address: Optional[int] = None,
        ifetch_interval: int = DEFAULT_IFETCH_INTERVAL,
        code_region_bytes: int = DEFAULT_CODE_REGION_BYTES,
        on_finish: Optional[Callable[[int, "Core"], None]] = None,
    ) -> None:
        if ifetch_interval < 1:
            raise ValueError("ifetch_interval must be >= 1")
        self.core_id = core_id
        self.trace = trace
        self.hierarchy = hierarchy
        self.events = event_queue
        self.stats = CoreStats()
        self.ifetch_interval = ifetch_interval
        self.code_region_bytes = code_region_bytes
        # Each thread executes from its own code region high in the address
        # space so code and data never collide.
        self.code_base_address = (
            code_base_address
            if code_base_address is not None
            else (1 << 40) + core_id * code_region_bytes
        )
        self._on_finish = on_finish
        self._next_index = 0
        self._instructions_since_ifetch = 0
        self._code_offset = 0
        self._line_bytes = hierarchy.architecture.line_bytes
        self._counts = hierarchy.counters.raw
        # Bound-method caches for the per-reference dispatch.
        self._read = hierarchy.read
        self._write = hierarchy.write

    # -- lifecycle -------------------------------------------------------------

    def start(self, cycle: int) -> None:
        """Schedule the core's first reference at ``cycle``."""
        if len(self.trace) == 0:
            self._finish(cycle)
            return
        first_gap = self.trace[0].gap_instructions
        self.events.schedule_callback(cycle + first_gap, self._on_reference)
        self.stats.busy_cycles += first_gap
        self._account_instructions(cycle, first_gap)

    @property
    def finished(self) -> bool:
        """True once the core has drained its trace."""
        return self.stats.finished

    # -- event handling ---------------------------------------------------------

    def _on_reference(self, cycle: int, _payload: Any) -> None:
        record = self.trace[self._next_index]
        if record.is_write:
            latency = self._write(self.core_id, record.address, cycle)
        else:
            latency = self._read(self.core_id, record.address, cycle)
        self.stats.references_completed += 1
        self.stats.busy_cycles += 1
        self.stats.stall_cycles += max(0, latency - 1)
        self._next_index += 1

        if self._next_index >= len(self.trace):
            self._finish(cycle + latency)
            return

        next_record = self.trace[self._next_index]
        gap = next_record.gap_instructions
        self.stats.busy_cycles += gap
        issue_time = cycle + latency + gap
        self._account_instructions(cycle + latency, gap)
        self.events.schedule_callback(issue_time, self._on_reference)

    # -- helpers ------------------------------------------------------------------

    def _account_instructions(self, cycle: int, count: int) -> None:
        """Charge instruction-fetch energy and issue periodic real fetches."""
        if count <= 0:
            return
        self.stats.instructions_executed += count
        counts = self._counts
        counts["l1i_reads"] += count
        counts["instructions"] += count
        self._instructions_since_ifetch += count
        while self._instructions_since_ifetch >= self.ifetch_interval:
            self._instructions_since_ifetch -= self.ifetch_interval
            address = self.code_base_address + self._code_offset
            self._code_offset = (
                self._code_offset + self._line_bytes
            ) % self.code_region_bytes
            self.hierarchy.instruction_fetch(self.core_id, address, cycle)

    def _finish(self, cycle: int) -> None:
        self.stats.finish_cycle = cycle
        if self._on_finish is not None:
            self._on_finish(cycle, self)
