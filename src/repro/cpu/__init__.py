"""Trace-driven cores: memory reference traces and the core model."""

from repro.cpu.core import Core, CoreStats
from repro.cpu.trace import MemoryOperation, TraceRecord, TraceStream

__all__ = ["Core", "CoreStats", "MemoryOperation", "TraceRecord", "TraceStream"]
