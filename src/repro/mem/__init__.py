"""Memory structures: cache lines, set-associative caches and DRAM."""

from repro.mem.cache import Cache, EvictionResult, LookupResult
from repro.mem.dram import MainMemory
from repro.mem.line import CacheLine, DirectoryLine, L3State, MESIState

__all__ = [
    "Cache",
    "CacheLine",
    "DirectoryLine",
    "EvictionResult",
    "L3State",
    "LookupResult",
    "MESIState",
    "MainMemory",
]
