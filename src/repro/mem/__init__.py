"""Memory structures: cache lines, set-associative caches and DRAM.

Cache state is stored in struct-of-arrays vectors (:mod:`repro.mem.arrays`)
by default; :class:`~repro.mem.cache.Cache` also supports the original
one-object-per-line model via ``backend="object"`` for equivalence checks
and benchmarking.
"""

from repro.mem.arrays import ArrayCacheLine, ArrayDirectoryLine, LineArrays
from repro.mem.cache import Cache, EvictionResult, LookupResult
from repro.mem.dram import MainMemory
from repro.mem.line import CacheLine, DirectoryLine, L3State, MESIState

__all__ = [
    "ArrayCacheLine",
    "ArrayDirectoryLine",
    "Cache",
    "CacheLine",
    "DirectoryLine",
    "EvictionResult",
    "L3State",
    "LineArrays",
    "LookupResult",
    "MESIState",
    "MainMemory",
]
