"""Cache line state.

Two state machines coexist in the hierarchy:

* private caches (L1I, L1D, L2) hold :class:`MESIState` lines.  The data L1
  is write-through, so its lines are never MODIFIED; the instruction L1 only
  reads.  The private L2 uses the full MESI range.
* the shared, banked L3 holds :class:`L3State` lines (invalid / valid-clean
  / valid-dirty with respect to DRAM) and, because the directory lives in
  the L3 (Table 5.1), each L3 line also records which cores share it and
  which single core, if any, owns it with write permission
  (:class:`DirectoryLine`).

For the refresh policies only two predicates matter -- is the line valid,
and is it dirty -- so :class:`CacheLine` exposes ``valid`` and ``dirty``
uniformly over both state machines.

Lines also carry the eDRAM book-keeping the paper's Section 4 describes: the
cycle of the last (implicit or explicit) refresh, and the per-line ``Count``
used by the WB(n, m) policy, stored as a handful of extra eDRAM cells next
to the tag.
"""

from __future__ import annotations

import enum
from typing import Optional, Set


class MESIState(enum.Enum):
    """Coherence state of a line in a private (L1/L2) cache."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"


class L3State(enum.Enum):
    """State of a line in the shared L3 with respect to main memory."""

    INVALID = "I"
    CLEAN = "C"
    DIRTY = "D"


# Integer state codes used by the struct-of-arrays cache backend and the
# protocol's staged fast path.  The enum objects remain the public vocabulary
# (line views translate in both directions); the codes exist so the hot path
# can compare and store plain ints instead of enum members.

MESI_INVALID, MESI_SHARED, MESI_EXCLUSIVE, MESI_MODIFIED = 0, 1, 2, 3
L3_INVALID, L3_CLEAN, L3_DIRTY = 0, 1, 2

#: Code -> enum member, indexable by the integer code.
MESI_STATES: tuple = (
    MESIState.INVALID, MESIState.SHARED, MESIState.EXCLUSIVE, MESIState.MODIFIED
)
L3_STATES: tuple = (L3State.INVALID, L3State.CLEAN, L3State.DIRTY)

#: Enum member -> code.
MESI_CODES = {state: code for code, state in enumerate(MESI_STATES)}
L3_CODES = {state: code for code, state in enumerate(L3_STATES)}


class CacheLine:
    """One line of a private cache.

    Attributes:
        tag: address tag (block address divided by sets*line size); None for
            a never-used line.
        state: MESI state.
        last_access_cycle: cycle of the last normal (non-refresh) access.
        last_refresh_cycle: cycle at which the eDRAM cells were last
            recharged, whether by an access or by an explicit refresh.
        refresh_count: the WB(n, m) ``Count`` field.  None means the policy
            in force does not use it.
        lru_stamp: monotonic counter used for LRU victim selection.
    """

    __slots__ = (
        "tag",
        "state",
        "last_access_cycle",
        "last_refresh_cycle",
        "refresh_count",
        "lru_stamp",
    )

    def __init__(self) -> None:
        self.tag: Optional[int] = None
        self.state: MESIState = MESIState.INVALID
        self.last_access_cycle: int = 0
        self.last_refresh_cycle: int = 0
        self.refresh_count: Optional[int] = None
        self.lru_stamp: int = 0

    # -- predicates shared with the refresh policies -------------------------

    @property
    def valid(self) -> bool:
        """True when the line holds usable data."""
        return self.state is not MESIState.INVALID

    @property
    def dirty(self) -> bool:
        """True when the line holds data newer than the level below."""
        return self.state is MESIState.MODIFIED

    # -- transitions ---------------------------------------------------------

    def fill(self, tag: int, state: MESIState, cycle: int) -> None:
        """Install a new block in this line (implicitly refreshing it)."""
        self.tag = tag
        self.state = state
        self.last_access_cycle = cycle
        self.last_refresh_cycle = cycle
        self.refresh_count = None

    def touch(self, cycle: int) -> None:
        """Record a normal access: refreshes the cells and resets Count."""
        self.last_access_cycle = cycle
        self.last_refresh_cycle = cycle
        self.refresh_count = None

    def refresh(self, cycle: int) -> None:
        """Record an explicit refresh (does not reset Count)."""
        self.last_refresh_cycle = cycle

    def invalidate(self) -> None:
        """Drop the line's contents."""
        self.state = MESIState.INVALID
        self.refresh_count = None

    def is_expired(self, cycle: int, retention_cycles: int) -> bool:
        """True if the eDRAM cells would have decayed by ``cycle``."""
        return cycle - self.last_refresh_cycle > retention_cycles

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(tag={self.tag}, state={self.state.value}, "
            f"refresh@{self.last_refresh_cycle})"
        )


class DirectoryLine(CacheLine):
    """An L3 line augmented with the directory entry for its block.

    The L3 keeps the MESI directory (Table 5.1): ``sharers`` is the set of
    cores whose private hierarchy may hold the block, and ``owner`` is the
    single core holding it with write permission (M or E in its L2), if any.
    """

    __slots__ = ("l3_state", "sharers", "owner")

    def __init__(self) -> None:
        super().__init__()
        self.l3_state: L3State = L3State.INVALID
        self.sharers: Set[int] = set()
        self.owner: Optional[int] = None

    # The generic predicates map onto the L3 state machine.

    @property
    def valid(self) -> bool:
        """True when the line holds usable data."""
        return self.l3_state is not L3State.INVALID

    @property
    def dirty(self) -> bool:
        """True when the line is newer than DRAM."""
        return self.l3_state is L3State.DIRTY

    def fill(self, tag: int, state: MESIState, cycle: int) -> None:
        """Install a new block; the MESI ``state`` argument is ignored."""
        super().fill(tag, state, cycle)
        self.l3_state = L3State.CLEAN
        self.sharers = set()
        self.owner = None

    def invalidate(self) -> None:
        """Drop the line's contents and its directory entry."""
        super().invalidate()
        self.l3_state = L3State.INVALID
        self.sharers = set()
        self.owner = None

    def mark_dirty(self) -> None:
        """Mark the line as holding data newer than DRAM."""
        if self.l3_state is L3State.INVALID:
            raise ValueError("cannot dirty an invalid L3 line")
        self.l3_state = L3State.DIRTY

    def mark_clean(self) -> None:
        """Mark the line as matching DRAM (after a write-back)."""
        if self.l3_state is L3State.INVALID:
            raise ValueError("cannot clean an invalid L3 line")
        self.l3_state = L3State.CLEAN

    def __repr__(self) -> str:
        return (
            f"DirectoryLine(tag={self.tag}, state={self.l3_state.value}, "
            f"sharers={sorted(self.sharers)}, owner={self.owner})"
        )
