"""Flat-latency main-memory model.

The paper models DRAM as a 40 ns access behind the L3 (Table 5.1) and, in
the evaluation, charges one DRAM access energy per access so that policies
that push data off chip early (Dirty, WB(n, m)) pay for the extra traffic
they cause (Section 6).  That is exactly what this model does: every read or
write costs a fixed latency and increments the ``dram_accesses`` counter
that the energy model converts to energy.
"""

from __future__ import annotations

from typing import Optional

from repro.utils.statistics import Counter


class MainMemory:
    """Fixed-latency DRAM with access counting."""

    def __init__(
        self,
        access_cycles: int,
        counters: Optional[Counter] = None,
    ) -> None:
        if access_cycles <= 0:
            raise ValueError("DRAM access latency must be positive")
        self.access_cycles = access_cycles
        self.counters = counters if counters is not None else Counter()

    def read(self, block_address: int) -> int:
        """Fetch a block; returns the access latency in cycles."""
        self.counters.add("dram_accesses")
        self.counters.add("dram_reads")
        return self.access_cycles

    def write(self, block_address: int) -> int:
        """Write a block back to memory; returns the latency in cycles."""
        self.counters.add("dram_accesses")
        self.counters.add("dram_writes")
        return self.access_cycles

    @property
    def total_accesses(self) -> int:
        """Total reads plus writes seen so far."""
        return self.counters.get("dram_accesses")
