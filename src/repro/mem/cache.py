"""Set-associative cache array with LRU replacement.

The :class:`Cache` is a pure storage structure: it finds, fills, touches and
evicts lines, and it exposes its lines to the refresh controllers (which walk
refresh groups, or act on individual lines when their Sentry bit fires).  All
protocol behaviour -- what to do on a miss, coherence actions, write-backs --
lives in :mod:`repro.hierarchy` and :mod:`repro.coherence` so that the same
array is reused by every level.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.config.parameters import CacheGeometry
from repro.mem.line import CacheLine, MESIState


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a lookup: the line (if present) and its location."""

    hit: bool
    line: Optional[CacheLine]
    set_idx: int
    way: Optional[int]


@dataclass(frozen=True)
class EvictionResult:
    """A victim chosen for replacement.

    Attributes:
        line: the victim line object (still holding the victim's tag/state;
            the caller handles write-back / directory clean-up, then fills).
        block_address: byte block address reconstructed from the victim tag.
        was_valid: True when a real block was displaced.
        was_dirty: True when the displaced block held dirty data.
    """

    line: CacheLine
    block_address: int
    was_valid: bool
    was_dirty: bool


class Cache:
    """One physical cache instance (a private cache or a single L3 bank).

    For a banked cache (the shared L3), consecutive blocks are interleaved
    across banks, so the bank-selection bits must be stripped from the block
    number before indexing the sets -- otherwise a bank would only ever use
    the handful of sets its own residue class maps to.  ``index_interleave``
    is the number of banks and ``index_offset`` this bank's residue; private
    caches leave both at their defaults.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        line_factory: Callable[[], CacheLine] = CacheLine,
        name: Optional[str] = None,
        index_interleave: int = 1,
        index_offset: int = 0,
    ) -> None:
        if index_interleave < 1:
            raise ValueError("index_interleave must be >= 1")
        if not 0 <= index_offset < index_interleave:
            raise ValueError("index_offset must lie in [0, index_interleave)")
        self.geometry = geometry
        self.name = name if name is not None else geometry.name
        self.index_interleave = index_interleave
        self.index_offset = index_offset
        self._lru_counter = itertools.count(1)
        self._sets: List[List[CacheLine]] = [
            [line_factory() for _ in range(geometry.associativity)]
            for _ in range(geometry.num_sets)
        ]
        # Refresh blocking state.  ``busy_until`` blocks the whole array
        # (used for the short Refrint interrupt bursts); ``group_busy_until``
        # blocks a single refresh group / sub-array (used by the periodic
        # policy, which refreshes one sub-array at a time while the others
        # remain accessible).  Plain accesses arriving earlier are delayed.
        self.busy_until: int = 0
        self.group_busy_until: List[int] = [0] * geometry.num_refresh_groups
        self._sets_per_group = max(1, geometry.num_sets // geometry.num_refresh_groups)

    # -- basic queries -------------------------------------------------------

    @property
    def num_sets(self) -> int:
        """Number of sets in this cache."""
        return self.geometry.num_sets

    @property
    def num_lines(self) -> int:
        """Total number of lines in this cache."""
        return self.geometry.num_lines

    def set_and_tag(self, block_address: int) -> Tuple[int, int]:
        """Return (set index, tag) for a block address."""
        block_number = block_address // self.geometry.line_bytes
        local_number = block_number // self.index_interleave
        return local_number % self.num_sets, local_number // self.num_sets

    def refresh_group_of_set(self, set_idx: int) -> int:
        """The refresh group (sub-array) a set belongs to."""
        return min(
            set_idx // self._sets_per_group, self.geometry.num_refresh_groups - 1
        )

    def wait_cycles(self, block_address: int, cycle: int) -> int:
        """Cycles an access arriving at ``cycle`` must wait for refresh work.

        The access waits for whichever is later: a whole-array block (Refrint
        interrupt burst in progress) or a block on the sub-array its set maps
        to (periodic group pass in progress).
        """
        set_idx, _ = self.set_and_tag(block_address)
        group = self.refresh_group_of_set(set_idx)
        busy = max(self.busy_until, self.group_busy_until[group])
        return max(0, busy - cycle)

    def block_group(self, group: int, until: int) -> None:
        """Mark one refresh group as busy until the given cycle."""
        if not 0 <= group < self.geometry.num_refresh_groups:
            raise ValueError(f"no refresh group {group}")
        self.group_busy_until[group] = max(self.group_busy_until[group], until)

    def block_address_of(self, set_idx: int, line: CacheLine) -> int:
        """Reconstruct the byte block address stored in ``line``."""
        if line.tag is None:
            raise ValueError("line has never been filled")
        local_number = line.tag * self.num_sets + set_idx
        block_number = local_number * self.index_interleave + self.index_offset
        return block_number * self.geometry.line_bytes

    def lookup(self, block_address: int) -> LookupResult:
        """Find a block without modifying replacement or refresh state."""
        set_idx, tag = self.set_and_tag(block_address)
        for way, line in enumerate(self._sets[set_idx]):
            if line.valid and line.tag == tag:
                return LookupResult(hit=True, line=line, set_idx=set_idx, way=way)
        return LookupResult(hit=False, line=None, set_idx=set_idx, way=None)

    def probe(self, block_address: int) -> Optional[CacheLine]:
        """Return the line holding ``block_address`` if present, else None."""
        result = self.lookup(block_address)
        return result.line if result.hit else None

    def access(self, block_address: int, cycle: int) -> LookupResult:
        """Look up a block and, on a hit, update LRU and refresh the cells."""
        result = self.lookup(block_address)
        if result.hit:
            assert result.line is not None
            result.line.touch(cycle)
            result.line.lru_stamp = next(self._lru_counter)
        return result

    # -- fills and evictions --------------------------------------------------

    def choose_victim(self, block_address: int) -> EvictionResult:
        """Pick the LRU victim in the block's set (preferring invalid ways)."""
        set_idx, _ = self.set_and_tag(block_address)
        ways = self._sets[set_idx]
        victim = None
        for line in ways:
            if not line.valid:
                victim = line
                break
        if victim is None:
            victim = min(ways, key=lambda line: line.lru_stamp)
        was_valid = victim.valid
        was_dirty = victim.dirty
        block = self.block_address_of(set_idx, victim) if victim.tag is not None else 0
        return EvictionResult(
            line=victim,
            block_address=block,
            was_valid=was_valid,
            was_dirty=was_dirty,
        )

    def fill(
        self,
        block_address: int,
        state: MESIState,
        cycle: int,
        victim: Optional[EvictionResult] = None,
    ) -> CacheLine:
        """Install a block (using ``victim`` if provided, else choosing one).

        The caller is responsible for having handled the victim's write-back
        and coherence clean-up *before* calling fill.
        """
        if victim is None:
            victim = self.choose_victim(block_address)
        _, tag = self.set_and_tag(block_address)
        line = victim.line
        line.fill(tag, state, cycle)
        line.lru_stamp = next(self._lru_counter)
        return line

    def invalidate(self, block_address: int) -> Optional[CacheLine]:
        """Invalidate the line holding ``block_address`` if present."""
        result = self.lookup(block_address)
        if result.hit:
            assert result.line is not None
            result.line.invalidate()
            return result.line
        return None

    # -- iteration for the refresh machinery ----------------------------------

    def iter_lines(self) -> Iterator[Tuple[int, CacheLine]]:
        """Yield (set index, line) for every line in the cache."""
        for set_idx, ways in enumerate(self._sets):
            for line in ways:
                yield set_idx, line

    def lines_in_refresh_group(self, group: int) -> Sequence[Tuple[int, CacheLine]]:
        """Lines belonging to periodic-refresh group ``group``.

        Groups partition the cache by consecutive sets, mimicking the
        per-sub-array grouping the paper takes from CACTI.
        """
        num_groups = self.geometry.num_refresh_groups
        if not 0 <= group < num_groups:
            raise ValueError(f"group {group} out of range 0..{num_groups - 1}")
        sets_per_group = max(1, self.num_sets // num_groups)
        start = group * sets_per_group
        end = self.num_sets if group == num_groups - 1 else start + sets_per_group
        lines: List[Tuple[int, CacheLine]] = []
        for set_idx in range(start, min(end, self.num_sets)):
            for line in self._sets[set_idx]:
                lines.append((set_idx, line))
        return lines

    def valid_lines(self) -> Iterator[Tuple[int, CacheLine]]:
        """Yield (set index, line) for every valid line."""
        for set_idx, line in self.iter_lines():
            if line.valid:
                yield set_idx, line

    def count_valid(self) -> int:
        """Number of valid lines currently held."""
        return sum(1 for _ in self.valid_lines())

    def count_dirty(self) -> int:
        """Number of dirty lines currently held."""
        return sum(1 for _, line in self.iter_lines() if line.dirty)

    def __repr__(self) -> str:
        return (
            f"Cache(name={self.name!r}, sets={self.num_sets}, "
            f"ways={self.geometry.associativity}, valid={self.count_valid()})"
        )
