"""Set-associative cache array with LRU replacement.

The :class:`Cache` is a pure storage structure: it finds, fills, touches and
evicts lines, and it exposes its lines to the refresh controllers (which walk
refresh groups, or act on individual lines when their Sentry bit fires).  All
protocol behaviour -- what to do on a miss, coherence actions, write-backs --
lives in :mod:`repro.hierarchy` and :mod:`repro.coherence` so that the same
array is reused by every level.

Two storage backends share this one class:

* ``backend="array"`` (the default) keeps all line state in the
  struct-of-arrays vectors of :class:`~repro.mem.arrays.LineArrays`.  The
  *staged* access API (:meth:`probe_index`, :meth:`access_index`,
  :meth:`choose_victim_index`, :meth:`fill_index`, ...) works in plain line
  indices -- a lookup is a few list reads and integer compares, with no
  per-access object allocation.  Thin :class:`~repro.mem.arrays.ArrayCacheLine`
  views (one per line, built once) keep the object interface alive for the
  directory's sharer sets, the refresh policies and the tests.
* ``backend="numpy"`` is the same layout on int64 ndarrays (requires
  numpy): the per-access staged API is shared, while the refresh-facing
  sweeps (:meth:`bulk_refresh_range`, :meth:`refresh_due_indices`,
  :meth:`sentry_scan_range`, ...) become masked compares and bulk
  timestamp rewrites.
* ``backend="object"`` preserves the original one-object-per-line model.
  It exists so the array backends can be checked for byte-identical
  simulation results and benchmarked against the path they replaced.

The compatibility API (:meth:`lookup`, :meth:`access`, :meth:`fill`,
:meth:`choose_victim`, iteration helpers) behaves identically on both
backends; the staged API is what the protocol's hot path uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.config.parameters import CacheGeometry
from repro.mem.arrays import (
    HAVE_NUMPY,
    ArrayCacheLine,
    ArrayDirectoryLine,
    LineArrays,
    last_occurrence_plan,
)

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None
from repro.mem.line import (
    CacheLine,
    DirectoryLine,
    MESI_CODES,
    MESI_MODIFIED,
    MESI_STATES,
    MESIState,
)


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a lookup: the line (if present) and its location."""

    hit: bool
    line: Optional[CacheLine]
    set_idx: int
    way: Optional[int]


@dataclass(frozen=True)
class EvictionResult:
    """A victim chosen for replacement.

    Attributes:
        line: the victim line object (still holding the victim's tag/state;
            the caller handles write-back / directory clean-up, then fills).
        block_address: byte block address reconstructed from the victim tag.
        was_valid: True when a real block was displaced.
        was_dirty: True when the displaced block held dirty data.
        index: global line index of the victim (``set_idx * ways + way``),
            for callers on the staged path.
    """

    line: CacheLine
    block_address: int
    was_valid: bool
    was_dirty: bool
    index: int = -1


class Cache:
    """One physical cache instance (a private cache or a single L3 bank).

    For a banked cache (the shared L3), consecutive blocks are interleaved
    across banks, so the bank-selection bits must be stripped from the block
    number before indexing the sets -- otherwise a bank would only ever use
    the handful of sets its own residue class maps to.  ``index_interleave``
    is the number of banks and ``index_offset`` this bank's residue; private
    caches leave both at their defaults.

    ``backend`` selects the storage model ("array" or "object"); passing an
    explicit ``line_factory`` implies the object backend (the factory's
    instances *are* the storage).  ``directory=True`` gives the array
    backend L3 directory state per line.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        line_factory: Optional[Callable[[], CacheLine]] = None,
        name: Optional[str] = None,
        index_interleave: int = 1,
        index_offset: int = 0,
        backend: Optional[str] = None,
        directory: bool = False,
    ) -> None:
        if index_interleave < 1:
            raise ValueError("index_interleave must be >= 1")
        if not 0 <= index_offset < index_interleave:
            raise ValueError("index_offset must lie in [0, index_interleave)")
        if backend is None:
            backend = "object" if line_factory is not None else "array"
        if backend not in ("array", "object", "numpy"):
            raise ValueError(f"unknown cache backend {backend!r}")
        self.geometry = geometry
        self.name = name if name is not None else geometry.name
        self.index_interleave = index_interleave
        self.index_offset = index_offset
        self.backend = backend
        self.access_cycles = geometry.access_cycles
        self._assoc = geometry.associativity
        self._num_sets = geometry.num_sets
        self._lru_tick = 0
        # Address decomposition: line size and set count are powers of two,
        # so the set/tag split is shifts and masks (the interleave factor is
        # not guaranteed to be a power of two and keeps a division).
        self._line_shift = geometry.line_bytes.bit_length() - 1
        self._set_mask = self._num_sets - 1
        self._set_shift = self._num_sets.bit_length() - 1

        self.numpy_backed = backend == "numpy"
        if backend in ("array", "numpy"):
            self.directory = directory
            self.arrays: Optional[LineArrays] = LineArrays(
                geometry.num_lines,
                directory=directory,
                backing="numpy" if backend == "numpy" else "list",
            )
            view_cls = ArrayDirectoryLine if directory else ArrayCacheLine
            self._views: List[CacheLine] = [
                view_cls(self.arrays, i) for i in range(geometry.num_lines)
            ]
            if backend == "numpy":
                # The refresh sweeps become real array operations (masked
                # compares + bulk timestamp rewrites); the per-access staged
                # methods are shared with the list backing, since their
                # single-element reads work identically on an ndarray.
                self.bulk_refresh_range = self._bulk_refresh_range_numpy
                self.refresh_due_indices = self._refresh_due_indices_numpy
                self.min_last_refresh = self._min_last_refresh_numpy
                self.valid_indices_in_range = self._valid_indices_in_range_numpy
                self.stamp_invalid_range = self._stamp_invalid_range_numpy
                self.dirty_indices = self._dirty_indices_numpy
                self.access_run = self._access_run_numpy
        else:
            factory = line_factory if line_factory is not None else (
                DirectoryLine if directory else CacheLine
            )
            self._views = [factory() for _ in range(geometry.num_lines)]
            self.directory = bool(self._views) and isinstance(
                self._views[0], DirectoryLine
            )
            self.arrays = None
            # Rebind the staged API to the object-model implementations
            # (transliterations of the original per-line-object code).
            self.probe_index = self._probe_index_object
            self.access_index = self._access_index_object
            self.access_run = self._access_run_object
            self.choose_victim_index = self._choose_victim_index_object
            self.fill_index = self._fill_index_object
            self.invalidate_index = self._invalidate_index_object
            self.state_code = self._state_code_object
            self.set_state_code = self._set_state_code_object
            self.valid_at = self._valid_at_object
            self.dirty_at = self._dirty_at_object
            self.bulk_refresh_range = self._bulk_refresh_range_object
            self.refresh_due_indices = self._refresh_due_indices_object
            self.min_last_refresh = self._min_last_refresh_object
            self.valid_indices_in_range = self._valid_indices_in_range_object
            self.stamp_invalid_range = self._stamp_invalid_range_object
            self.dirty_indices = self._dirty_indices_object

        # Refresh blocking state.  ``busy_until`` blocks the whole array
        # (used for the short Refrint interrupt bursts); ``group_busy_until``
        # blocks a single refresh group / sub-array (used by the periodic
        # policy, which refreshes one sub-array at a time while the others
        # remain accessible).  Plain accesses arriving earlier are delayed.
        # ``busy_horizon`` is a monotone upper bound over both, letting the
        # protocol skip the full wait computation while nothing is blocked.
        self.busy_horizon: int = 0
        self._busy_until: int = 0
        self.group_busy_until: List[int] = [0] * geometry.num_refresh_groups
        self._sets_per_group = max(1, geometry.num_sets // geometry.num_refresh_groups)

    # -- basic queries -------------------------------------------------------

    @property
    def num_sets(self) -> int:
        """Number of sets in this cache."""
        return self.geometry.num_sets

    @property
    def num_lines(self) -> int:
        """Total number of lines in this cache."""
        return self.geometry.num_lines

    @property
    def busy_until(self) -> int:
        """Cycle until which the whole array is blocked by refresh work."""
        return self._busy_until

    @busy_until.setter
    def busy_until(self, value: int) -> None:
        self._busy_until = value
        if value > self.busy_horizon:
            self.busy_horizon = value

    def set_and_tag(self, block_address: int) -> Tuple[int, int]:
        """Return (set index, tag) for a block address."""
        local_number = block_address >> self._line_shift
        if self.index_interleave > 1:
            local_number //= self.index_interleave
        return local_number & self._set_mask, local_number >> self._set_shift

    def refresh_group_of_set(self, set_idx: int) -> int:
        """The refresh group (sub-array) a set belongs to."""
        return min(
            set_idx // self._sets_per_group, self.geometry.num_refresh_groups - 1
        )

    def set_of_index(self, index: int) -> int:
        """The set a global line index belongs to."""
        return index // self._assoc

    def wait_cycles(self, block_address: int, cycle: int) -> int:
        """Cycles an access arriving at ``cycle`` must wait for refresh work.

        The access waits for whichever is later: a whole-array block (Refrint
        interrupt burst in progress) or a block on the sub-array its set maps
        to (periodic group pass in progress).
        """
        if cycle >= self.busy_horizon:
            return 0
        set_idx, _ = self.set_and_tag(block_address)
        group = self.refresh_group_of_set(set_idx)
        busy = max(self._busy_until, self.group_busy_until[group])
        return max(0, busy - cycle)

    def block_group(self, group: int, until: int) -> None:
        """Mark one refresh group as busy until the given cycle."""
        if not 0 <= group < self.geometry.num_refresh_groups:
            raise ValueError(f"no refresh group {group}")
        self.group_busy_until[group] = max(self.group_busy_until[group], until)
        if until > self.busy_horizon:
            self.busy_horizon = until

    def block_address_at(self, index: int) -> int:
        """Reconstruct the byte block address stored at a line index."""
        if self.arrays is not None:
            tag = self.arrays.tag[index]
            if tag < 0:
                raise ValueError("line has never been filled")
        else:
            line_tag = self._views[index].tag
            if line_tag is None:
                raise ValueError("line has never been filled")
            tag = line_tag
        local_number = tag * self._num_sets + (index // self._assoc)
        block_number = local_number * self.index_interleave + self.index_offset
        return block_number << self._line_shift

    def block_address_of(self, set_idx: int, line: CacheLine) -> int:
        """Reconstruct the byte block address stored in ``line``."""
        if line.tag is None:
            raise ValueError("line has never been filled")
        local_number = line.tag * self._num_sets + set_idx
        block_number = local_number * self.index_interleave + self.index_offset
        return block_number << self._line_shift

    # -- staged fast path (array backend; object variants bound in __init__) --

    def view(self, index: int) -> CacheLine:
        """The persistent line view (or line object) at a global index."""
        return self._views[index]

    def probe_index(self, block_address: int) -> int:
        """Line index holding a block, or -1; replacement state untouched."""
        local = block_address >> self._line_shift
        if self.index_interleave > 1:
            local //= self.index_interleave
        tag = local >> self._set_shift
        arrays = self.arrays
        tags = arrays.tag
        valid = arrays.valid
        base = (local & self._set_mask) * self._assoc
        for index in range(base, base + self._assoc):
            if tags[index] == tag and valid[index]:
                return index
        return -1

    def access_index(self, block_address: int, cycle: int) -> int:
        """Staged access: find a block and, on a hit, touch LRU + refresh.

        Returns the hit line's index, or -1 on a miss.  This is the
        protocol's per-access entry point: index arithmetic over the state
        vectors, no allocation.
        """
        local = block_address >> self._line_shift
        if self.index_interleave > 1:
            local //= self.index_interleave
        tag = local >> self._set_shift
        arrays = self.arrays
        tags = arrays.tag
        valid = arrays.valid
        base = (local & self._set_mask) * self._assoc
        for index in range(base, base + self._assoc):
            if tags[index] == tag and valid[index]:
                arrays.last_access_cycle[index] = cycle
                arrays.last_refresh_cycle[index] = cycle
                arrays.refresh_count[index] = -1
                tick = self._lru_tick + 1
                self._lru_tick = tick
                arrays.lru_stamp[index] = tick
                return index
        return -1

    def access_run(
        self,
        indices: Sequence[int],
        cycles: Sequence[int],
        counts: Sequence[int],
    ) -> None:
        """Commit a run of staged hits in one bulk call.

        The entries are parallel: entry ``k`` records that the line at
        ``indices[k]`` was hit ``counts[k]`` consecutive times, the last at
        cycle ``cycles[k]``.  Because consecutive hits to the same line only
        leave the *final* timestamps and LRU stamp behind, committing the
        coalesced run leaves the arrays byte-identical to ``sum(counts)``
        sequential :meth:`access_index` calls (pinned by
        ``tests/test_property_access_run.py``); the LRU tick still advances
        once per underlying hit so stamps interleave correctly with fills
        and with other lines' runs.
        """
        arrays = self.arrays
        last_access = arrays.last_access_cycle
        last_refresh = arrays.last_refresh_cycle
        refresh_count = arrays.refresh_count
        stamps = arrays.lru_stamp
        tick = self._lru_tick
        for k in range(len(indices)):
            index = indices[k]
            cycle = cycles[k]
            last_access[index] = cycle
            last_refresh[index] = cycle
            refresh_count[index] = -1
            tick += counts[k]
            stamps[index] = tick
        self._lru_tick = tick

    #: Below this many coalesced entries the scalar loop beats the numpy
    #: bulk landing (array conversion and unique dominate); the two are
    #: byte-identical, so the crossover is purely a speed choice.
    _NUMPY_RUN_MIN = 24

    def _access_run_numpy(
        self,
        indices: Sequence[int],
        cycles: Sequence[int],
        counts: Sequence[int],
    ) -> None:
        """Numpy-backend :meth:`access_run`: land a run as array writes.

        Only each line's *final* touch survives a landing (the cycle of its
        last hit and the LRU stamp its last hit advanced the tick to), so
        the run is reduced to last occurrences
        (:func:`repro.mem.arrays.last_occurrence_plan`) and landed with
        four fancy-indexed stores -- no per-entry Python iteration,
        byte-identical to the scalar loop.
        """
        if len(indices) < self._NUMPY_RUN_MIN:
            return Cache.access_run(self, indices, cycles, counts)
        idx, cyc, stamp, tick = last_occurrence_plan(
            indices, cycles, counts, self._lru_tick
        )
        arrays = self.arrays
        arrays.last_access_cycle[idx] = cyc
        arrays.last_refresh_cycle[idx] = cyc
        arrays.refresh_count[idx] = -1
        arrays.lru_stamp[idx] = stamp
        self._lru_tick = tick

    def choose_victim_index(self, block_address: int) -> int:
        """Index of the LRU victim in the block's set (invalid ways first)."""
        local = block_address >> self._line_shift
        if self.index_interleave > 1:
            local //= self.index_interleave
        base = (local & self._set_mask) * self._assoc
        arrays = self.arrays
        valid = arrays.valid
        stamps = arrays.lru_stamp
        victim = base
        best = None
        for index in range(base, base + self._assoc):
            if not valid[index]:
                return index
            stamp = stamps[index]
            if best is None or stamp < best:
                best = stamp
                victim = index
        return victim

    def fill_index(
        self, index: int, block_address: int, state_code: int, cycle: int
    ) -> None:
        """Install a block at a (victim) line index.

        The caller is responsible for having handled the victim's write-back
        and coherence clean-up *before* filling.
        """
        local = block_address >> self._line_shift
        if self.index_interleave > 1:
            local //= self.index_interleave
        arrays = self.arrays
        arrays.tag[index] = local >> self._set_shift
        arrays.state[index] = state_code
        arrays.last_access_cycle[index] = cycle
        arrays.last_refresh_cycle[index] = cycle
        arrays.refresh_count[index] = -1
        if arrays.directory:
            # DirectoryLine.fill: fresh CLEAN line with an empty directory
            # entry; the MESI argument is bookkeeping only.
            arrays.l3_state[index] = 1
            arrays.valid[index] = 1
            arrays.dirty[index] = 0
            arrays.sharers[index] = set()
            arrays.owner[index] = -1
        else:
            arrays.valid[index] = 1 if state_code else 0
            arrays.dirty[index] = 1 if state_code == MESI_MODIFIED else 0
        tick = self._lru_tick + 1
        self._lru_tick = tick
        arrays.lru_stamp[index] = tick

    def fill_block(self, block_address: int, state_code: int, cycle: int) -> int:
        """Choose a victim and fill in one step (clean-victim caches)."""
        index = self.choose_victim_index(block_address)
        self.fill_index(index, block_address, state_code, cycle)
        return index

    def invalidate_index(self, index: int) -> None:
        """Drop the contents of the line at a global index."""
        arrays = self.arrays
        arrays.state[index] = 0
        arrays.refresh_count[index] = -1
        arrays.valid[index] = 0
        arrays.dirty[index] = 0
        if arrays.directory:
            arrays.l3_state[index] = 0
            arrays.sharers[index] = set()
            arrays.owner[index] = -1

    def state_code(self, index: int) -> int:
        """MESI state code of the line at ``index``."""
        return self.arrays.state[index]

    def set_state_code(self, index: int, code: int) -> None:
        """Set the MESI state of a private-cache line by code."""
        arrays = self.arrays
        arrays.state[index] = code
        arrays.valid[index] = 1 if code else 0
        arrays.dirty[index] = 1 if code == MESI_MODIFIED else 0

    def valid_at(self, index: int) -> bool:
        """True when the line at ``index`` holds usable data."""
        return bool(self.arrays.valid[index])

    def dirty_at(self, index: int) -> bool:
        """True when the line at ``index`` is dirty."""
        return bool(self.arrays.dirty[index])

    # -- staged fast path: object-backend variants ----------------------------

    def _probe_index_object(self, block_address: int) -> int:
        result = self.lookup(block_address)
        if not result.hit:
            return -1
        return result.set_idx * self._assoc + result.way

    def _access_index_object(self, block_address: int, cycle: int) -> int:
        # The original access path, result dataclass and all.
        result = self.lookup(block_address)
        if not result.hit:
            return -1
        line = result.line
        line.touch(cycle)
        tick = self._lru_tick + 1
        self._lru_tick = tick
        line.lru_stamp = tick
        return result.set_idx * self._assoc + result.way

    def _access_run_object(
        self,
        indices: Sequence[int],
        cycles: Sequence[int],
        counts: Sequence[int],
    ) -> None:
        views = self._views
        tick = self._lru_tick
        for k in range(len(indices)):
            line = views[indices[k]]
            line.touch(cycles[k])
            tick += counts[k]
            line.lru_stamp = tick
        self._lru_tick = tick

    def _choose_victim_index_object(self, block_address: int) -> int:
        set_idx, _ = self.set_and_tag(block_address)
        base = set_idx * self._assoc
        ways = self._views[base:base + self._assoc]
        for way, line in enumerate(ways):
            if not line.valid:
                return base + way
        victim_way = min(range(self._assoc), key=lambda w: ways[w].lru_stamp)
        return base + victim_way

    def _fill_index_object(
        self, index: int, block_address: int, state_code: int, cycle: int
    ) -> None:
        _, tag = self.set_and_tag(block_address)
        line = self._views[index]
        line.fill(tag, MESI_STATES[state_code], cycle)
        tick = self._lru_tick + 1
        self._lru_tick = tick
        line.lru_stamp = tick

    def _invalidate_index_object(self, index: int) -> None:
        self._views[index].invalidate()

    def _state_code_object(self, index: int) -> int:
        return MESI_CODES[self._views[index].state]

    def _set_state_code_object(self, index: int, code: int) -> None:
        self._views[index].state = MESI_STATES[code]

    def _valid_at_object(self, index: int) -> bool:
        return self._views[index].valid

    def _dirty_at_object(self, index: int) -> bool:
        return self._views[index].dirty

    # -- compatibility API (shared by both backends) ---------------------------

    def lookup(self, block_address: int) -> LookupResult:
        """Find a block without modifying replacement or refresh state."""
        set_idx, tag = self.set_and_tag(block_address)
        base = set_idx * self._assoc
        for way in range(self._assoc):
            line = self._views[base + way]
            if line.valid and line.tag == tag:
                return LookupResult(hit=True, line=line, set_idx=set_idx, way=way)
        return LookupResult(hit=False, line=None, set_idx=set_idx, way=None)

    def probe(self, block_address: int) -> Optional[CacheLine]:
        """Return the line holding ``block_address`` if present, else None."""
        index = self.probe_index(block_address)
        return self._views[index] if index >= 0 else None

    def access(self, block_address: int, cycle: int) -> LookupResult:
        """Look up a block and, on a hit, update LRU and refresh the cells."""
        index = self.access_index(block_address, cycle)
        set_idx, _ = self.set_and_tag(block_address)
        if index < 0:
            return LookupResult(hit=False, line=None, set_idx=set_idx, way=None)
        return LookupResult(
            hit=True,
            line=self._views[index],
            set_idx=set_idx,
            way=index - set_idx * self._assoc,
        )

    # -- fills and evictions --------------------------------------------------

    def choose_victim(self, block_address: int) -> EvictionResult:
        """Pick the LRU victim in the block's set (preferring invalid ways)."""
        index = self.choose_victim_index(block_address)
        line = self._views[index]
        block = self.block_address_at(index) if line.tag is not None else 0
        return EvictionResult(
            line=line,
            block_address=block,
            was_valid=line.valid,
            was_dirty=line.dirty,
            index=index,
        )

    def fill(
        self,
        block_address: int,
        state: MESIState,
        cycle: int,
        victim: Optional[EvictionResult] = None,
    ) -> CacheLine:
        """Install a block (using ``victim`` if provided, else choosing one).

        The caller is responsible for having handled the victim's write-back
        and coherence clean-up *before* calling fill.
        """
        if victim is not None and victim.index >= 0:
            index = victim.index
        else:
            index = self.choose_victim_index(block_address)
        self.fill_index(index, block_address, MESI_CODES[state], cycle)
        return self._views[index]

    def invalidate(self, block_address: int) -> Optional[CacheLine]:
        """Invalidate the line holding ``block_address`` if present."""
        index = self.probe_index(block_address)
        if index < 0:
            return None
        self.invalidate_index(index)
        return self._views[index]

    # -- iteration for the refresh machinery ----------------------------------

    def iter_lines(self) -> Iterator[Tuple[int, CacheLine]]:
        """Yield (set index, line) for every line in the cache."""
        assoc = self._assoc
        for index, line in enumerate(self._views):
            yield index // assoc, line

    def refresh_group_line_range(self, group: int) -> Tuple[int, int]:
        """Contiguous ``[start, end)`` global line range of one refresh group.

        Groups partition the cache by consecutive sets, so their lines are
        contiguous in the global index order -- which is what lets the
        refresh controllers sweep a group with slice operations.
        """
        num_groups = self.geometry.num_refresh_groups
        if not 0 <= group < num_groups:
            raise ValueError(f"group {group} out of range 0..{num_groups - 1}")
        sets_per_group = self._sets_per_group
        start_set = min(group * sets_per_group, self._num_sets)
        end_set = self._num_sets if group == num_groups - 1 else min(
            start_set + sets_per_group, self._num_sets
        )
        return start_set * self._assoc, end_set * self._assoc

    def lines_in_refresh_group(self, group: int) -> Sequence[Tuple[int, CacheLine]]:
        """Lines belonging to periodic-refresh group ``group``.

        Groups partition the cache by consecutive sets, mimicking the
        per-sub-array grouping the paper takes from CACTI.
        """
        start, end = self.refresh_group_line_range(group)
        assoc = self._assoc
        return [(index // assoc, self._views[index]) for index in range(start, end)]

    def valid_lines(self) -> Iterator[Tuple[int, CacheLine]]:
        """Yield (set index, line) for every valid line."""
        for set_idx, line in self.iter_lines():
            if line.valid:
                yield set_idx, line

    def count_valid(self) -> int:
        """Number of valid lines currently held."""
        if self.numpy_backed:
            return int(self.arrays.valid.sum())
        if self.arrays is not None:
            return sum(self.arrays.valid)
        return sum(1 for _ in self.valid_lines())

    def count_dirty(self) -> int:
        """Number of dirty lines currently held."""
        if self.numpy_backed:
            return int(self.arrays.dirty.sum())
        if self.arrays is not None:
            return sum(self.arrays.dirty)
        return sum(1 for _, line in self.iter_lines() if line.dirty)

    # -- vectorized sweeps for the refresh controllers -------------------------

    def bulk_refresh_range(
        self,
        start: int,
        end: int,
        cycle: int,
        retention_cycles: int,
        include_invalid: bool,
    ) -> Tuple[int, int]:
        """Refresh every line in ``[start, end)`` in one slice operation.

        Mirrors a periodic pass under the All (``include_invalid=True``) or
        Valid policy: valid lines (and, for All, invalid ones) are refreshed,
        skipped invalid lines still get their refresh timestamp advanced so
        lazy sentry timers do not keep finding them due.  Returns
        ``(lines processed, decay violations among valid lines)``.
        """
        arrays = self.arrays
        valid = arrays.valid
        refreshed = arrays.last_refresh_cycle
        num_valid = sum(valid[start:end])
        violations = 0
        limit = cycle - retention_cycles
        if num_valid and min(refreshed[start:end]) < limit:
            violations = sum(
                1 for i in range(start, end) if valid[i] and refreshed[i] < limit
            )
        refreshed[start:end] = [cycle] * (end - start)
        processed = (end - start) if include_invalid else num_valid
        return processed, violations

    def refresh_due_indices(
        self, start: int, end: int, cutoff: int, include_invalid: bool
    ) -> List[int]:
        """Line indices in ``[start, end)`` whose last refresh is <= cutoff.

        This is the Refrint controller's vectorized Sentry-decay compare:
        a line's sentry has fired by cycle ``c`` exactly when its last
        refresh happened at or before ``c - sentry_retention``.
        """
        arrays = self.arrays
        refreshed = arrays.last_refresh_cycle
        if include_invalid:
            return [i for i in range(start, end) if refreshed[i] <= cutoff]
        valid = arrays.valid
        return [
            i for i in range(start, end) if valid[i] and refreshed[i] <= cutoff
        ]

    def min_last_refresh(
        self, start: int, end: int, include_invalid: bool
    ) -> Optional[int]:
        """Earliest last-refresh cycle in ``[start, end)`` (None when empty)."""
        arrays = self.arrays
        refreshed = arrays.last_refresh_cycle
        if include_invalid:
            return min(refreshed[start:end])
        valid = arrays.valid
        earliest: Optional[int] = None
        for i in range(start, end):
            if valid[i]:
                stamp = refreshed[i]
                if earliest is None or stamp < earliest:
                    earliest = stamp
        return earliest

    def valid_indices_in_range(self, start: int, end: int) -> List[int]:
        """Indices of valid lines in ``[start, end)``."""
        valid = self.arrays.valid
        return [i for i in range(start, end) if valid[i]]

    def stamp_invalid_range(self, start: int, end: int, cycle: int) -> None:
        """Advance the refresh timestamp of invalid lines in ``[start, end)``.

        The periodic controller's SKIP semantics for data policies that act
        per line (Dirty, WB): nothing is read or written, but lazy sentry
        timers must not keep finding the same invalid line due.
        """
        arrays = self.arrays
        valid = arrays.valid
        refreshed = arrays.last_refresh_cycle
        for i in range(start, end):
            if not valid[i]:
                refreshed[i] = cycle

    def dirty_indices(self) -> List[int]:
        """Global indices of all dirty lines, in line order."""
        return [i for i, dirty in enumerate(self.arrays.dirty) if dirty]

    # -- staged per-line refresh ticks (array backend only) ---------------------
    #
    # The refresh controllers use these to process a *due* line without
    # materialising its view or a PolicyDecision; the object backend keeps
    # the original per-line-object policy walk instead (the controllers
    # dispatch on ``cache.arrays``).

    def refresh_line_checked(self, index: int, cycle: int, retention_cycles: int) -> int:
        """Recharge one line's cells; returns 1 if it had already decayed.

        The decay check only applies to valid lines (an invalid line holds
        nothing worth protecting), mirroring the controller's sanity check.
        """
        arrays = self.arrays
        violation = (
            1
            if arrays.valid[index]
            and arrays.last_refresh_cycle[index] < cycle - retention_cycles
            else 0
        )
        arrays.last_refresh_cycle[index] = cycle
        return violation

    def wb_tick(
        self,
        index: int,
        cycle: int,
        retention_cycles: int,
        dirty_budget: int,
        clean_budget: int,
    ) -> int:
        """One WB(n, m) refresh opportunity for a valid line (Fig. 4.1).

        If the line still has Count budget it is refreshed and its Count
        decremented; returns the decay-violation flag (0/1).  Returns -1
        when the budget is exhausted and the controller must take the slow
        write-back / invalidate path through the line view.
        """
        arrays = self.arrays
        count = arrays.refresh_count[index]
        if count < 0:
            count = dirty_budget if arrays.dirty[index] else clean_budget
        if count >= 1:
            violation = (
                1
                if arrays.last_refresh_cycle[index] < cycle - retention_cycles
                else 0
            )
            arrays.last_refresh_cycle[index] = cycle
            arrays.refresh_count[index] = count - 1
            return violation
        return -1

    # -- vectorized sweeps: numpy-backend variants ------------------------------
    #
    # Semantically identical to the list implementations above (the
    # equivalence suite pins all three backends to byte-identical results);
    # every count returned to a caller is converted back to a Python int so
    # numpy scalars never reach the counters or the JSON results.

    def _bulk_refresh_range_numpy(
        self,
        start: int,
        end: int,
        cycle: int,
        retention_cycles: int,
        include_invalid: bool,
    ) -> Tuple[int, int]:
        arrays = self.arrays
        valid = arrays.valid[start:end]
        refreshed = arrays.last_refresh_cycle[start:end]
        num_valid = int(valid.sum())
        violations = 0
        if num_valid:
            limit = cycle - retention_cycles
            violations = int(((refreshed < limit) & (valid == 1)).sum())
        refreshed[:] = cycle
        processed = (end - start) if include_invalid else num_valid
        return processed, violations

    def _refresh_due_indices_numpy(
        self, start: int, end: int, cutoff: int, include_invalid: bool
    ) -> List[int]:
        arrays = self.arrays
        due = arrays.last_refresh_cycle[start:end] <= cutoff
        if not include_invalid:
            due &= arrays.valid[start:end] == 1
        return [int(i) + start for i in _np.nonzero(due)[0]]

    def _min_last_refresh_numpy(
        self, start: int, end: int, include_invalid: bool
    ) -> Optional[int]:
        arrays = self.arrays
        refreshed = arrays.last_refresh_cycle[start:end]
        if include_invalid:
            return int(refreshed.min()) if end > start else None
        valid = arrays.valid[start:end] == 1
        if not valid.any():
            return None
        return int(refreshed[valid].min())

    def _valid_indices_in_range_numpy(self, start: int, end: int) -> List[int]:
        valid = self.arrays.valid[start:end] == 1
        return [int(i) + start for i in _np.nonzero(valid)[0]]

    def _stamp_invalid_range_numpy(self, start: int, end: int, cycle: int) -> None:
        arrays = self.arrays
        invalid = arrays.valid[start:end] == 0
        arrays.last_refresh_cycle[start:end][invalid] = cycle

    def _dirty_indices_numpy(self) -> List[int]:
        return [int(i) for i in _np.nonzero(self.arrays.dirty)[0]]

    def sentry_scan_range(
        self,
        start: int,
        end: int,
        cycle: int,
        cutoff: int,
        limit: int,
        kind: str,
        include_invalid: bool,
        dirty_budget: int = 0,
        clean_budget: int = 0,
    ) -> Tuple[int, int, List[int], Optional[int]]:
        """One Refrint group interrupt as masked array operations.

        The numpy-backed equivalent of the controller's fused single-pass
        scan: classify every line of ``[start, end)``, take the refresh
        ticks in place (timestamp rewrite, and for WB(n, m) the Count
        seed/decrement), and report what the controller needs --
        ``(refreshed, violations, slow line indices, min not-due stamp)``.
        ``kind`` is the controller's policy classification ("all", "valid",
        "dirty" or "wb"); ``cutoff``/``limit`` are the sentry-decay and
        line-decay thresholds.  Only available on the numpy backend.
        """
        arrays = self.arrays
        stamps = arrays.last_refresh_cycle[start:end]
        valid = arrays.valid[start:end] == 1
        due = stamps <= cutoff
        slow: List[int] = []
        if kind in ("valid", "all"):
            mask = due if include_invalid else (due & valid)
            refreshed = int(mask.sum())
            violations = int((valid & due & (stamps < limit)).sum())
            considered = ~due if include_invalid else (valid & ~due)
            min_not_due = (
                int(stamps[considered].min()) if considered.any() else None
            )
            stamps[mask] = cycle
            return refreshed, violations, slow, min_not_due

        due &= valid
        if kind == "dirty":
            dirty = arrays.dirty[start:end] == 1
            take = due & dirty
            slow_mask = due & ~dirty
        else:  # wb
            counts = arrays.refresh_count[start:end]
            dirty = arrays.dirty[start:end] == 1
            seeded = _np.where(
                counts < 0, _np.where(dirty, dirty_budget, clean_budget), counts
            )
            take = due & (seeded >= 1)
            slow_mask = due & ~take
        refreshed = int(take.sum())
        violations = int((take & (stamps < limit)).sum())
        if kind == "wb" and refreshed:
            counts[take] = seeded[take] - 1
        stamps[take] = cycle
        if slow_mask.any():
            slow = [int(i) + start for i in _np.nonzero(slow_mask)[0]]
        considered = valid & ~due
        min_not_due = int(stamps[considered].min()) if considered.any() else None
        return refreshed, violations, slow, min_not_due

    # -- vectorized sweeps: object-backend variants -----------------------------

    def _bulk_refresh_range_object(
        self,
        start: int,
        end: int,
        cycle: int,
        retention_cycles: int,
        include_invalid: bool,
    ) -> Tuple[int, int]:
        processed = 0
        violations = 0
        for i in range(start, end):
            line = self._views[i]
            if line.valid:
                if line.is_expired(cycle, retention_cycles):
                    violations += 1
                line.refresh(cycle)
                processed += 1
            elif include_invalid:
                line.refresh(cycle)
                processed += 1
            else:
                line.last_refresh_cycle = cycle
        return processed, violations

    def _refresh_due_indices_object(
        self, start: int, end: int, cutoff: int, include_invalid: bool
    ) -> List[int]:
        views = self._views
        return [
            i for i in range(start, end)
            if (include_invalid or views[i].valid)
            and views[i].last_refresh_cycle <= cutoff
        ]

    def _min_last_refresh_object(
        self, start: int, end: int, include_invalid: bool
    ) -> Optional[int]:
        stamps = [
            line.last_refresh_cycle
            for line in self._views[start:end]
            if include_invalid or line.valid
        ]
        return min(stamps) if stamps else None

    def _valid_indices_in_range_object(self, start: int, end: int) -> List[int]:
        views = self._views
        return [i for i in range(start, end) if views[i].valid]

    def _stamp_invalid_range_object(self, start: int, end: int, cycle: int) -> None:
        for i in range(start, end):
            line = self._views[i]
            if not line.valid:
                line.last_refresh_cycle = cycle

    def _dirty_indices_object(self) -> List[int]:
        return [i for i, line in enumerate(self._views) if line.dirty]

    def __repr__(self) -> str:
        return (
            f"Cache(name={self.name!r}, sets={self.num_sets}, "
            f"ways={self.geometry.associativity}, valid={self.count_valid()}, "
            f"backend={self.backend!r})"
        )
