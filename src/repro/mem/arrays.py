"""Struct-of-arrays backing store for cache state.

The object cache model keeps one Python object per line, and every access
walks those objects through property descriptors and allocates result
dataclasses.  :class:`LineArrays` replaces that with parallel vectors -- one
plain Python list per field (tag, MESI/L3 state code, valid, dirty, LRU
stamp, access/refresh timestamps, WB(n, m) count, directory entry) indexed
by the global line number ``set_idx * associativity + way``.  Plain lists
are deliberate: CPython indexes a list roughly 3x faster than a numpy array
for the single-element reads that dominate the access path, while slice
reads (``valid[a:b]``, ``sum``, ``min``) still run at C speed for the
vectorized refresh-group sweeps.

Two thin view classes, :class:`ArrayCacheLine` and
:class:`ArrayDirectoryLine`, expose one line of the arrays through the
exact :class:`~repro.mem.line.CacheLine` / ``DirectoryLine`` interface
(they are subclasses, so ``isinstance`` checks and the inherited
``fill`` / ``touch`` / ``mark_dirty`` state machines keep working).  Views
are materialised once per line at cache construction and live as long as
the cache, so holding one across mutations always reads live state; the
staged fast path never touches them.

Invariants: ``valid[i]`` and ``dirty[i]`` are derived caches of the state
code (MESI for private caches, L3 state for directory caches) and are kept
in sync by every mutator -- the staged methods on :class:`~repro.mem.cache.Cache`
and the property setters below are the only code allowed to write the
state vectors.
"""

from __future__ import annotations

from typing import List, Optional, Set

try:  # numpy is an optional accelerator, never a hard dependency.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: True when the optional numpy backing (``backing="numpy"``) is available.
HAVE_NUMPY = _np is not None

from repro.mem.line import (
    CacheLine,
    DirectoryLine,
    L3_CODES,
    L3_DIRTY,
    L3_STATES,
    MESI_CODES,
    MESI_MODIFIED,
    MESI_STATES,
    MESIState,
    L3State,
)


def last_occurrence_plan(indices, cycles, counts, tick):
    """Plan a bulk run landing: reduce a touch run to each line's last touch.

    ``(indices, cycles, counts)`` is a coalesced touch run in program order
    (see :meth:`repro.mem.cache.Cache.access_run`).  Sequential landing
    overwrites a line's timestamps on every entry, so only the *last*
    occurrence of each line index is observable; its LRU stamp is the
    cumulative tick after that entry.  Returns ``(idx, cyc, stamp,
    new_tick)`` numpy arrays covering exactly those last occurrences --
    free of duplicate indices, so they can land as plain fancy-indexed
    stores with no ordering assumptions -- plus the advanced tick.

    Requires numpy (the caller gates on :data:`HAVE_NUMPY` by only binding
    the bulk landing on the numpy backend).
    """
    idx = _np.asarray(indices, dtype=_np.int64)
    cyc = _np.asarray(cycles, dtype=_np.int64)
    stamps = tick + _np.cumsum(_np.asarray(counts, dtype=_np.int64))
    new_tick = int(stamps[-1])
    # np.unique on the reversed indices keeps each value's first position
    # there, i.e. its last occurrence in program order.
    _, first_rev = _np.unique(idx[::-1], return_index=True)
    keep = idx.size - 1 - first_rev
    return idx[keep], cyc[keep], stamps[keep], new_tick


class LineArrays:
    """Parallel per-field vectors for every line of one cache instance.

    ``tag == -1``, ``refresh_count == -1`` and ``owner == -1`` encode the
    object model's ``None``.  Directory-only vectors (``l3_state``,
    ``sharers``, ``owner``) are ``None`` for private caches (``sharers``
    is always a plain list of Python sets; only the integer vectors have a
    numpy form).

    ``backing`` selects the vector representation: ``"list"`` (the default)
    keeps plain Python lists, whose single-element reads dominate the
    per-access staged path and are ~3x faster than numpy's; ``"numpy"``
    stores the integer fields as int64 ndarrays so the periodic group
    sweeps and the Refrint interrupt scan become masked compares and bulk
    timestamp rewrites -- worthwhile once refresh work on paper-sized
    geometries outweighs the per-access penalty.  Both backings hold
    exactly the same values (int64 covers every cycle count and tag the
    simulator can produce), so simulation results are byte-identical.
    """

    __slots__ = (
        "num_lines", "directory", "backing",
        "tag", "state", "valid", "dirty",
        "last_access_cycle", "last_refresh_cycle",
        "refresh_count", "lru_stamp",
        "l3_state", "sharers", "owner",
    )

    def __init__(
        self, num_lines: int, directory: bool = False, backing: str = "list"
    ) -> None:
        if num_lines < 1:
            raise ValueError("a cache needs at least one line")
        if backing not in ("list", "numpy"):
            raise ValueError(f"unknown array backing {backing!r}")
        if backing == "numpy" and _np is None:
            raise RuntimeError(
                "backing='numpy' requested but numpy is not installed; "
                "use the default list backing instead"
            )
        n = num_lines
        self.num_lines = n
        self.directory = directory
        self.backing = backing
        if backing == "numpy":
            self.tag = _np.full(n, -1, dtype=_np.int64)
            self.state = _np.zeros(n, dtype=_np.int64)
            self.valid = _np.zeros(n, dtype=_np.int64)
            self.dirty = _np.zeros(n, dtype=_np.int64)
            self.last_access_cycle = _np.zeros(n, dtype=_np.int64)
            self.last_refresh_cycle = _np.zeros(n, dtype=_np.int64)
            self.refresh_count = _np.full(n, -1, dtype=_np.int64)
            self.lru_stamp = _np.zeros(n, dtype=_np.int64)
        else:
            self.tag: List[int] = [-1] * n
            self.state: List[int] = [0] * n
            self.valid: List[int] = [0] * n
            self.dirty: List[int] = [0] * n
            self.last_access_cycle: List[int] = [0] * n
            self.last_refresh_cycle: List[int] = [0] * n
            self.refresh_count: List[int] = [-1] * n
            self.lru_stamp: List[int] = [0] * n
        if directory:
            if backing == "numpy":
                self.l3_state = _np.zeros(n, dtype=_np.int64)
                self.owner = _np.full(n, -1, dtype=_np.int64)
            else:
                self.l3_state: Optional[List[int]] = [0] * n
                self.owner: Optional[List[int]] = [-1] * n
            self.sharers: Optional[List[Set[int]]] = [set() for _ in range(n)]
        else:
            self.l3_state = None
            self.sharers = None
            self.owner = None


class _ArrayLineFields:
    """Array-backed field plumbing shared by both view classes.

    A slot-less mixin so it can sit in front of either :class:`CacheLine`
    or :class:`DirectoryLine` without an instance-layout conflict; the
    concrete view classes declare the ``_arrays`` / ``_index`` slots.
    """

    __slots__ = ()

    def __init__(self, arrays: LineArrays, index: int) -> None:
        # Deliberately does not call super().__init__: the defaults already
        # live in the freshly built arrays.
        self._arrays = arrays
        self._index = index

    @property
    def index(self) -> int:
        """Global line number of this view in its cache."""
        return self._index

    # -- scalar fields -------------------------------------------------------

    @property
    def tag(self) -> Optional[int]:
        # int() keeps numpy scalars from leaking into reconstructed block
        # addresses (a no-op for the list backing).
        value = self._arrays.tag[self._index]
        return None if value < 0 else int(value)

    @tag.setter
    def tag(self, value: Optional[int]) -> None:
        self._arrays.tag[self._index] = -1 if value is None else value

    @property
    def state(self) -> MESIState:
        return MESI_STATES[self._arrays.state[self._index]]

    @state.setter
    def state(self, value: MESIState) -> None:
        arrays = self._arrays
        code = MESI_CODES[value]
        arrays.state[self._index] = code
        arrays.valid[self._index] = 1 if code else 0
        arrays.dirty[self._index] = 1 if code == MESI_MODIFIED else 0

    @property
    def last_access_cycle(self) -> int:
        return self._arrays.last_access_cycle[self._index]

    @last_access_cycle.setter
    def last_access_cycle(self, value: int) -> None:
        self._arrays.last_access_cycle[self._index] = value

    @property
    def last_refresh_cycle(self) -> int:
        return self._arrays.last_refresh_cycle[self._index]

    @last_refresh_cycle.setter
    def last_refresh_cycle(self, value: int) -> None:
        self._arrays.last_refresh_cycle[self._index] = value

    @property
    def refresh_count(self) -> Optional[int]:
        value = self._arrays.refresh_count[self._index]
        return None if value < 0 else int(value)

    @refresh_count.setter
    def refresh_count(self, value: Optional[int]) -> None:
        self._arrays.refresh_count[self._index] = -1 if value is None else value

    @property
    def lru_stamp(self) -> int:
        return self._arrays.lru_stamp[self._index]

    @lru_stamp.setter
    def lru_stamp(self, value: int) -> None:
        self._arrays.lru_stamp[self._index] = value

    # -- predicates read the derived vectors directly ------------------------

    @property
    def valid(self) -> bool:
        return bool(self._arrays.valid[self._index])

    @property
    def dirty(self) -> bool:
        return bool(self._arrays.dirty[self._index])


class ArrayCacheLine(_ArrayLineFields, CacheLine):
    """One private-cache line viewed through :class:`LineArrays`.

    Subclassing :class:`CacheLine` keeps every inherited state-machine
    method (``fill``, ``touch``, ``refresh``, ``invalidate``,
    ``is_expired``) working unchanged: they read and write through the
    mixin's properties, which route to the arrays.  The parent's slot
    storage is shadowed and unused.
    """

    __slots__ = ("_arrays", "_index")


class ArrayDirectoryLine(_ArrayLineFields, DirectoryLine):
    """One L3 directory line viewed through :class:`LineArrays`.

    The MRO picks up the mixin's array-backed fields first and
    :class:`DirectoryLine`'s behaviour (``fill`` / ``invalidate`` /
    ``mark_dirty`` / ``mark_clean``) second; ``valid`` and ``dirty`` come
    from the arrays, which for a directory store are maintained from the L3
    state setter below.
    """

    __slots__ = ("_arrays", "_index")

    # For directory lines the MESI field is bookkeeping only; valid/dirty
    # derive from the L3 state, so this setter must not touch them.
    @property
    def state(self) -> MESIState:
        return MESI_STATES[self._arrays.state[self._index]]

    @state.setter
    def state(self, value: MESIState) -> None:
        self._arrays.state[self._index] = MESI_CODES[value]

    @property
    def l3_state(self) -> L3State:
        return L3_STATES[self._arrays.l3_state[self._index]]

    @l3_state.setter
    def l3_state(self, value: L3State) -> None:
        arrays = self._arrays
        code = L3_CODES[value]
        arrays.l3_state[self._index] = code
        arrays.valid[self._index] = 1 if code else 0
        arrays.dirty[self._index] = 1 if code == L3_DIRTY else 0

    @property
    def sharers(self) -> Set[int]:
        return self._arrays.sharers[self._index]

    @sharers.setter
    def sharers(self, value: Set[int]) -> None:
        self._arrays.sharers[self._index] = value

    @property
    def owner(self) -> Optional[int]:
        value = self._arrays.owner[self._index]
        return None if value < 0 else int(value)

    @owner.setter
    def owner(self, value: Optional[int]) -> None:
        self._arrays.owner[self._index] = -1 if value is None else value
