"""Application class binning (Fig. 3.1 / Table 6.1).

The paper groups its applications by footprint (relative to the last-level
cache) and by the visibility the last-level cache has of upper-level
activity, and reports class-averaged results.  The binning below matches
the paper's Table 6.1; :func:`class_of` is derived from the workload specs
so the binning and the synthetic generators can never drift apart.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from repro.workloads.suite import application_class, application_specs

#: Class id -> tuple of application names, exactly as in Table 6.1.
APPLICATION_CLASSES: Dict[int, Tuple[str, ...]] = {
    1: ("fft", "fmm", "cholesky", "fluidanimate"),
    2: ("barnes", "lu", "radix", "radiosity"),
    3: ("blackscholes", "streamcluster", "raytrace"),
}


def class_of(application: str) -> int:
    """The class (1, 2 or 3) of an application name."""
    return application_class(application)


def class_members(app_class: int) -> Tuple[str, ...]:
    """The applications binned into ``app_class``."""
    if app_class not in APPLICATION_CLASSES:
        raise KeyError(f"unknown application class {app_class}")
    return APPLICATION_CLASSES[app_class]


def classes_consistent_with_specs() -> bool:
    """Check the static table against the per-spec class annotations."""
    for app_class, names in APPLICATION_CLASSES.items():
        for name in names:
            if application_specs()[name].app_class != app_class:
                return False
    expected = {name for names in APPLICATION_CLASSES.values() for name in names}
    return expected == set(application_specs().keys())


def average_by_class(
    per_application: Mapping[str, float],
    applications: Iterable[str] | None = None,
) -> Dict[str, float]:
    """Average a per-application metric per class and over all applications.

    Returns a mapping with keys ``"class1"``, ``"class2"``, ``"class3"`` and
    ``"all"``; classes with no application present in ``per_application``
    are omitted.
    """
    names = list(applications) if applications is not None else list(per_application)
    averages: Dict[str, float] = {}
    all_values: List[float] = []
    for app_class, members in APPLICATION_CLASSES.items():
        values = [per_application[name] for name in members if name in names]
        if values:
            averages[f"class{app_class}"] = sum(values) / len(values)
            all_values.extend(values)
    if all_values:
        averages["all"] = sum(all_values) / len(all_values)
    return averages
