"""Top-level simulator, results, parameter sweep and application classes."""

from repro.core.classes import APPLICATION_CLASSES, class_of, class_members
from repro.core.results import SimulationResult
from repro.core.simulator import RefrintSimulator
from repro.core.sweep import PolicyPoint, SweepResult, default_policy_points, run_sweep

__all__ = [
    "APPLICATION_CLASSES",
    "PolicyPoint",
    "RefrintSimulator",
    "SimulationResult",
    "SweepResult",
    "class_members",
    "class_of",
    "default_policy_points",
    "run_sweep",
]
