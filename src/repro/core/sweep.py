"""The parameter sweep of Table 5.4.

For every application, the paper simulates 43 configurations: the full-SRAM
baseline plus the cartesian product of 3 retention times x 2 timing policies
x 7 data policies on the full-eDRAM hierarchy.  :func:`run_sweep` runs that
grid (or any subset) and returns a :class:`SweepResult` from which the
figures of Chapter 6 are produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.config.parameters import (
    ArchitectureConfig,
    DataPolicySpec,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.config.presets import (
    paper_data_policies,
    scaled_architecture,
    scaled_retention_cycles,
)
from repro.core.results import SimulationResult
from repro.core.simulator import RefrintSimulator
from repro.workloads.suite import ApplicationWorkload, WorkloadRequest

#: The retention times of Table 5.4, in microseconds.
DEFAULT_RETENTION_TIMES_US: Tuple[float, ...] = (50.0, 100.0, 200.0)


@dataclass(frozen=True)
class PolicyPoint:
    """One eDRAM configuration of the sweep grid."""

    retention_us: float
    timing_policy: TimingPolicyKind
    data_policy: DataPolicySpec

    @property
    def policy_label(self) -> str:
        """Label within one retention group, e.g. ``R.WB(32,32)``."""
        return f"{self.timing_policy.short_name}.{self.data_policy.label}"

    @property
    def label(self) -> str:
        """Fully qualified label, e.g. ``50us/R.WB(32,32)``.

        The retention is rendered with ``%g`` (matching the paper's axis
        labels) unless that would lose precision -- labels identify points
        in JSON summaries, so :meth:`from_label` must recover the exact
        retention value.
        """
        text = f"{self.retention_us:g}"
        if float(text) != self.retention_us:
            text = repr(self.retention_us)
        return f"{text}us/{self.policy_label}"

    @classmethod
    def from_label(cls, label: str) -> "PolicyPoint":
        """Parse a fully qualified label back into a point.

        Inverse of :attr:`label`; used when reloading a sweep summary from
        JSON, which stores points by label only.
        """
        import re

        # The retention is rendered with %g, which may use scientific
        # notation (e.g. ``1e+06us``) for very large or small values.
        match = re.fullmatch(
            r"([0-9.]+(?:[eE][+-]?[0-9]+)?)us/([PR])\.(all|valid|dirty|WB\((\d+),(\d+)\))",
            label,
        )
        if not match:
            raise ValueError(f"unparseable policy-point label {label!r}")
        retention = float(match.group(1))
        timing = (
            TimingPolicyKind.PERIODIC
            if match.group(2) == "P"
            else TimingPolicyKind.REFRINT
        )
        policy_text = match.group(3)
        if policy_text == "all":
            data = DataPolicySpec.all_lines()
        elif policy_text == "valid":
            data = DataPolicySpec.valid()
        elif policy_text == "dirty":
            data = DataPolicySpec.dirty()
        else:
            data = DataPolicySpec.writeback(int(match.group(4)), int(match.group(5)))
        return cls(retention, timing, data)

    def refresh_config(self, architecture: ArchitectureConfig) -> RefreshConfig:
        """Materialise the refresh configuration for an architecture."""
        retention_cycles = scaled_retention_cycles(self.retention_us)
        if architecture.l3_bank.size_bytes >= 1024 * 1024:
            # Paper-sized geometry: use the unscaled retention period.
            retention_cycles = architecture.cycles_from_seconds(
                self.retention_us * 1e-6
            )
        margin = RefreshConfig.derive_sentry_margin(
            architecture.l3_bank.num_lines, retention_cycles
        )
        return RefreshConfig(
            retention_cycles=retention_cycles,
            sentry_margin_cycles=margin,
            timing_policy=self.timing_policy,
            l3_data_policy=self.data_policy,
        )

    def simulation_config(self, architecture: ArchitectureConfig) -> SimulationConfig:
        """Materialise the full simulation configuration."""
        return SimulationConfig.edram(self.refresh_config(architecture), architecture)


def default_policy_points(
    retention_times_us: Sequence[float] = DEFAULT_RETENTION_TIMES_US,
    timing_policies: Sequence[TimingPolicyKind] = (
        TimingPolicyKind.PERIODIC,
        TimingPolicyKind.REFRINT,
    ),
    data_policies: Sequence[DataPolicySpec] | None = None,
) -> List[PolicyPoint]:
    """The 42 eDRAM points of Table 5.4 (or a restriction of them)."""
    policies = (
        list(data_policies) if data_policies is not None else list(paper_data_policies())
    )
    points: List[PolicyPoint] = []
    for retention in retention_times_us:
        for timing in timing_policies:
            for data in policies:
                points.append(PolicyPoint(retention, timing, data))
    return points


@dataclass
class SweepResult:
    """Results of a sweep: per application, the baseline and every point.

    Attributes:
        baselines: application name -> full-SRAM result.
        results: application name -> point label -> eDRAM result.
        points: the points that were simulated, in order.
    """

    baselines: Dict[str, SimulationResult] = field(default_factory=dict)
    results: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)
    points: List[PolicyPoint] = field(default_factory=list)

    # -- access helpers -----------------------------------------------------------

    @property
    def applications(self) -> List[str]:
        """Applications present in the sweep, in insertion order."""
        return list(self.baselines.keys())

    def result(self, application: str, point: PolicyPoint) -> SimulationResult:
        """The result of one application at one sweep point."""
        return self.results[application][point.label]

    def baseline(self, application: str) -> SimulationResult:
        """The full-SRAM result of one application."""
        return self.baselines[application]

    def points_for_retention(self, retention_us: float) -> List[PolicyPoint]:
        """The sweep points at one retention time, in policy order."""
        return [p for p in self.points if p.retention_us == retention_us]

    def retention_times(self) -> List[float]:
        """Distinct retention times in the sweep, in order."""
        seen: List[float] = []
        for point in self.points:
            if point.retention_us not in seen:
                seen.append(point.retention_us)
        return seen

    # -- normalised metrics ----------------------------------------------------------

    def normalised_metric(
        self,
        metric: Callable[[SimulationResult, SimulationResult], float],
        point: PolicyPoint,
        applications: Iterable[str] | None = None,
    ) -> Dict[str, float]:
        """Apply a (result, baseline) -> float metric per application."""
        names = list(applications) if applications is not None else self.applications
        values: Dict[str, float] = {}
        for name in names:
            values[name] = metric(self.result(name, point), self.baseline(name))
        return values

    def normalised_memory_energy(
        self, point: PolicyPoint, applications: Iterable[str] | None = None
    ) -> Dict[str, float]:
        """Per-application memory energy relative to SRAM."""
        return self.normalised_metric(
            lambda r, b: r.normalised_memory_energy(b), point, applications
        )

    def normalised_system_energy(
        self, point: PolicyPoint, applications: Iterable[str] | None = None
    ) -> Dict[str, float]:
        """Per-application system energy relative to SRAM."""
        return self.normalised_metric(
            lambda r, b: r.normalised_system_energy(b), point, applications
        )

    def normalised_execution_time(
        self, point: PolicyPoint, applications: Iterable[str] | None = None
    ) -> Dict[str, float]:
        """Per-application execution time relative to SRAM."""
        return self.normalised_metric(
            lambda r, b: r.normalised_execution_time(b), point, applications
        )

    # -- serialisation ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary of the whole sweep.

        ``applications`` records the insertion order explicitly so the
        summary survives ``json.dump(..., sort_keys=True)`` (which
        alphabetises the ``baselines``/``results`` mappings).
        """
        return {
            "applications": list(self.baselines.keys()),
            "points": [point.label for point in self.points],
            "baselines": {
                name: result.to_dict() for name, result in self.baselines.items()
            },
            "results": {
                name: {label: res.to_dict() for label, res in by_point.items()}
                for name, by_point in self.results.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepResult":
        """Rebuild a sweep from a :meth:`to_dict` summary.

        Points are reconstructed by parsing their labels
        (:meth:`PolicyPoint.from_label`); individual results come back via
        :meth:`SimulationResult.from_dict`, so
        ``SweepResult.from_dict(s.to_dict()).to_dict() == s.to_dict()``.
        """
        sweep = cls(
            points=[PolicyPoint.from_label(label) for label in data["points"]]
        )
        baselines = dict(data["baselines"])
        results = dict(data["results"])
        # Older summaries predate the explicit order key; fall back to the
        # (possibly alphabetised) mapping order.
        names = list(data.get("applications", baselines.keys()))
        for name in names:
            sweep.baselines[name] = SimulationResult.from_dict(baselines[name])
            sweep.results[name] = {
                label: SimulationResult.from_dict(result_data)
                for label, result_data in dict(results.get(name, {})).items()
            }
        return sweep


def run_point(
    point: PolicyPoint,
    application: ApplicationWorkload,
    architecture: Optional[ArchitectureConfig] = None,
) -> SimulationResult:
    """Simulate one application at one eDRAM sweep point."""
    arch = architecture if architecture is not None else scaled_architecture()
    return RefrintSimulator(point.simulation_config(arch)).run(application)


def run_sweep(
    applications: Mapping[str, ApplicationWorkload],
    architecture: Optional[ArchitectureConfig] = None,
    points: Optional[Sequence[PolicyPoint]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run the full-SRAM baseline plus every sweep point for each application.

    This is a thin wrapper over the campaign engine
    (:func:`repro.campaign.engine.run_campaign`) using a serial executor
    seeded with the pre-built workloads; use the engine directly for
    parallel execution, persistence and resume.

    Args:
        applications: workloads keyed by application name.
        architecture: chip geometry (defaults to the scaled preset).
        points: sweep points (defaults to the full Table 5.4 grid).
        progress: optional callback invoked with a human-readable message
            before each simulation (useful for long sweeps).
    """
    # Imported here: the campaign package builds on this module's classes.
    from repro.campaign.engine import run_campaign
    from repro.campaign.executors import SerialExecutor

    arch = architecture if architecture is not None else scaled_architecture()
    grid = list(points) if points is not None else default_policy_points()
    requests = [WorkloadRequest(name) for name in applications]
    executor = SerialExecutor(workloads=applications)
    sweep, _ = run_campaign(
        requests,
        points=grid,
        architecture=arch,
        executor=executor,
        progress=progress,
    )
    return sweep
