"""The top-level Refrint simulator.

:class:`RefrintSimulator` assembles one complete simulation point: the cache
hierarchy, the trace-replay cores, the refresh controllers (for eDRAM
configurations) and the energy model, drives the replay loop until every
core drains its trace, performs the end-of-run dirty flush, and returns a
:class:`~repro.core.results.SimulationResult`.  ``replay`` selects the
loop: "runahead" (the default) executes references inline between refresh
disturbances, "event" replays one heap callback per reference; both give
byte-identical results.

Typical use::

    config = SimulationConfig.scaled(retention_us=50.0)
    app = build_application("fft", config)
    result = RefrintSimulator(config).run(app)
    baseline = RefrintSimulator(config.as_sram_baseline()).run(app)
    print(result.normalised_memory_energy(baseline))
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush, heapreplace
from typing import List, Optional

from repro.config.parameters import SimulationConfig
from repro.core.results import SimulationResult
from repro.cpu.core import Core
from repro.kernels import resolve_kernel
from repro.energy.model import ActivitySummary, SystemEnergyModel
from repro.energy.tables import TechnologyTables
from repro.hierarchy.hierarchy import CacheHierarchy
from repro.refresh.controller import build_refresh_controllers
from repro.utils.events import EventQueue
from repro.workloads.suite import ApplicationWorkload

#: Safety valve on the event loop, in events, to guarantee termination even
#: if a configuration error were to keep cores from finishing.
MAX_EVENTS = 200_000_000

#: Replay modes: "runahead" executes core references inline, yielding to the
#: event queue only when a refresh timer or another core's reference comes
#: first; "event" is the classic one-heap-callback-per-reference loop.  Both
#: produce byte-identical results (pinned by tests/test_backend_equivalence.py).
REPLAY_MODES = ("runahead", "event")


@dataclass(frozen=True)
class ReplayStats:
    """Event-loop and protocol traffic of one simulation run.

    Attributes:
        events_popped: events executed through the queue's heap.  Under
            run-ahead replay this is refresh-wheel drains (plus nothing
            else); under event replay it additionally counts one callback
            per core reference.
        references: data references executed by the cores (identical across
            replay modes; they are inlined, not queued, under run-ahead).
        protocol_calls: access-path protocol invocations -- reads, writes
            and instruction fetches walked individually, plus one per
            committed hit run.  Event replay walks the protocol once per
            reference; run-ahead resolves whole private-hit runs per call,
            so the ratio between the two is the protocol batching factor
            (exact counts, no timing noise; gated by the hot-path CI
            benchmark).
        run_landings: bulk timestamp landings of pending runs (cache-level
            ``access_run`` sweeps before refresh work or a slow access
            reads the arrays).  Reported alongside ``protocol_calls`` so
            the batching factor hides no residual bulk work.
        kernel_batches: columnar kernel scans that retired at least one
            reference (kernel modes only; exact count, CI currency).
        kernel_accesses: references retired through kernel batches
            (scanned stretches plus the seam fills stitched between them).
            The hot-path benchmark gates the ratio of this to the
            private-hit reference count as the kernel's coverage of the
            private-hit stream.
        slow_references: data references that fell off the private fast
            path and took a full protocol walk.  ``references -
            slow_references`` is the private-hit stream the kernel
            coverage gate divides by.
        empty_landings_skipped: per-drain ``land_run`` calls avoided
            because the core had deferred nothing since its last landing
            (the dirty-core registry satellite).
        resolved_hits / resolved_misses: block validations served from /
            missed by the per-core resolved-block cache on the run path.
        wheel_drains / wheel_skips / wheel_scans: refresh-wheel activity of
            the run (queue events fired, probe-skipped scans, entries
            examined).  All zero for SRAM runs, which build no wheel.
            ``wheel_skips <= wheel_scans`` and
            ``wheel_drains <= events_popped`` are invariants checked by
            :func:`repro.validate.invariants.check_replay_stats`.
    """

    events_popped: int
    references: int
    protocol_calls: int = 0
    run_landings: int = 0
    kernel_batches: int = 0
    kernel_accesses: int = 0
    slow_references: int = 0
    empty_landings_skipped: int = 0
    resolved_hits: int = 0
    resolved_misses: int = 0
    wheel_drains: int = 0
    wheel_skips: int = 0
    wheel_scans: int = 0

    @property
    def resolved_hit_rate(self) -> float:
        """Fraction of run-path block validations served by the cache."""
        total = self.resolved_hits + self.resolved_misses
        return self.resolved_hits / total if total else 0.0

    @property
    def private_hit_references(self) -> int:
        """Data references the private hierarchy served without a walk."""
        return self.references - self.slow_references

    @property
    def kernel_coverage(self) -> float:
        """Fraction of private-hit references retired through the kernel."""
        total = self.private_hit_references
        return self.kernel_accesses / total if total else 0.0


class RefrintSimulator:
    """Run one configuration point against one application workload."""

    def __init__(
        self,
        config: SimulationConfig,
        tables: Optional[TechnologyTables] = None,
        cache_backend: str = "array",
        replay: str = "runahead",
        kernel: str = "off",
    ) -> None:
        if replay not in REPLAY_MODES:
            raise ValueError(
                f"unknown replay mode {replay!r}; expected one of {REPLAY_MODES}"
            )
        self.kernel = resolve_kernel(kernel)
        if self.kernel != "off" and replay != "runahead":
            raise ValueError(
                "batch kernels drive the run-ahead replay loop; "
                f"kernel={kernel!r} cannot be combined with replay={replay!r}"
            )
        self.config = config
        self._tables = tables
        self.cache_backend = cache_backend
        self.replay = replay
        #: Event-loop statistics of the most recent :meth:`run`.
        self.last_replay_stats: Optional[ReplayStats] = None

    def run(self, application: ApplicationWorkload) -> SimulationResult:
        """Simulate the application and return the measured result."""
        architecture = self.config.architecture
        if application.num_threads != architecture.num_cores:
            raise ValueError(
                f"workload has {application.num_threads} threads but the chip "
                f"has {architecture.num_cores} cores"
            )

        hierarchy = CacheHierarchy(architecture, cache_backend=self.cache_backend)
        events = EventQueue()
        finished: List[int] = []

        def on_finish(cycle: int, core: Core) -> None:
            finished.append(core.core_id)

        cores = [
            Core(
                core_id=core_id,
                trace=application.traces[core_id],
                hierarchy=hierarchy,
                event_queue=events,
                on_finish=on_finish,
                # Event replay never touches the batched path; skip its
                # per-record precomputation so the per-reference baseline
                # the benchmarks compare against stays undistorted.
                prepare_runs=self.replay == "runahead",
                kernel=self.kernel if self.replay == "runahead" else "off",
            )
            for core_id in range(architecture.num_cores)
        ]

        controllers = build_refresh_controllers(hierarchy, self.config, events)
        for controller in controllers:
            controller.start(0)

        empty_landings_skipped = 0
        if self.replay == "event":
            for core in cores:
                core.start(0)
            self._run_event_loop(events, finished, len(cores))
        elif self.kernel != "off":
            empty_landings_skipped = self._run_ahead_kernel(
                events, cores, finished, hierarchy.protocol
            )
        else:
            empty_landings_skipped = self._run_ahead(
                events, cores, finished, hierarchy.protocol
            )
        wheel = hierarchy.refresh_wheel
        self.last_replay_stats = ReplayStats(
            events_popped=events.popped_events,
            references=sum(core.stats.references_completed for core in cores),
            protocol_calls=hierarchy.protocol_calls,
            run_landings=hierarchy.protocol.run_landings,
            kernel_batches=sum(core._kernel_batches for core in cores),
            kernel_accesses=sum(core._kernel_accesses for core in cores),
            slow_references=sum(core._slow_refs for core in cores),
            empty_landings_skipped=empty_landings_skipped,
            resolved_hits=sum(core._res_hits for core in cores),
            resolved_misses=sum(core._res_misses for core in cores),
            wheel_drains=wheel.drains if wheel is not None else 0,
            wheel_skips=wheel.skips if wheel is not None else 0,
            wheel_scans=wheel.scans if wheel is not None else 0,
        )

        execution_cycles = max(
            core.stats.finish_cycle or events.now for core in cores
        )
        if self.config.flush_dirty_at_end:
            hierarchy.flush_dirty(execution_cycles)

        busy_core_cycles = sum(core.stats.busy_cycles for core in cores)
        activity = ActivitySummary(
            counters=hierarchy.counters,
            execution_cycles=execution_cycles,
            busy_core_cycles=busy_core_cycles,
        )
        model = SystemEnergyModel(
            architecture=architecture,
            technology=self.config.technology,
            tables=self._tables,
        )
        account = model.account_for(activity)
        return SimulationResult(
            config=self.config,
            application=application.name,
            execution_cycles=execution_cycles,
            busy_core_cycles=busy_core_cycles,
            counters=hierarchy.counters.as_dict(),
            energy=account.breakdown(),
            per_core_finish_cycles=[
                core.stats.finish_cycle or execution_cycles for core in cores
            ],
        )

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _run_event_loop(
        events: EventQueue, finished: List[int], num_cores: int
    ) -> None:
        """Drain events until every core has finished its trace.

        Refresh controllers keep rescheduling themselves indefinitely, so the
        loop terminates on core completion rather than on queue exhaustion.
        The drain itself runs inside the event queue
        (:meth:`~repro.utils.events.EventQueue.drain_until_count`) so each
        event costs one heap pop and one callback, without re-dispatching
        through the Optional-returning :meth:`~repro.utils.events.EventQueue.pop`
        wrapper.
        """
        events.drain_until_count(finished, num_cores, MAX_EVENTS)

    @staticmethod
    def _run_ahead(
        events: EventQueue, cores: List[Core], finished: List[int], protocol
    ) -> int:
        """Execute references back-to-back, bypassing the heap entirely.

        Per-reference event replay pays one heap push and one pop per data
        reference just to discover what was already known when the previous
        reference completed: *which* core issues next and *when*.  Here the
        pending issue times live in a 16-entry ready list instead, and a
        core executes references in a tight loop up to its *horizon* -- the
        earlier of the next refresh-wheel deadline
        (:meth:`~repro.hierarchy.hierarchy.CacheHierarchy.next_disturbance_cycle`,
        i.e. the queue's next event) and the next other core's issue time.

        Ordering -- and therefore every counter, stall and eviction -- is
        byte-identical to event replay: references execute in the exact
        (time, seq) order the heap would have produced, because each
        reference still claims a sequence number from the queue's shared
        counter at the same point event replay would have scheduled its
        callback.

        On top of the inlining, references ride the *batched access path*
        (:meth:`~repro.cpu.core.Core.step_fast`): private-cache hits defer
        their commutative effects into per-core run buffers that survive
        core switches -- a hit run only ends at the core's own
        state-changing access, a refresh-wheel drain (flushed below, since
        refresh work reads the deferred timestamps), or trace end -- and
        one staged ``hit_run`` call commits each run.  Deferring is safe
        precisely because a private hit touches nothing another core's
        transaction reads: cross-core MESI state stays eagerly maintained,
        only this core's replacement/refresh stamps and globally additive
        counters wait in the buffer.
        """
        # Direct heap / counter access, same rationale as
        # EventQueue.drain_until_count: this loop runs once per data
        # reference and cannot afford wrapper dispatch.
        heap = events._heap
        counter = events._counter
        run_until_key = events.run_until_key
        dirty = protocol.dirty_cores
        num_cores = len(cores)
        empty_landings_skipped = 0
        ready: List = []  # (issue time, seq, core) -- seq unique, so the
        for core in cores:  # core object is never compared.
            issue_time = core.begin(0)
            if issue_time is not None:
                heappush(ready, (issue_time, next(counter), core))
        target = num_cores
        executed = 0
        while len(finished) < target:
            if not ready:
                raise RuntimeError(
                    "all pending references drained before every core "
                    "finished; a core failed to report its next reference"
                )
            time, seq, core = ready[0]
            # Let refresh timers ordered before this reference fire first.
            # (A cancelled entry at the top is handled the same as a live
            # one here: treating its key as a horizon just ends the batch
            # early, and run_until_key discards it on the next pass.)
            if heap:
                head = heap[0]
                if head[0] < time or (head[0] == time and head[1] < seq):
                    # Refresh work reads and rewrites the timestamp vectors
                    # the hit runs defer; land every pending run first.
                    # Only registered (dirty) cores can have pending state
                    # -- an unregistered core's buffer and resolution
                    # caches are provably empty, so its landing is skipped.
                    landed = 0
                    for pending_core in dirty:
                        if pending_core._in_dirty:
                            pending_core.land_run()
                            landed += 1
                    dirty.clear()
                    empty_landings_skipped += num_cores - landed
                    executed += run_until_key(time, seq)
                    if executed > MAX_EVENTS:
                        raise RuntimeError(
                            "event limit exceeded; the simulation appears "
                            "to be stuck"
                        )
            # Horizon: the earliest of the next queue event (the refresh
            # wheel's next disturbance) and the next reference of any
            # *other* core.  Up to there this core runs free.  A freshly
            # claimed seq always exceeds the horizon entry's, so comparing
            # times alone is exact.
            horizon = heap[0][0] if heap else None
            if len(ready) > 1:
                second = ready[1]
                if len(ready) > 2 and ready[2] < second:
                    second = ready[2]
                if horizon is None or second[0] < horizon:
                    horizon = second[0]
            # The clock only needs to be current when queue callbacks run,
            # and none run inside the batch; one forward store per batch
            # suffices (run_until_key above never leaves _now past `time`).
            events._now = time
            step = core.step_fast
            while True:
                next_time = step(time)
                if next_time is None:
                    heappop(ready)
                    break
                next_seq = next(counter)
                if horizon is not None and next_time >= horizon:
                    heapreplace(ready, (next_time, next_seq, core))
                    break
                time = next_time
        # A core whose final reference went down the slow path finished
        # inside step() with its run tallies still pending; commit them
        # before the results are assembled.
        for core in cores:
            core.commit_run()
        return empty_landings_skipped

    @staticmethod
    def _run_ahead_kernel(
        events: EventQueue, cores: List[Core], finished: List[int], protocol
    ) -> int:
        """Run-ahead replay with batched (kernel) reference retirement.

        Same ready-list structure and byte-identical ordering guarantees as
        :meth:`_run_ahead`, but each inner step goes through
        :meth:`~repro.cpu.core.Core.step_batch`, which retires a whole
        kernel-eligible stretch per call, and the horizon is split in two:

        * ``strict`` -- the classic bound (next heap event, next other
          core's pending issue time).  Scalar (possibly state-changing)
          references execute only below it, where this core is provably
          the globally earliest actor.
        * ``relaxed`` -- the kernel bound.  A waiting core whose last scan
          *promised* that its pending references remain pure private hits
          up to some frontier (no directory transaction, no event, no
          shared state) publishes that frontier; pure-hit stretches of the
          running core may retire past such a core's issue time, because
          pure hits of different cores touch disjoint state, claim the
          same total of sequence numbers, and therefore commute
          byte-identically.  The next heap event stays a hard bound, and a
          frontier counts only while its protocol-epoch and
          driver-generation stamps are current (any directory transaction
          bumps the epoch; every wheel drain bumps the generation).

        The batch re-validates the horizons whenever the epoch or the
        queue head moves (a slow reference may have armed or cancelled
        events), so stale promises shrink the bound rather than leak
        through it.  Returns the skipped-empty-landing count.
        """
        heap = events._heap
        run_until_key = events.run_until_key
        peek_key = events.peek_key
        epoch = protocol.run_epoch
        dirty = protocol.dirty_cores
        num_cores = len(cores)
        empty_landings_skipped = 0
        generation = 0
        ready: List = []  # (issue time, seq, core); seq unique.
        for core in cores:
            issue_time = core.begin(0)
            if issue_time is not None:
                heappush(ready, (issue_time, events.claim_seq(), core))
        target = num_cores
        executed = 0

        def horizons():
            """(strict, relaxed) for the core at ready[0]; -1 = unbounded."""
            head = peek_key()
            head_time = head[0] if head is not None else -1
            strict = head_time
            relaxed = head_time
            if len(ready) > 1:
                second = ready[1]
                if len(ready) > 2 and ready[2] < second:
                    second = ready[2]
                if strict < 0 or second[0] < strict:
                    strict = second[0]
                frontier_min = -1
                for entry in ready[1:]:
                    # ``promise`` returns the waiting core's published
                    # private frontier, computing and caching it (against
                    # the current epoch/generation stamps) on first ask;
                    # cores that cannot promise return their entry time.
                    bound = entry[2].promise(entry[0], generation)
                    if frontier_min < 0 or bound < frontier_min:
                        frontier_min = bound
                if frontier_min >= 0 and (relaxed < 0 or frontier_min < relaxed):
                    relaxed = frontier_min
            return strict, relaxed

        while len(finished) < target:
            if not ready:
                raise RuntimeError(
                    "all pending references drained before every core "
                    "finished; a core failed to report its next reference"
                )
            time, seq, core = ready[0]
            head = peek_key()
            if head is not None and head < (time, seq):
                landed = 0
                for pending_core in dirty:
                    if pending_core._in_dirty:
                        pending_core.land_run()
                        landed += 1
                dirty.clear()
                empty_landings_skipped += num_cores - landed
                executed += run_until_key(time, seq)
                generation += 1
                if executed > MAX_EVENTS:
                    raise RuntimeError(
                        "event limit exceeded; the simulation appears "
                        "to be stuck"
                    )
                head = peek_key()
            strict, relaxed = horizons()
            epoch_seen = epoch[0]
            events._now = time
            allow_scalar = True
            while True:
                next_time = core.step_batch(
                    time, strict, relaxed, generation, allow_scalar
                )
                allow_scalar = False
                if next_time is None:
                    heappop(ready)
                    break
                if next_time < 0:
                    # Blocked: nothing retirable below the horizons.  The
                    # pending reference keeps the key it already claimed.
                    heapreplace(ready, (time, core._last_seq, core))
                    break
                if epoch[0] != epoch_seen or peek_key() != head:
                    # A slow reference transacted with the directory or
                    # moved the queue head; promises and bounds are stale.
                    epoch_seen = epoch[0]
                    head = peek_key()
                    strict, relaxed = horizons()
                if 0 <= relaxed <= next_time:
                    heapreplace(ready, (next_time, core._last_seq, core))
                    break
                time = next_time
        for core in cores:
            core.commit_run()
        return empty_landings_skipped
