"""The top-level Refrint simulator.

:class:`RefrintSimulator` assembles one complete simulation point: the cache
hierarchy, the trace-replay cores, the refresh controllers (for eDRAM
configurations) and the energy model, drives the replay loop until every
core drains its trace, performs the end-of-run dirty flush, and returns a
:class:`~repro.core.results.SimulationResult`.  ``replay`` selects the
loop: "runahead" (the default) executes references inline between refresh
disturbances, "event" replays one heap callback per reference; both give
byte-identical results.

Typical use::

    config = SimulationConfig.scaled(retention_us=50.0)
    app = build_application("fft", config)
    result = RefrintSimulator(config).run(app)
    baseline = RefrintSimulator(config.as_sram_baseline()).run(app)
    print(result.normalised_memory_energy(baseline))
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush, heapreplace
from typing import List, Optional

from repro.config.parameters import SimulationConfig
from repro.core.results import SimulationResult
from repro.cpu.core import Core
from repro.energy.model import ActivitySummary, SystemEnergyModel
from repro.energy.tables import TechnologyTables
from repro.hierarchy.hierarchy import CacheHierarchy
from repro.refresh.controller import build_refresh_controllers
from repro.utils.events import EventQueue
from repro.workloads.suite import ApplicationWorkload

#: Safety valve on the event loop, in events, to guarantee termination even
#: if a configuration error were to keep cores from finishing.
MAX_EVENTS = 200_000_000

#: Replay modes: "runahead" executes core references inline, yielding to the
#: event queue only when a refresh timer or another core's reference comes
#: first; "event" is the classic one-heap-callback-per-reference loop.  Both
#: produce byte-identical results (pinned by tests/test_backend_equivalence.py).
REPLAY_MODES = ("runahead", "event")


@dataclass(frozen=True)
class ReplayStats:
    """Event-loop and protocol traffic of one simulation run.

    Attributes:
        events_popped: events executed through the queue's heap.  Under
            run-ahead replay this is refresh-wheel drains (plus nothing
            else); under event replay it additionally counts one callback
            per core reference.
        references: data references executed by the cores (identical across
            replay modes; they are inlined, not queued, under run-ahead).
        protocol_calls: access-path protocol invocations -- reads, writes
            and instruction fetches walked individually, plus one per
            committed hit run.  Event replay walks the protocol once per
            reference; run-ahead resolves whole private-hit runs per call,
            so the ratio between the two is the protocol batching factor
            (exact counts, no timing noise; gated by the hot-path CI
            benchmark).
        run_landings: bulk timestamp landings of pending runs (cache-level
            ``access_run`` sweeps before refresh work or a slow access
            reads the arrays).  Reported alongside ``protocol_calls`` so
            the batching factor hides no residual bulk work.
    """

    events_popped: int
    references: int
    protocol_calls: int = 0
    run_landings: int = 0


class RefrintSimulator:
    """Run one configuration point against one application workload."""

    def __init__(
        self,
        config: SimulationConfig,
        tables: Optional[TechnologyTables] = None,
        cache_backend: str = "array",
        replay: str = "runahead",
    ) -> None:
        if replay not in REPLAY_MODES:
            raise ValueError(
                f"unknown replay mode {replay!r}; expected one of {REPLAY_MODES}"
            )
        self.config = config
        self._tables = tables
        self.cache_backend = cache_backend
        self.replay = replay
        #: Event-loop statistics of the most recent :meth:`run`.
        self.last_replay_stats: Optional[ReplayStats] = None

    def run(self, application: ApplicationWorkload) -> SimulationResult:
        """Simulate the application and return the measured result."""
        architecture = self.config.architecture
        if application.num_threads != architecture.num_cores:
            raise ValueError(
                f"workload has {application.num_threads} threads but the chip "
                f"has {architecture.num_cores} cores"
            )

        hierarchy = CacheHierarchy(architecture, cache_backend=self.cache_backend)
        events = EventQueue()
        finished: List[int] = []

        def on_finish(cycle: int, core: Core) -> None:
            finished.append(core.core_id)

        cores = [
            Core(
                core_id=core_id,
                trace=application.traces[core_id],
                hierarchy=hierarchy,
                event_queue=events,
                on_finish=on_finish,
                # Event replay never touches the batched path; skip its
                # per-record precomputation so the per-reference baseline
                # the benchmarks compare against stays undistorted.
                prepare_runs=self.replay == "runahead",
            )
            for core_id in range(architecture.num_cores)
        ]

        controllers = build_refresh_controllers(hierarchy, self.config, events)
        for controller in controllers:
            controller.start(0)

        if self.replay == "event":
            for core in cores:
                core.start(0)
            self._run_event_loop(events, finished, len(cores))
        else:
            self._run_ahead(events, cores, finished)
        self.last_replay_stats = ReplayStats(
            events_popped=events.popped_events,
            references=sum(core.stats.references_completed for core in cores),
            protocol_calls=hierarchy.protocol_calls,
            run_landings=hierarchy.protocol.run_landings,
        )

        execution_cycles = max(
            core.stats.finish_cycle or events.now for core in cores
        )
        if self.config.flush_dirty_at_end:
            hierarchy.flush_dirty(execution_cycles)

        busy_core_cycles = sum(core.stats.busy_cycles for core in cores)
        activity = ActivitySummary(
            counters=hierarchy.counters,
            execution_cycles=execution_cycles,
            busy_core_cycles=busy_core_cycles,
        )
        model = SystemEnergyModel(
            architecture=architecture,
            technology=self.config.technology,
            tables=self._tables,
        )
        account = model.account_for(activity)
        return SimulationResult(
            config=self.config,
            application=application.name,
            execution_cycles=execution_cycles,
            busy_core_cycles=busy_core_cycles,
            counters=hierarchy.counters.as_dict(),
            energy=account.breakdown(),
            per_core_finish_cycles=[
                core.stats.finish_cycle or execution_cycles for core in cores
            ],
        )

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _run_event_loop(
        events: EventQueue, finished: List[int], num_cores: int
    ) -> None:
        """Drain events until every core has finished its trace.

        Refresh controllers keep rescheduling themselves indefinitely, so the
        loop terminates on core completion rather than on queue exhaustion.
        The drain itself runs inside the event queue
        (:meth:`~repro.utils.events.EventQueue.drain_until_count`) so each
        event costs one heap pop and one callback, without re-dispatching
        through the Optional-returning :meth:`~repro.utils.events.EventQueue.pop`
        wrapper.
        """
        events.drain_until_count(finished, num_cores, MAX_EVENTS)

    @staticmethod
    def _run_ahead(
        events: EventQueue, cores: List[Core], finished: List[int]
    ) -> None:
        """Execute references back-to-back, bypassing the heap entirely.

        Per-reference event replay pays one heap push and one pop per data
        reference just to discover what was already known when the previous
        reference completed: *which* core issues next and *when*.  Here the
        pending issue times live in a 16-entry ready list instead, and a
        core executes references in a tight loop up to its *horizon* -- the
        earlier of the next refresh-wheel deadline
        (:meth:`~repro.hierarchy.hierarchy.CacheHierarchy.next_disturbance_cycle`,
        i.e. the queue's next event) and the next other core's issue time.

        Ordering -- and therefore every counter, stall and eviction -- is
        byte-identical to event replay: references execute in the exact
        (time, seq) order the heap would have produced, because each
        reference still claims a sequence number from the queue's shared
        counter at the same point event replay would have scheduled its
        callback.

        On top of the inlining, references ride the *batched access path*
        (:meth:`~repro.cpu.core.Core.step_fast`): private-cache hits defer
        their commutative effects into per-core run buffers that survive
        core switches -- a hit run only ends at the core's own
        state-changing access, a refresh-wheel drain (flushed below, since
        refresh work reads the deferred timestamps), or trace end -- and
        one staged ``hit_run`` call commits each run.  Deferring is safe
        precisely because a private hit touches nothing another core's
        transaction reads: cross-core MESI state stays eagerly maintained,
        only this core's replacement/refresh stamps and globally additive
        counters wait in the buffer.
        """
        # Direct heap / counter access, same rationale as
        # EventQueue.drain_until_count: this loop runs once per data
        # reference and cannot afford wrapper dispatch.
        heap = events._heap
        counter = events._counter
        run_until_key = events.run_until_key
        ready: List = []  # (issue time, seq, core) -- seq unique, so the
        for core in cores:  # core object is never compared.
            issue_time = core.begin(0)
            if issue_time is not None:
                heappush(ready, (issue_time, next(counter), core))
        target = len(cores)
        executed = 0
        while len(finished) < target:
            if not ready:
                raise RuntimeError(
                    "all pending references drained before every core "
                    "finished; a core failed to report its next reference"
                )
            time, seq, core = ready[0]
            # Let refresh timers ordered before this reference fire first.
            # (A cancelled entry at the top is handled the same as a live
            # one here: treating its key as a horizon just ends the batch
            # early, and run_until_key discards it on the next pass.)
            if heap:
                head = heap[0]
                if head[0] < time or (head[0] == time and head[1] < seq):
                    # Refresh work reads and rewrites the timestamp vectors
                    # the hit runs defer; land every pending run first.
                    for pending_core in cores:
                        pending_core.land_run()
                    executed += run_until_key(time, seq)
                    if executed > MAX_EVENTS:
                        raise RuntimeError(
                            "event limit exceeded; the simulation appears "
                            "to be stuck"
                        )
            # Horizon: the earliest of the next queue event (the refresh
            # wheel's next disturbance) and the next reference of any
            # *other* core.  Up to there this core runs free.  A freshly
            # claimed seq always exceeds the horizon entry's, so comparing
            # times alone is exact.
            horizon = heap[0][0] if heap else None
            if len(ready) > 1:
                second = ready[1]
                if len(ready) > 2 and ready[2] < second:
                    second = ready[2]
                if horizon is None or second[0] < horizon:
                    horizon = second[0]
            # The clock only needs to be current when queue callbacks run,
            # and none run inside the batch; one forward store per batch
            # suffices (run_until_key above never leaves _now past `time`).
            events._now = time
            step = core.step_fast
            while True:
                next_time = step(time)
                if next_time is None:
                    heappop(ready)
                    break
                next_seq = next(counter)
                if horizon is not None and next_time >= horizon:
                    heapreplace(ready, (next_time, next_seq, core))
                    break
                time = next_time
        # A core whose final reference went down the slow path finished
        # inside step() with its run tallies still pending; commit them
        # before the results are assembled.
        for core in cores:
            core.commit_run()
