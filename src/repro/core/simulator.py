"""The top-level Refrint simulator.

:class:`RefrintSimulator` assembles one complete simulation point: the cache
hierarchy, the trace-replay cores, the refresh controllers (for eDRAM
configurations) and the energy model, runs the event loop until every core
drains its trace, performs the end-of-run dirty flush, and returns a
:class:`~repro.core.results.SimulationResult`.

Typical use::

    config = SimulationConfig.scaled(retention_us=50.0)
    app = build_application("fft", config)
    result = RefrintSimulator(config).run(app)
    baseline = RefrintSimulator(config.as_sram_baseline()).run(app)
    print(result.normalised_memory_energy(baseline))
"""

from __future__ import annotations

from typing import List, Optional

from repro.config.parameters import SimulationConfig
from repro.core.results import SimulationResult
from repro.cpu.core import Core
from repro.energy.model import ActivitySummary, SystemEnergyModel
from repro.energy.tables import TechnologyTables
from repro.hierarchy.hierarchy import CacheHierarchy
from repro.refresh.controller import build_refresh_controllers
from repro.utils.events import EventQueue
from repro.workloads.suite import ApplicationWorkload

#: Safety valve on the event loop, in events, to guarantee termination even
#: if a configuration error were to keep cores from finishing.
MAX_EVENTS = 200_000_000


class RefrintSimulator:
    """Run one configuration point against one application workload."""

    def __init__(
        self,
        config: SimulationConfig,
        tables: Optional[TechnologyTables] = None,
        cache_backend: str = "array",
    ) -> None:
        self.config = config
        self._tables = tables
        self.cache_backend = cache_backend

    def run(self, application: ApplicationWorkload) -> SimulationResult:
        """Simulate the application and return the measured result."""
        architecture = self.config.architecture
        if application.num_threads != architecture.num_cores:
            raise ValueError(
                f"workload has {application.num_threads} threads but the chip "
                f"has {architecture.num_cores} cores"
            )

        hierarchy = CacheHierarchy(architecture, cache_backend=self.cache_backend)
        events = EventQueue()
        finished: List[int] = []

        def on_finish(cycle: int, core: Core) -> None:
            finished.append(core.core_id)

        cores = [
            Core(
                core_id=core_id,
                trace=application.traces[core_id],
                hierarchy=hierarchy,
                event_queue=events,
                on_finish=on_finish,
            )
            for core_id in range(architecture.num_cores)
        ]

        controllers = build_refresh_controllers(hierarchy, self.config, events)
        for controller in controllers:
            controller.start(0)
        for core in cores:
            core.start(0)

        self._run_event_loop(events, finished, len(cores))

        execution_cycles = max(
            core.stats.finish_cycle or events.now for core in cores
        )
        if self.config.flush_dirty_at_end:
            hierarchy.flush_dirty(execution_cycles)

        busy_core_cycles = sum(core.stats.busy_cycles for core in cores)
        activity = ActivitySummary(
            counters=hierarchy.counters,
            execution_cycles=execution_cycles,
            busy_core_cycles=busy_core_cycles,
        )
        model = SystemEnergyModel(
            architecture=architecture,
            technology=self.config.technology,
            tables=self._tables,
        )
        account = model.account_for(activity)
        return SimulationResult(
            config=self.config,
            application=application.name,
            execution_cycles=execution_cycles,
            busy_core_cycles=busy_core_cycles,
            counters=hierarchy.counters.as_dict(),
            energy=account.breakdown(),
            per_core_finish_cycles=[
                core.stats.finish_cycle or execution_cycles for core in cores
            ],
        )

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _run_event_loop(
        events: EventQueue, finished: List[int], num_cores: int
    ) -> None:
        """Drain events until every core has finished its trace.

        Refresh controllers keep rescheduling themselves indefinitely, so the
        loop terminates on core completion rather than on queue exhaustion.
        The drain itself runs inside the event queue
        (:meth:`~repro.utils.events.EventQueue.drain_until_count`) so each
        event costs one heap pop and one callback, without re-dispatching
        through the Optional-returning :meth:`~repro.utils.events.EventQueue.pop`
        wrapper.
        """
        events.drain_until_count(finished, num_cores, MAX_EVENTS)
