"""Simulation results and normalisation against the SRAM baseline.

Every number the paper reports is normalised to the full-SRAM configuration
running the same application: memory-hierarchy energy (Figs. 6.1 and 6.2),
total system energy (Fig. 6.3) and execution time (Fig. 6.4).
:class:`SimulationResult` captures one run; the ``normalised_*`` helpers
produce the paper's metrics given the matching baseline result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config.parameters import SimulationConfig
from repro.energy.accounting import COMPONENTS, MEMORY_LEVELS, EnergyBreakdown


@dataclass
class SimulationResult:
    """Everything measured in one simulation run.

    Attributes:
        config: the configuration that was simulated.
        application: name of the workload.
        execution_cycles: end-to-end execution time in cycles (the finish
            time of the slowest core).
        busy_core_cycles: total cycles the cores spent executing rather than
            stalled, summed over cores.
        counters: raw activity counters (hits, misses, refreshes, messages,
            DRAM accesses, ...).
        energy: the energy breakdown computed by the energy model.
        per_core_finish_cycles: finish time of each core.
    """

    config: SimulationConfig
    application: str
    execution_cycles: int
    busy_core_cycles: int
    counters: Dict[str, int]
    energy: EnergyBreakdown
    per_core_finish_cycles: List[int] = field(default_factory=list)

    # -- raw views -------------------------------------------------------------

    @property
    def label(self) -> str:
        """Configuration label (``SRAM``, ``P.all``, ``R.WB(32,32)``, ...)."""
        return self.config.label

    def memory_energy(self) -> float:
        """Total memory-hierarchy energy in joules."""
        return self.energy.memory_total()

    def system_energy(self) -> float:
        """Total system energy (memory + cores + network) in joules."""
        return self.energy.system_total()

    def counter(self, name: str) -> int:
        """A raw counter value (0 when never incremented)."""
        return self.counters.get(name, 0)

    def miss_rate(self, level: str) -> float:
        """Miss rate of one level (l1d / l1i / l2 / l3), if it was exercised."""
        hits = self.counter(f"{level}_hits")
        misses = self.counter(f"{level}_misses")
        total = hits + misses
        return 0.0 if total == 0 else misses / total

    # -- normalisation helpers ---------------------------------------------------

    def normalised_memory_energy(self, baseline: "SimulationResult") -> float:
        """Memory energy relative to the baseline's memory energy."""
        base = baseline.memory_energy()
        _require_positive(base, "baseline memory energy")
        return self.memory_energy() / base

    def normalised_system_energy(self, baseline: "SimulationResult") -> float:
        """System energy relative to the baseline's system energy."""
        base = baseline.system_energy()
        _require_positive(base, "baseline system energy")
        return self.system_energy() / base

    def normalised_execution_time(self, baseline: "SimulationResult") -> float:
        """Execution time relative to the baseline's execution time."""
        _require_positive(baseline.execution_cycles, "baseline execution time")
        return self.execution_cycles / baseline.execution_cycles

    def normalised_level_breakdown(
        self, baseline: "SimulationResult"
    ) -> Dict[str, float]:
        """Per-level memory energy relative to the baseline total (Fig. 6.1)."""
        base = baseline.memory_energy()
        _require_positive(base, "baseline memory energy")
        return {
            level: self.energy.by_level.get(level, 0.0) / base
            for level in MEMORY_LEVELS
        }

    def normalised_component_breakdown(
        self, baseline: "SimulationResult"
    ) -> Dict[str, float]:
        """Per-component memory energy relative to the baseline (Fig. 6.2)."""
        base = baseline.memory_energy()
        _require_positive(base, "baseline memory energy")
        return {
            component: self.energy.by_component.get(component, 0.0) / base
            for component in COMPONENTS
        }

    # -- serialisation ------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable summary (used by the experiment cache)."""
        return {
            "application": self.application,
            "label": self.label,
            "execution_cycles": self.execution_cycles,
            "busy_core_cycles": self.busy_core_cycles,
            "memory_energy_j": self.memory_energy(),
            "system_energy_j": self.system_energy(),
            "energy_by_level": dict(self.energy.by_level),
            "energy_by_component": dict(self.energy.by_component),
            "energy_system_parts": dict(self.energy.system),
            "counters": dict(self.counters),
            "per_core_finish_cycles": list(self.per_core_finish_cycles),
        }


def _require_positive(value: float, what: str) -> None:
    if value <= 0:
        raise ValueError(f"{what} must be positive for normalisation, got {value}")


def average_results(values: List[float]) -> float:
    """Arithmetic mean of normalised metrics over a set of applications.

    The paper presents per-class and all-application averages of normalised
    energies and times; an arithmetic mean over the normalised values is
    used here (the choice of mean does not change any qualitative ranking).
    """
    if not values:
        raise ValueError("cannot average an empty set of results")
    return sum(values) / len(values)
