"""Simulation results and normalisation against the SRAM baseline.

Every number the paper reports is normalised to the full-SRAM configuration
running the same application: memory-hierarchy energy (Figs. 6.1 and 6.2),
total system energy (Fig. 6.3) and execution time (Fig. 6.4).
:class:`SimulationResult` captures one run; the ``normalised_*`` helpers
produce the paper's metrics given the matching baseline result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config.parameters import SimulationConfig
from repro.energy.accounting import COMPONENTS, MEMORY_LEVELS, EnergyBreakdown


@dataclass
class SimulationResult:
    """Everything measured in one simulation run.

    Attributes:
        config: the configuration that was simulated (None for results
            restored from a JSON summary, which only keeps the label).
        application: name of the workload.
        execution_cycles: end-to-end execution time in cycles (the finish
            time of the slowest core).
        busy_core_cycles: total cycles the cores spent executing rather than
            stalled, summed over cores.
        counters: raw activity counters (hits, misses, refreshes, messages,
            DRAM accesses, ...).
        energy: the energy breakdown computed by the energy model.
        per_core_finish_cycles: finish time of each core.
        restored_label: configuration label carried by results restored via
            :meth:`from_dict`, which cannot rebuild the full config.
    """

    config: Optional[SimulationConfig]
    application: str
    execution_cycles: int
    busy_core_cycles: int
    counters: Dict[str, int]
    energy: EnergyBreakdown
    per_core_finish_cycles: List[int] = field(default_factory=list)
    restored_label: Optional[str] = None

    # -- raw views -------------------------------------------------------------

    @property
    def label(self) -> str:
        """Configuration label (``SRAM``, ``P.all``, ``R.WB(32,32)``, ...)."""
        if self.config is not None:
            return self.config.label
        if self.restored_label is not None:
            return self.restored_label
        raise ValueError("result carries neither a config nor a restored label")

    def memory_energy(self) -> float:
        """Total memory-hierarchy energy in joules."""
        return self.energy.memory_total()

    def system_energy(self) -> float:
        """Total system energy (memory + cores + network) in joules."""
        return self.energy.system_total()

    def counter(self, name: str) -> int:
        """A raw counter value (0 when never incremented)."""
        return self.counters.get(name, 0)

    def miss_rate(self, level: str) -> float:
        """Miss rate of one level (l1d / l1i / l2 / l3), if it was exercised."""
        hits = self.counter(f"{level}_hits")
        misses = self.counter(f"{level}_misses")
        total = hits + misses
        return 0.0 if total == 0 else misses / total

    # -- normalisation helpers ---------------------------------------------------

    def normalised_memory_energy(self, baseline: "SimulationResult") -> float:
        """Memory energy relative to the baseline's memory energy."""
        base = baseline.memory_energy()
        _require_positive(base, "baseline memory energy")
        return self.memory_energy() / base

    def normalised_system_energy(self, baseline: "SimulationResult") -> float:
        """System energy relative to the baseline's system energy."""
        base = baseline.system_energy()
        _require_positive(base, "baseline system energy")
        return self.system_energy() / base

    def normalised_execution_time(self, baseline: "SimulationResult") -> float:
        """Execution time relative to the baseline's execution time."""
        _require_positive(baseline.execution_cycles, "baseline execution time")
        return self.execution_cycles / baseline.execution_cycles

    def normalised_level_breakdown(
        self, baseline: "SimulationResult"
    ) -> Dict[str, float]:
        """Per-level memory energy relative to the baseline total (Fig. 6.1)."""
        base = baseline.memory_energy()
        _require_positive(base, "baseline memory energy")
        return {
            level: self.energy.by_level.get(level, 0.0) / base
            for level in MEMORY_LEVELS
        }

    def normalised_component_breakdown(
        self, baseline: "SimulationResult"
    ) -> Dict[str, float]:
        """Per-component memory energy relative to the baseline (Fig. 6.2)."""
        base = baseline.memory_energy()
        _require_positive(base, "baseline memory energy")
        return {
            component: self.energy.by_component.get(component, 0.0) / base
            for component in COMPONENTS
        }

    # -- serialisation ------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable summary (used by the experiment cache).

        Energies are coerced to float so a summary is byte-identical whether
        it came from a fresh run or a :meth:`from_dict` round-trip (an empty
        accounting sum is the int ``0``, which JSON renders as ``0`` rather
        than ``0.0``).
        """
        return {
            "application": self.application,
            "label": self.label,
            "execution_cycles": self.execution_cycles,
            "busy_core_cycles": self.busy_core_cycles,
            "memory_energy_j": float(self.memory_energy()),
            "system_energy_j": float(self.system_energy()),
            "energy_by_level": {k: float(v) for k, v in self.energy.by_level.items()},
            "energy_by_component": {
                k: float(v) for k, v in self.energy.by_component.items()
            },
            "energy_system_parts": {
                k: float(v) for k, v in self.energy.system.items()
            },
            "counters": dict(self.counters),
            "per_core_finish_cycles": list(self.per_core_finish_cycles),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationResult":
        """Rebuild a result from a :meth:`to_dict` summary.

        The full :class:`SimulationConfig` is not serialised, so the restored
        result has ``config=None`` and keeps the label via
        ``restored_label``; everything a figure or normalisation helper needs
        (energy breakdown, counters, cycle counts) round-trips exactly:
        ``SimulationResult.from_dict(r.to_dict()).to_dict() == r.to_dict()``.
        """
        energy = EnergyBreakdown(
            by_level={k: float(v) for k, v in dict(data["energy_by_level"]).items()},
            by_component={
                k: float(v) for k, v in dict(data["energy_by_component"]).items()
            },
            system={k: float(v) for k, v in dict(data["energy_system_parts"]).items()},
        )
        return cls(
            config=None,
            application=str(data["application"]),
            execution_cycles=int(data["execution_cycles"]),
            busy_core_cycles=int(data["busy_core_cycles"]),
            counters={k: int(v) for k, v in dict(data["counters"]).items()},
            energy=energy,
            per_core_finish_cycles=[int(v) for v in list(data["per_core_finish_cycles"])],
            restored_label=str(data["label"]),
        )


def _require_positive(value: float, what: str) -> None:
    if value <= 0:
        raise ValueError(f"{what} must be positive for normalisation, got {value}")


def average_results(values: List[float]) -> float:
    """Arithmetic mean of normalised metrics over a set of applications.

    The paper presents per-class and all-application averages of normalised
    energies and times; an arithmetic mean over the normalised values is
    used here (the choice of mean does not change any qualitative ranking).
    """
    if not values:
        raise ValueError("cannot average an empty set of results")
    return sum(values) / len(values)
