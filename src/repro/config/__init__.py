"""Configuration dataclasses and paper presets (Tables 5.1, 5.2, 5.4)."""

from repro.config.parameters import (
    ArchitectureConfig,
    CacheGeometry,
    CellTechnology,
    DataPolicyKind,
    DataPolicySpec,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.config.presets import (
    paper_architecture,
    paper_data_policies,
    paper_retention_times_cycles,
    scaled_architecture,
)

__all__ = [
    "ArchitectureConfig",
    "CacheGeometry",
    "CellTechnology",
    "DataPolicyKind",
    "DataPolicySpec",
    "RefreshConfig",
    "SimulationConfig",
    "TimingPolicyKind",
    "paper_architecture",
    "paper_data_policies",
    "paper_retention_times_cycles",
    "scaled_architecture",
]
