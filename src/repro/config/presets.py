"""Named configuration presets.

Two families of presets are provided:

* :func:`paper_architecture` -- the exact geometry of the paper's Table 5.1
  (32 KB L1s, 256 KB L2, 16 x 1 MB L3 banks, 64 B lines, 1 GHz, 40 ns DRAM).
  This is used by configuration and energy-table unit tests, and can be
  simulated directly when runtime is not a concern.
* :func:`scaled_architecture` -- a geometry scaled down so that pure-Python
  simulation of the full Table 5.4 sweep finishes in minutes.

Scaling rationale
-----------------

The results the paper reports are driven by ratios, not absolute sizes:

* the application footprint relative to the L3 capacity (Fig. 3.1),
* the refresh work per unit time, i.e. lines divided by the retention
  period (which sets the refresh-energy and cache-blocking pressure),
* the relative access latencies of L1 / L2 / L3 / DRAM.

The scaled preset therefore shrinks the *shared L3* and the *retention
period* by the same factor (:data:`L3_SCALE`), which keeps the refresh rate
in lines-per-cycle -- and hence refresh power -- identical to the full-size
system.  The L1 and L2 are shrunk less aggressively (:data:`L1_SCALE`,
:data:`L2_SCALE`) so that realistic hit rates remain possible with small
synthetic traces; because those levels always run the conservative Valid
policy and contribute only a few percent of refresh energy (Section 6.2),
the distortion this introduces (their refresh power is over-estimated by
roughly the ratio of the scales) is small and conservative -- it slightly
understates Refrint's advantage.  Workload footprints are expressed
relative to cache capacities, so they scale along automatically.
"""

from __future__ import annotations

from typing import Tuple

from repro.config.parameters import (
    ArchitectureConfig,
    CacheGeometry,
    DataPolicySpec,
)

#: Retention times evaluated by the paper (Table 5.4), in microseconds.
PAPER_RETENTION_TIMES_US: Tuple[float, ...] = (50.0, 100.0, 200.0)

#: Scale factor applied to the L1 caches in the scaled preset.
L1_SCALE: int = 8

#: Scale factor applied to the private L2 caches in the scaled preset.
L2_SCALE: int = 16

#: Scale factor applied to the shared L3 banks *and* the retention periods.
L3_SCALE: int = 32


def paper_architecture() -> ArchitectureConfig:
    """The architecture of Table 5.1, at full size."""
    return ArchitectureConfig(
        num_cores=16,
        frequency_hz=1.0e9,
        l1i=CacheGeometry(
            name="l1i", size_bytes=32 * 1024, associativity=2, line_bytes=64,
            access_cycles=1, write_back=False, num_refresh_groups=4,
            sentry_group_size=1,
        ),
        l1d=CacheGeometry(
            name="l1d", size_bytes=32 * 1024, associativity=4, line_bytes=64,
            access_cycles=1, write_back=False, num_refresh_groups=4,
            sentry_group_size=1,
        ),
        l2=CacheGeometry(
            name="l2", size_bytes=256 * 1024, associativity=8, line_bytes=64,
            access_cycles=2, write_back=True, num_refresh_groups=4,
            sentry_group_size=4,
        ),
        l3_bank=CacheGeometry(
            name="l3", size_bytes=1024 * 1024, associativity=8, line_bytes=64,
            access_cycles=4, write_back=True, num_refresh_groups=4,
            sentry_group_size=16,
        ),
        num_l3_banks=16,
        dram_access_cycles=40,
        mesh_width=4,
        mesh_height=4,
    )


def scaled_architecture() -> ArchitectureConfig:
    """A geometry scaled down for fast pure-Python simulation.

    The defaults yield 4 KB L1s, 16 KB L2s and 32 KB L3 banks (512 KB of
    aggregate shared L3); the synthetic workload footprints are expressed as
    ratios of these capacities, so the footprint-to-LLC ratio that defines
    the paper's application classes is unchanged.
    """
    line = 64
    return ArchitectureConfig(
        num_cores=16,
        frequency_hz=1.0e9,
        l1i=CacheGeometry(
            name="l1i", size_bytes=32 * 1024 // L1_SCALE, associativity=2,
            line_bytes=line, access_cycles=1, write_back=False,
            num_refresh_groups=4, sentry_group_size=1,
        ),
        l1d=CacheGeometry(
            name="l1d", size_bytes=32 * 1024 // L1_SCALE, associativity=4,
            line_bytes=line, access_cycles=1, write_back=False,
            num_refresh_groups=4, sentry_group_size=1,
        ),
        l2=CacheGeometry(
            name="l2", size_bytes=256 * 1024 // L2_SCALE, associativity=8,
            line_bytes=line, access_cycles=2, write_back=True,
            num_refresh_groups=4, sentry_group_size=4,
        ),
        l3_bank=CacheGeometry(
            name="l3", size_bytes=1024 * 1024 // L3_SCALE, associativity=8,
            line_bytes=line, access_cycles=4, write_back=True,
            num_refresh_groups=4, sentry_group_size=16,
        ),
        num_l3_banks=16,
        dram_access_cycles=40,
        mesh_width=4,
        mesh_height=4,
    )


def paper_retention_times_cycles(frequency_hz: float = 1.0e9) -> Tuple[int, ...]:
    """The paper's three retention periods converted to cycles."""
    return tuple(
        int(round(us * 1e-6 * frequency_hz)) for us in PAPER_RETENTION_TIMES_US
    )


def scaled_retention_cycles(retention_us: float) -> int:
    """A paper retention period scaled consistently with the L3 geometry.

    50 us at 1 GHz is 50 000 cycles; divided by :data:`L3_SCALE` it becomes
    1562 cycles.  Because the number of L3 lines shrinks by the same factor,
    the refresh work per cycle (lines / retention) matches the full-size
    system exactly.
    """
    full_cycles = retention_us * 1e-6 * 1.0e9
    return max(64, int(round(full_cycles / L3_SCALE)))


def paper_data_policies() -> Tuple[DataPolicySpec, ...]:
    """The seven data policies of Table 5.4."""
    return (
        DataPolicySpec.all_lines(),
        DataPolicySpec.valid(),
        DataPolicySpec.dirty(),
        DataPolicySpec.writeback(4, 4),
        DataPolicySpec.writeback(8, 8),
        DataPolicySpec.writeback(16, 16),
        DataPolicySpec.writeback(32, 32),
    )
