"""Configuration dataclasses for the Refrint simulator.

The classes here encode the architectural parameters of the paper's Table 5.1
(16-core CMP, three-level cache hierarchy, 4x4 torus, directory MESI at L3),
the cell-technology ratios of Table 5.2 (SRAM baseline vs eDRAM proposal) and
the refresh-policy space of Tables 3.1 / 5.4.

Everything that the simulator, the refresh controllers and the energy model
need is derived from a single :class:`SimulationConfig` so that a sweep point
is fully described by one picklable object.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.utils.addr import is_power_of_two

#: Batch-replay kernel modes for run-ahead replay (see :mod:`repro.kernels`).
#: "off" keeps the scalar per-reference loop; "numpy" retires whole
#: kernel-eligible stretches through columnar ufunc chains; "numba" runs the
#: same scan as one fused loop, ``numba.njit``-compiled when numba is
#: installed and as plain Python when it is not.  All three are
#: byte-identical; selection is a performance choice, never a modelling one.
KERNEL_MODES = ("off", "numpy", "numba")


class CellTechnology(enum.Enum):
    """Memory cell technology of a cache level."""

    SRAM = "sram"
    EDRAM = "edram"


class TimingPolicyKind(enum.Enum):
    """When to refresh (Table 3.1, time-based component)."""

    PERIODIC = "periodic"
    REFRINT = "refrint"

    @property
    def short_name(self) -> str:
        """Single-letter prefix used in the paper's figure labels (P / R)."""
        return "P" if self is TimingPolicyKind.PERIODIC else "R"


class DataPolicyKind(enum.Enum):
    """What to refresh (Table 3.1, data-based component)."""

    ALL = "all"
    VALID = "valid"
    DIRTY = "dirty"
    WRITEBACK = "wb"


@dataclass(frozen=True)
class DataPolicySpec:
    """A concrete data policy, e.g. Valid or WB(32, 32).

    ``dirty_refreshes`` (n) and ``clean_refreshes`` (m) are only meaningful
    for the WRITEBACK kind: a dirty line is refreshed n times before being
    written back and becoming valid-clean; a valid-clean line is refreshed m
    times before being invalidated.  ``Dirty`` is equivalent to WB(inf, 0)
    and ``Valid`` to WB(inf, inf), as noted in Section 3.2.
    """

    kind: DataPolicyKind
    dirty_refreshes: Optional[int] = None
    clean_refreshes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is DataPolicyKind.WRITEBACK:
            if self.dirty_refreshes is None or self.clean_refreshes is None:
                raise ValueError("WB policy requires both (n, m) refresh counts")
            if self.dirty_refreshes < 0 or self.clean_refreshes < 0:
                raise ValueError("WB refresh counts must be non-negative")
        else:
            if self.dirty_refreshes is not None or self.clean_refreshes is not None:
                raise ValueError(
                    f"{self.kind.value} policy does not take (n, m) parameters"
                )

    @property
    def label(self) -> str:
        """Label matching the paper's figure axes, e.g. ``WB(32,32)``."""
        if self.kind is DataPolicyKind.WRITEBACK:
            return f"WB({self.dirty_refreshes},{self.clean_refreshes})"
        return self.kind.value

    @staticmethod
    def all_lines() -> "DataPolicySpec":
        """Refresh every line, valid or not (reference policy)."""
        return DataPolicySpec(DataPolicyKind.ALL)

    @staticmethod
    def valid() -> "DataPolicySpec":
        """Refresh valid lines only."""
        return DataPolicySpec(DataPolicyKind.VALID)

    @staticmethod
    def dirty() -> "DataPolicySpec":
        """Refresh dirty lines only; valid-clean lines are invalidated."""
        return DataPolicySpec(DataPolicyKind.DIRTY)

    @staticmethod
    def writeback(n: int, m: int) -> "DataPolicySpec":
        """WB(n, m): n refreshes for dirty lines, m for valid-clean lines."""
        return DataPolicySpec(DataPolicyKind.WRITEBACK, n, m)


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache (per bank for the banked L3)."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int
    access_cycles: int
    write_back: bool = True
    num_refresh_groups: int = 4
    sentry_group_size: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} is not a multiple of "
                f"associativity*line ({self.associativity}*{self.line_bytes})"
            )
        if not is_power_of_two(self.line_bytes):
            raise ValueError(f"{self.name}: line size must be a power of two")
        if not is_power_of_two(self.num_sets):
            raise ValueError(f"{self.name}: number of sets must be a power of two")
        if self.num_refresh_groups < 1:
            raise ValueError(f"{self.name}: need at least one refresh group")
        if self.sentry_group_size < 1:
            raise ValueError(f"{self.name}: sentry group size must be >= 1")

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.associativity * self.line_bytes)

    @property
    def num_lines(self) -> int:
        """Total number of lines in the cache."""
        return self.num_sets * self.associativity

    @property
    def lines_per_refresh_group(self) -> int:
        """Lines refreshed together by one periodic refresh event."""
        return max(1, self.num_lines // self.num_refresh_groups)


@dataclass(frozen=True)
class RefreshConfig:
    """Refresh behaviour of the eDRAM hierarchy for one sweep point.

    Attributes:
        retention_cycles: eDRAM cell retention period in core cycles.  The
            paper uses 50/100/200 us at 1 GHz (50 000 / 100 000 / 200 000
            cycles); the scaled preset shrinks these together with the caches.
        sentry_margin_cycles: how much earlier than the line the Sentry bit
            decays.  The paper derives 16 us for a 16K-line bank (one cycle
            of margin per line that could fire simultaneously); we mirror
            that rule via :meth:`derive_sentry_margin`.
        timing_policy: Periodic or Refrint.
        l3_data_policy: the data policy applied at the L3 (the level the
            paper's intelligent refresh targets).
        l1_data_policy / l2_data_policy: the paper always runs L1/L2 at
            Valid; kept configurable for ablations.
        refresh_cycles_per_line: time to refresh one line (paper: one access
            time, pipelined to one line per cycle within a group).
    """

    retention_cycles: int
    sentry_margin_cycles: int
    timing_policy: TimingPolicyKind
    l3_data_policy: DataPolicySpec
    l1_data_policy: DataPolicySpec = field(default_factory=DataPolicySpec.valid)
    l2_data_policy: DataPolicySpec = field(default_factory=DataPolicySpec.valid)
    refresh_cycles_per_line: int = 1

    def __post_init__(self) -> None:
        if self.retention_cycles <= 0:
            raise ValueError("retention_cycles must be positive")
        if not 0 <= self.sentry_margin_cycles < self.retention_cycles:
            raise ValueError(
                "sentry margin must be non-negative and smaller than retention"
            )
        if self.refresh_cycles_per_line <= 0:
            raise ValueError("refresh_cycles_per_line must be positive")

    @property
    def sentry_retention_cycles(self) -> int:
        """Retention period of the Sentry bit (shorter than the line's)."""
        return self.retention_cycles - self.sentry_margin_cycles

    @staticmethod
    def derive_sentry_margin(num_lines_per_bank: int, retention_cycles: int) -> int:
        """Conservative Sentry-bit margin: one cycle per line in the bank.

        Section 4.1 sizes the margin so that even if every Sentry bit in a
        bank fired in the same cycle, each line could still be refreshed
        before it expires (one line per cycle through the pipelined
        controller).  The margin is capped below the retention period so the
        sentry retention stays positive.
        """
        return min(num_lines_per_bank, max(0, retention_cycles - 1))

    def data_policy_for_level(self, level: str) -> DataPolicySpec:
        """Return the data policy for ``level`` ("l1", "l2" or "l3")."""
        policies = {
            "l1": self.l1_data_policy,
            "l2": self.l2_data_policy,
            "l3": self.l3_data_policy,
        }
        if level not in policies:
            raise ValueError(f"unknown cache level {level!r}")
        return policies[level]

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``R.WB(32,32)`` or ``P.valid``."""
        return f"{self.timing_policy.short_name}.{self.l3_data_policy.label}"


@dataclass(frozen=True)
class ArchitectureConfig:
    """Static architecture parameters (Table 5.1)."""

    num_cores: int = 16
    frequency_hz: float = 1.0e9
    l1i: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            name="l1i", size_bytes=32 * 1024, associativity=2, line_bytes=64,
            access_cycles=1, write_back=False, num_refresh_groups=4,
            sentry_group_size=1,
        )
    )
    l1d: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            name="l1d", size_bytes=32 * 1024, associativity=4, line_bytes=64,
            access_cycles=1, write_back=False, num_refresh_groups=4,
            sentry_group_size=1,
        )
    )
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            name="l2", size_bytes=256 * 1024, associativity=8, line_bytes=64,
            access_cycles=2, write_back=True, num_refresh_groups=4,
            sentry_group_size=4,
        )
    )
    l3_bank: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            name="l3", size_bytes=1024 * 1024, associativity=8, line_bytes=64,
            access_cycles=4, write_back=True, num_refresh_groups=4,
            sentry_group_size=16,
        )
    )
    num_l3_banks: int = 16
    dram_access_cycles: int = 40
    mesh_width: int = 4
    mesh_height: int = 4
    router_hop_cycles: int = 1
    link_hop_cycles: int = 1

    def __post_init__(self) -> None:
        if self.num_cores != self.mesh_width * self.mesh_height:
            raise ValueError(
                "num_cores must equal mesh_width * mesh_height for the torus"
            )
        if self.num_l3_banks != self.num_cores:
            raise ValueError("the paper attaches one L3 bank to each torus vertex")
        line_sizes = {
            self.l1i.line_bytes, self.l1d.line_bytes,
            self.l2.line_bytes, self.l3_bank.line_bytes,
        }
        if len(line_sizes) != 1:
            raise ValueError("all cache levels must share one line size")

    @property
    def line_bytes(self) -> int:
        """Cache line size shared by every level (64 B in the paper)."""
        return self.l3_bank.line_bytes

    @property
    def l3_total_bytes(self) -> int:
        """Aggregate shared L3 capacity across all banks."""
        return self.l3_bank.size_bytes * self.num_l3_banks

    def cycles_from_seconds(self, seconds: float) -> int:
        """Convert wall-clock seconds to core cycles at the chip frequency."""
        return int(round(seconds * self.frequency_hz))

    def seconds_from_cycles(self, cycles: int) -> float:
        """Convert core cycles to wall-clock seconds at the chip frequency."""
        return cycles / self.frequency_hz


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to run one simulation point.

    A point is: an architecture, a cell technology for the on-chip hierarchy
    (full SRAM baseline or full eDRAM), and -- when the hierarchy is eDRAM --
    a refresh configuration.  Workloads are supplied separately.
    """

    architecture: ArchitectureConfig = field(default_factory=ArchitectureConfig)
    technology: CellTechnology = CellTechnology.EDRAM
    refresh: Optional[RefreshConfig] = None
    flush_dirty_at_end: bool = True
    random_seed: int = 2013

    def __post_init__(self) -> None:
        if self.technology is CellTechnology.EDRAM and self.refresh is None:
            raise ValueError("an eDRAM configuration requires a RefreshConfig")
        if self.technology is CellTechnology.SRAM and self.refresh is not None:
            raise ValueError("an SRAM configuration must not carry a RefreshConfig")

    @property
    def is_edram(self) -> bool:
        """True when the on-chip hierarchy is built from eDRAM cells."""
        return self.technology is CellTechnology.EDRAM

    @property
    def label(self) -> str:
        """Human-readable label for tables and figures."""
        if not self.is_edram:
            return "SRAM"
        assert self.refresh is not None
        return self.refresh.label

    def with_refresh(self, refresh: RefreshConfig) -> "SimulationConfig":
        """Return a copy of this configuration with a different refresh point."""
        return replace(self, technology=CellTechnology.EDRAM, refresh=refresh)

    def as_sram_baseline(self) -> "SimulationConfig":
        """Return the full-SRAM baseline sharing this architecture."""
        return replace(self, technology=CellTechnology.SRAM, refresh=None)

    @staticmethod
    def sram(architecture: Optional[ArchitectureConfig] = None) -> "SimulationConfig":
        """Full-SRAM baseline configuration."""
        return SimulationConfig(
            architecture=architecture or ArchitectureConfig(),
            technology=CellTechnology.SRAM,
            refresh=None,
        )

    @staticmethod
    def edram(
        refresh: RefreshConfig,
        architecture: Optional[ArchitectureConfig] = None,
    ) -> "SimulationConfig":
        """Full-eDRAM configuration with the given refresh point."""
        return SimulationConfig(
            architecture=architecture or ArchitectureConfig(),
            technology=CellTechnology.EDRAM,
            refresh=refresh,
        )

    @staticmethod
    def scaled(
        retention_us: float = 50.0,
        timing_policy: TimingPolicyKind = TimingPolicyKind.REFRINT,
        data_policy: Optional[DataPolicySpec] = None,
    ) -> "SimulationConfig":
        """A laptop-scale eDRAM configuration (see config.presets)."""
        from repro.config import presets

        architecture = presets.scaled_architecture()
        retention_cycles = presets.scaled_retention_cycles(retention_us)
        refresh = RefreshConfig(
            retention_cycles=retention_cycles,
            sentry_margin_cycles=RefreshConfig.derive_sentry_margin(
                architecture.l3_bank.num_lines, retention_cycles
            ),
            timing_policy=timing_policy,
            l3_data_policy=data_policy or DataPolicySpec.writeback(32, 32),
        )
        return SimulationConfig.edram(refresh, architecture)


def policy_grid(
    retention_cycles_options: Tuple[int, ...],
    timing_policies: Tuple[TimingPolicyKind, ...],
    data_policies: Tuple[DataPolicySpec, ...],
    architecture: ArchitectureConfig,
) -> Dict[str, SimulationConfig]:
    """Build the full cartesian sweep of Table 5.4 for one architecture.

    Returns a mapping from a unique key ``"{retention}|{label}"`` to the
    corresponding eDRAM :class:`SimulationConfig`.
    """
    grid: Dict[str, SimulationConfig] = {}
    for retention in retention_cycles_options:
        margin = RefreshConfig.derive_sentry_margin(
            architecture.l3_bank.num_lines, retention
        )
        for timing in timing_policies:
            for data in data_policies:
                refresh = RefreshConfig(
                    retention_cycles=retention,
                    sentry_margin_cycles=margin,
                    timing_policy=timing,
                    l3_data_policy=data,
                )
                key = f"{retention}|{refresh.label}"
                grid[key] = SimulationConfig.edram(refresh, architecture)
    return grid
