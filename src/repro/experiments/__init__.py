"""Regeneration of every table and figure in the paper's evaluation."""

from repro.experiments.figures import (
    FigureSeries,
    figure_6_1,
    figure_6_2,
    figure_6_3,
    figure_6_4,
    render_figure,
)
from repro.experiments.runner import ExperimentRunner, headline_summary
from repro.experiments.tables import (
    application_binning_table,
    applications_table,
    architecture_table,
    cell_comparison_table,
    policy_taxonomy_table,
    render_table,
    sweep_table,
)

__all__ = [
    "ExperimentRunner",
    "FigureSeries",
    "application_binning_table",
    "applications_table",
    "architecture_table",
    "cell_comparison_table",
    "figure_6_1",
    "figure_6_2",
    "figure_6_3",
    "figure_6_4",
    "headline_summary",
    "policy_taxonomy_table",
    "render_figure",
    "render_table",
    "sweep_table",
]
