"""Regeneration of the paper's descriptive tables.

These tables do not require simulation -- they document the policy space,
the evaluated architecture, the cell-technology assumptions, the application
suite and the parameter sweep -- but regenerating them from the library's
own data structures guarantees the implementation and the documentation
cannot drift apart, and gives the benchmarks something cheap to assert on.

Each function returns a :class:`Table` (a header plus rows of strings);
:func:`render_table` turns one into aligned plain text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.config.parameters import ArchitectureConfig
from repro.config.presets import (
    PAPER_RETENTION_TIMES_US,
    paper_architecture,
    paper_data_policies,
)
from repro.core.classes import APPLICATION_CLASSES
from repro.energy.tables import EDRAM_LEAKAGE_RATIO
from repro.workloads.suite import application_specs


@dataclass(frozen=True)
class Table:
    """A titled grid of strings."""

    title: str
    header: Sequence[str]
    rows: Sequence[Sequence[str]]

    def column_count(self) -> int:
        """Number of columns (from the header)."""
        return len(self.header)


def render_table(table: Table) -> str:
    """Render a table as aligned plain text."""
    widths = [len(str(cell)) for cell in table.header]
    for row in table.rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [table.title, "=" * len(table.title), format_row(table.header)]
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in table.rows)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 3.1 -- refresh policies proposed
# ---------------------------------------------------------------------------

def policy_taxonomy_table() -> Table:
    """Table 3.1: the time-based and data-based policy taxonomy."""
    rows = [
        ("Periodic", "time", "Refresh periodically (a group of lines at a time)"),
        ("Refrint", "time", "Refresh on Sentry bit decay (a group of lines at a time)"),
        ("All", "data", "All lines are refreshed"),
        ("Valid", "data", "Only Valid lines are refreshed"),
        ("Dirty", "data", "Only Dirty lines are refreshed"),
        (
            "WB(n,m)", "data",
            "Dirty lines refreshed n times before write-back; "
            "Valid lines refreshed m times before invalidation",
        ),
    ]
    return Table(
        title="Table 3.1: Refresh policies proposed",
        header=("Policy", "Kind", "Meaning"),
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table 5.1 -- evaluation architecture
# ---------------------------------------------------------------------------

def architecture_table(architecture: ArchitectureConfig | None = None) -> Table:
    """Table 5.1: architectural parameters of the evaluated CMP."""
    arch = architecture if architecture is not None else paper_architecture()
    rows = [
        ("Chip", f"{arch.num_cores} core CMP"),
        ("Frequency", f"{arch.frequency_hz / 1e6:.0f} MHz"),
        (
            "Instruction L1",
            f"{arch.l1i.size_bytes // 1024} KB, {arch.l1i.associativity} way, "
            f"{arch.l1i.access_cycles} cycle",
        ),
        (
            "Data L1",
            f"{arch.l1d.size_bytes // 1024} KB, {arch.l1d.associativity} way, WT, "
            f"{arch.l1d.access_cycles} cycle",
        ),
        (
            "L2",
            f"{arch.l2.size_bytes // 1024} KB, {arch.l2.associativity} way, WB, "
            f"private, {arch.l2.access_cycles} cycles",
        ),
        (
            "L3",
            f"{arch.l3_bank.size_bytes // 1024} KB per bank, {arch.num_l3_banks} banks, "
            f"{arch.l3_bank.associativity} way, WB, shared, "
            f"{arch.l3_bank.access_cycles} cycles",
        ),
        ("Line size", f"{arch.line_bytes} Bytes"),
        ("DRAM", f"{arch.dram_access_cycles} cycles"),
        ("Network", f"{arch.mesh_width} x {arch.mesh_height} torus"),
        ("Coherence", "Directory MESI protocol at L3"),
    ]
    return Table(
        title="Table 5.1: Evaluation architecture",
        header=("Parameter", "Value"),
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table 5.2 -- baseline vs proposed cell technology
# ---------------------------------------------------------------------------

def cell_comparison_table() -> Table:
    """Table 5.2: SRAM baseline vs eDRAM proposal cell ratios."""
    rows = [
        ("Cell", "SRAM", "eDRAM"),
        ("Access time (ratio)", "1", "1"),
        ("Access energy (ratio)", "1", "1"),
        ("Leakage power (ratio)", "1", f"{EDRAM_LEAKAGE_RATIO:g}"),
        ("Refresh time", "n/a", "access time"),
        ("Refresh energy", "n/a", "access energy"),
    ]
    return Table(
        title="Table 5.2: Baseline and proposed architecture",
        header=("Property", "Baseline", "Proposed"),
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table 5.3 -- applications
# ---------------------------------------------------------------------------

def applications_table() -> Table:
    """Table 5.3: the evaluated applications and their problem sizes."""
    rows = [
        (spec.suite, spec.name, spec.problem_size)
        for spec in application_specs().values()
    ]
    return Table(
        title="Table 5.3: Applications",
        header=("Suite", "Application", "Problem size"),
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table 5.4 -- parameter sweep
# ---------------------------------------------------------------------------

def sweep_table() -> Table:
    """Table 5.4: the retention / timing / data policy sweep."""
    retention = ", ".join(f"{value:g} us" for value in PAPER_RETENTION_TIMES_US)
    data_policies = ", ".join(spec.label for spec in paper_data_policies())
    num_combinations = (
        len(PAPER_RETENTION_TIMES_US) * 2 * len(paper_data_policies())
    )
    rows = [
        ("Retention time", retention, str(len(PAPER_RETENTION_TIMES_US))),
        ("Timing policy", "Periodic, Refrint", "2"),
        ("Data policy", data_policies, str(len(paper_data_policies()))),
        ("Total combinations", "", str(num_combinations)),
    ]
    return Table(
        title="Table 5.4: Parameter sweep of policies",
        header=("Dimension", "Values", "Count"),
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table 6.1 -- application binning
# ---------------------------------------------------------------------------

def application_binning_table() -> Table:
    """Table 6.1: the class each application is binned into."""
    rows = [
        (f"Class {app_class}", ", ".join(members))
        for app_class, members in sorted(APPLICATION_CLASSES.items())
    ]
    return Table(
        title="Table 6.1: Application binning",
        header=("Category", "Applications"),
        rows=rows,
    )
