"""Experiment orchestration: run (or reload) the sweep and summarise it.

Regenerating every figure of Chapter 6 requires the same underlying sweep
(Table 5.4), so :class:`ExperimentRunner` runs it once, optionally caches
the summary to a JSON file, and hands the in-memory
:class:`~repro.core.sweep.SweepResult` to all figure functions.

The size of the experiment (which applications, how long the traces are,
which retention times and policies) is controlled by an
:class:`ExperimentScale`; the defaults are sized so the whole sweep runs in
a few minutes of pure Python, and environment variables allow the benchmark
harness to scale it up to the full 11-application grid
(``REFRINT_APPS=all REFRINT_LENGTH_SCALE=1.0 pytest benchmarks/ ...``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.campaign.engine import make_executor, run_campaign, stream_campaign
from repro.campaign.jobs import canonical_value
from repro.campaign.view import StoreSweep
from repro.config.parameters import ArchitectureConfig, TimingPolicyKind
from repro.config.presets import paper_data_policies, scaled_architecture
from repro.core.classes import APPLICATION_CLASSES
from repro.core.sweep import (
    DEFAULT_RETENTION_TIMES_US,
    PolicyPoint,
    SweepResult,
    default_policy_points,
)
from repro.workloads.suite import APPLICATION_NAMES, WorkloadRequest

#: One representative application per class, used by the quick default scale.
REPRESENTATIVE_APPLICATIONS: Sequence[str] = ("fft", "barnes", "blackscholes")


@dataclass(frozen=True)
class ExperimentScale:
    """How big an experiment to run.

    Attributes:
        applications: application names to simulate.
        length_scale: trace-length multiplier passed to the workload suite.
        retention_times_us: retention times of the sweep.
        timing_policies: timing policies of the sweep.
        include_all_data_policies: when False, only Valid and WB(32, 32) are
            swept (enough for the headline numbers); when True the full
            seven data policies of Table 5.4 are used.
    """

    applications: Sequence[str] = REPRESENTATIVE_APPLICATIONS
    length_scale: float = 0.5
    retention_times_us: Sequence[float] = DEFAULT_RETENTION_TIMES_US
    timing_policies: Sequence[TimingPolicyKind] = (
        TimingPolicyKind.PERIODIC,
        TimingPolicyKind.REFRINT,
    )
    include_all_data_policies: bool = True

    @staticmethod
    def quick() -> "ExperimentScale":
        """A minutes-scale experiment: 3 representative apps, short traces."""
        return ExperimentScale()

    @staticmethod
    def full() -> "ExperimentScale":
        """The full Table 5.4 grid over all eleven applications."""
        return ExperimentScale(applications=APPLICATION_NAMES, length_scale=1.0)

    @staticmethod
    def from_environment() -> "ExperimentScale":
        """Build a scale from ``REFRINT_*`` environment variables.

        ``REFRINT_APPS`` is either ``all`` or a comma-separated list of
        application names; ``REFRINT_LENGTH_SCALE`` is a float;
        ``REFRINT_RETENTIONS`` is a comma-separated list of microsecond
        values.  Unset variables fall back to the quick defaults.
        """
        scale = ExperimentScale.quick()
        apps_env = os.environ.get("REFRINT_APPS")
        applications = scale.applications
        if apps_env:
            applications = (
                APPLICATION_NAMES if apps_env.strip().lower() == "all"
                else tuple(name.strip() for name in apps_env.split(",") if name.strip())
            )
        length = float(os.environ.get("REFRINT_LENGTH_SCALE", scale.length_scale))
        retentions_env = os.environ.get("REFRINT_RETENTIONS")
        retentions = scale.retention_times_us
        if retentions_env:
            retentions = tuple(
                float(value) for value in retentions_env.split(",") if value.strip()
            )
        return ExperimentScale(
            applications=applications,
            length_scale=length,
            retention_times_us=retentions,
        )

    def policy_points(self) -> List[PolicyPoint]:
        """The sweep points implied by this scale."""
        data_policies = None
        if not self.include_all_data_policies:
            policies = paper_data_policies()
            data_policies = (policies[1], policies[-1])  # Valid and WB(32,32)
        return default_policy_points(
            retention_times_us=self.retention_times_us,
            timing_policies=self.timing_policies,
            data_policies=data_policies,
        )


class ExperimentRunner:
    """Run (or reload) the sweep needed by the Chapter 6 figures.

    When ``cache_path`` points at a JSON summary saved by a previous run
    whose recorded scale matches the requested one, the sweep is reloaded
    from disk instead of re-simulated; otherwise it is executed through the
    campaign engine (``jobs`` worker processes, optionally persisting and
    resuming per-point results via ``store``/``resume``, with
    ``store_backend`` selecting the on-disk layout).

    With ``streaming=True`` (requires ``store``) the campaign is driven as
    a stream -- each result is committed to the store the moment it
    completes and dropped from memory -- and :meth:`sweep` returns a
    :class:`~repro.campaign.view.StoreSweep` that the figure/table layer
    aggregates directly from the store.  No whole-sweep summary is built or
    cached, so memory stays bounded at 100k+ grid points.
    """

    def __init__(
        self,
        scale: Optional[ExperimentScale] = None,
        architecture: Optional[ArchitectureConfig] = None,
        cache_path: Optional[Path] = None,
        jobs: int = 1,
        store: Optional[Path] = None,
        resume: bool = False,
        store_backend: str = "auto",
        streaming: bool = False,
    ) -> None:
        self.scale = scale if scale is not None else ExperimentScale.quick()
        self.architecture = (
            architecture if architecture is not None else scaled_architecture()
        )
        self.cache_path = cache_path
        self.jobs = jobs
        # Kept as a path: the store directory is only created if the sweep
        # actually executes (not when it is reloaded from cache).
        self.store = store
        self.resume = resume
        self.store_backend = store_backend
        if streaming and store is None:
            raise ValueError(
                "streaming aggregation needs a result store to aggregate from; "
                "pass store= (the segment backend is the right fit at scale)"
            )
        self.streaming = streaming
        self.reloaded_from_cache = False
        self._sweep: Optional[SweepResult] = None

    def workload_requests(self) -> List[WorkloadRequest]:
        """The seeded workload recipes implied by this experiment's scale."""
        return [
            WorkloadRequest(name, length_scale=self.scale.length_scale)
            for name in self.scale.applications
        ]

    def sweep(self, progress=None) -> SweepResult:
        """Run (or reload) the sweep for this experiment."""
        if self._sweep is None:
            if self.streaming:
                self._sweep = self._stream_sweep(progress)
                return self._sweep
            reloaded = self._reload_summary()
            if reloaded is not None:
                self.reloaded_from_cache = True
                self._sweep = reloaded
                return self._sweep
            self._sweep, _ = run_campaign(
                self.workload_requests(),
                points=self.scale.policy_points(),
                architecture=self.architecture,
                executor=make_executor(self.jobs),
                store=self.store,
                resume=self.resume,
                progress=progress,
                store_backend=self.store_backend,
            )
            if self.cache_path is not None:
                self.save_summary(self.cache_path)
        return self._sweep

    def _stream_sweep(self, progress=None) -> StoreSweep:
        """Drive the campaign as a stream; aggregate straight from the store.

        Results flow executor -> store commit -> discarded; the returned
        :class:`StoreSweep` reloads whichever results a figure touches, a
        few at a time.  ``cache_path`` is ignored -- the store *is* the
        persistent artefact, and a whole-sweep summary is exactly what this
        mode exists to avoid.
        """
        points = self.scale.policy_points()
        stream = stream_campaign(
            self.workload_requests(),
            points=points,
            architecture=self.architecture,
            executor=make_executor(self.jobs),
            store=self.store,
            resume=self.resume,
            progress=progress,
            store_backend=self.store_backend,
        )
        for _job, _result in stream:
            pass  # commit side effects only; nothing retained
        return StoreSweep(stream.store, stream.jobs, points)

    def _scale_meta(self) -> Dict[str, object]:
        """The experiment fingerprint stored alongside a cached summary.

        Covers everything that determines the sweep's numbers: the scale
        (applications, trace length, grid) and the chip geometry, so a
        summary cached under one architecture is never reloaded by a
        runner configured with another.
        """
        return {
            "applications": list(self.scale.applications),
            "length_scale": self.scale.length_scale,
            "point_labels": [point.label for point in self.scale.policy_points()],
            "architecture": canonical_value(self.architecture),
        }

    def _reload_summary(self) -> Optional[SweepResult]:
        """Load the cached summary when it matches the requested scale."""
        if self.cache_path is None or not Path(self.cache_path).exists():
            return None
        try:
            with Path(self.cache_path).open("r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict):
            return None
        # Summaries without a scale fingerprint (or with a different one)
        # cannot be trusted to describe this experiment; re-run instead.
        if data.get("meta") != self._scale_meta():
            return None
        try:
            return SweepResult.from_dict(data)
        except (KeyError, TypeError, ValueError):
            return None

    def save_summary(self, path: Path) -> None:
        """Write a JSON summary of the sweep (for EXPERIMENTS.md and reuse)."""
        if self._sweep is None:
            raise RuntimeError("run the sweep before saving a summary")
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = dict(self._sweep.to_dict())
        payload["meta"] = self._scale_meta()
        with path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)

    # -- headline numbers --------------------------------------------------------

    def class_applications(self, app_class: int) -> List[str]:
        """The simulated applications belonging to one class."""
        simulated = set(self.scale.applications)
        return [name for name in APPLICATION_CLASSES[app_class] if name in simulated]


def point_averages(
    sweep: SweepResult,
    point: PolicyPoint,
    applications: Optional[List[str]] = None,
) -> Dict[str, float]:
    """All-application averages of the normalised metrics at one sweep point.

    The grid-cell aggregation every consumer of a sweep shares: the
    headline summary below, the report tables, and the query service's
    per-point ``aggregates`` (:mod:`repro.api.answer`).  Works on any
    ``SweepResult``, including the store-backed
    :class:`~repro.campaign.view.StoreSweep`.
    """
    memory = sweep.normalised_memory_energy(point, applications)
    system = sweep.normalised_system_energy(point, applications)
    time = sweep.normalised_execution_time(point, applications)
    count = len(memory)
    if count == 0:
        raise ValueError(f"no applications to average at {point.label}")
    return {
        "memory": sum(memory.values()) / count,
        "system": sum(system.values()) / count,
        "time": sum(time.values()) / count,
    }


def headline_summary(
    sweep: SweepResult, retention_us: float = 50.0
) -> Dict[str, float]:
    """The paper's headline comparison at one retention time.

    Returns the all-application averages of normalised memory energy, system
    energy and execution time for the naive eDRAM baseline (Periodic-All)
    and for Refrint WB(32, 32) -- the numbers quoted in the abstract
    (50 % / 72 % / 1.18x versus 36 % / 61 % / 1.02x at 50 us).
    """
    periodic_all = None
    refrint_wb = None
    for point in sweep.points_for_retention(retention_us):
        if point.policy_label == "P.all":
            periodic_all = point
        if point.policy_label == "R.WB(32,32)":
            refrint_wb = point
    if periodic_all is None or refrint_wb is None:
        raise ValueError(
            "the sweep does not contain the Periodic-All and Refrint-WB(32,32) "
            f"points at {retention_us:g} us"
        )

    naive = point_averages(sweep, periodic_all)
    refrint = point_averages(sweep, refrint_wb)
    return {
        "periodic_all_memory": naive["memory"],
        "periodic_all_system": naive["system"],
        "periodic_all_time": naive["time"],
        "refrint_wb32_memory": refrint["memory"],
        "refrint_wb32_system": refrint["system"],
        "refrint_wb32_time": refrint["time"],
    }
