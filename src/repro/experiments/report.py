"""Markdown report generation for a completed sweep.

:func:`sweep_report` turns a :class:`~repro.core.sweep.SweepResult` into a
self-contained Markdown document: the headline comparison, every figure of
Chapter 6 rendered as a table (for the whole suite and per class), and the
per-application raw metrics.  The CLI (:mod:`repro.cli`) writes this report
to disk so a sweep can be archived and diffed between runs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.classes import APPLICATION_CLASSES
from repro.core.sweep import SweepResult
from repro.experiments.figures import (
    FigureData,
    figure_6_1,
    figure_6_2,
    figure_6_3,
    figure_6_4,
)
from repro.experiments.runner import headline_summary
from repro.validate.report import render_markdown, validate_sweep


def _figure_as_markdown(figure: FigureData, precision: int = 3) -> str:
    """Render a figure as a Markdown table."""
    headers = ["configuration"] + [series.name for series in figure.series] + ["total"]
    lines = [f"### {figure.title}", ""]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    totals = figure.totals()
    for index, label in enumerate(figure.bar_labels):
        cells = [label]
        cells.extend(
            f"{series.values[index]:.{precision}f}" for series in figure.series
        )
        cells.append(f"{totals[index]:.{precision}f}")
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)


def _headline_section(sweep: SweepResult) -> str:
    """The abstract-style headline comparison, when the sweep contains it."""
    retentions = sweep.retention_times()
    if not retentions:
        return ""
    try:
        summary = headline_summary(sweep, retention_us=retentions[0])
    except ValueError:
        return ""
    lines = [
        f"## Headline comparison at {retentions[0]:g} us",
        "",
        "| configuration | memory energy | system energy | execution time |",
        "|---|---|---|---|",
        (
            "| eDRAM Periodic-All (naive) | "
            f"{summary['periodic_all_memory']:.3f} | "
            f"{summary['periodic_all_system']:.3f} | "
            f"{summary['periodic_all_time']:.3f} |"
        ),
        (
            "| eDRAM Refrint WB(32,32) | "
            f"{summary['refrint_wb32_memory']:.3f} | "
            f"{summary['refrint_wb32_system']:.3f} | "
            f"{summary['refrint_wb32_time']:.3f} |"
        ),
        "",
        "(paper: 0.50 / 0.72 / 1.18 for Periodic-All and 0.36 / 0.61 / 1.02 "
        "for Refrint WB(32,32) at 50 us)",
        "",
    ]
    return "\n".join(lines)


def _class_selections(sweep: SweepResult) -> List[Optional[Iterable[str]]]:
    """The application selections to report: all, then each populated class."""
    selections: List[Optional[Iterable[str]]] = [None]
    for app_class in sorted(APPLICATION_CLASSES):
        members = [
            name for name in APPLICATION_CLASSES[app_class] if name in sweep.baselines
        ]
        if members:
            selections.append(members)
    return selections


def _per_application_section(sweep: SweepResult) -> str:
    """Raw per-application metrics for every sweep point."""
    lines = ["## Per-application metrics", ""]
    header = "| application | configuration | memory vs SRAM | system vs SRAM | time vs SRAM |"
    lines.append(header)
    lines.append("|---|---|---|---|---|")
    for name in sweep.applications:
        baseline = sweep.baseline(name)
        for point in sweep.points:
            result = sweep.result(name, point)
            lines.append(
                f"| {name} | {point.label} | "
                f"{result.normalised_memory_energy(baseline):.3f} | "
                f"{result.normalised_system_energy(baseline):.3f} | "
                f"{result.normalised_execution_time(baseline):.3f} |"
            )
    lines.append("")
    return "\n".join(lines)


def _validation_section(sweep: SweepResult) -> str:
    """The perf-pattern section: invariant checks plus the anomaly scan.

    Results restored from a store carry no configuration, so the
    config-dependent checks (refresh cadence, leakage) are skipped there;
    the ``validate`` CLI subcommand reconstructs configs from the grid and
    runs the full set.
    """
    return render_markdown(validate_sweep(sweep))


def sweep_report(sweep: SweepResult, title: str = "Refrint sweep report") -> str:
    """Produce a complete Markdown report for one sweep."""
    sections = [f"# {title}", ""]
    applications = ", ".join(sweep.applications)
    points = len(sweep.points)
    sections.append(
        f"Applications: {applications}  \n"
        f"Sweep points per application: {points} (plus the full-SRAM baseline)"
    )
    sections.append("")
    headline = _headline_section(sweep)
    if headline:
        sections.append(headline)
    for selection in _class_selections(sweep):
        sections.append(_figure_as_markdown(figure_6_1(sweep, selection)))
        sections.append(_figure_as_markdown(figure_6_2(sweep, selection)))
        sections.append(_figure_as_markdown(figure_6_3(sweep, selection)))
        sections.append(_figure_as_markdown(figure_6_4(sweep, selection)))
    sections.append(_per_application_section(sweep))
    sections.append(_validation_section(sweep))
    return "\n".join(sections)
