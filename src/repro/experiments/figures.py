"""Regeneration of the paper's evaluation figures (Figs. 6.1 - 6.4).

Each figure function takes a :class:`~repro.core.sweep.SweepResult` and
returns a :class:`FigureData`: one named series of values per stacked
component (or a single series for the un-stacked figures), with one entry
per (retention time, policy) combination on the X axis -- exactly the
layout of the paper's plots.  :func:`render_figure` turns the data into an
aligned text table (the textual equivalent of the stacked bar chart), and
the benchmark harness prints the same rows the paper's figures report.

All values are normalised to the full-SRAM baseline, per application, and
then averaged over the requested application set (a class or the whole
suite), matching Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.classes import APPLICATION_CLASSES
from repro.core.results import SimulationResult
from repro.core.sweep import PolicyPoint, SweepResult


@dataclass(frozen=True)
class FigureSeries:
    """One stacked component of a figure: a name and one value per bar."""

    name: str
    values: Sequence[float]


@dataclass
class FigureData:
    """A complete figure: bar labels plus one or more stacked series."""

    title: str
    bar_labels: List[str] = field(default_factory=list)
    series: List[FigureSeries] = field(default_factory=list)

    def totals(self) -> List[float]:
        """Per-bar totals (the height of each stacked bar)."""
        if not self.series:
            return []
        return [
            sum(series.values[index] for series in self.series)
            for index in range(len(self.bar_labels))
        ]

    def value(self, bar_label: str, series_name: str) -> float:
        """Look up one component of one bar."""
        bar_index = self.bar_labels.index(bar_label)
        for series in self.series:
            if series.name == series_name:
                return series.values[bar_index]
        raise KeyError(f"no series named {series_name!r}")


def render_figure(figure: FigureData, precision: int = 3) -> str:
    """Render a figure as an aligned text table (bars as rows)."""
    headers = ["configuration"] + [series.name for series in figure.series] + ["total"]
    rows: List[List[str]] = []
    totals = figure.totals()
    for index, label in enumerate(figure.bar_labels):
        row = [label]
        row.extend(
            f"{series.values[index]:.{precision}f}" for series in figure.series
        )
        row.append(f"{totals[index]:.{precision}f}")
        rows.append(row)
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows)) if rows else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [figure.title, "=" * len(figure.title)]
    lines.append("  ".join(headers[col].ljust(widths[col]) for col in range(len(headers))))
    lines.append("  ".join("-" * widths[col] for col in range(len(headers))))
    for row in rows:
        lines.append("  ".join(row[col].ljust(widths[col]) for col in range(len(headers))))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def _applications_for(
    sweep: SweepResult, applications: Optional[Iterable[str]]
) -> List[str]:
    if applications is None:
        return sweep.applications
    requested = list(applications)
    missing = [name for name in requested if name not in sweep.baselines]
    if missing:
        raise KeyError(f"applications not present in the sweep: {missing}")
    return requested


def _average(values: Dict[str, float]) -> float:
    return sum(values.values()) / len(values)


def _per_bar(
    sweep: SweepResult,
    applications: Optional[Iterable[str]],
    metric: Callable[[SimulationResult, SimulationResult], float],
) -> Dict[str, float]:
    """Average a per-application metric for every sweep point (bar)."""
    names = _applications_for(sweep, applications)
    values: Dict[str, float] = {}
    for point in sweep.points:
        per_app = {
            name: metric(sweep.result(name, point), sweep.baseline(name))
            for name in names
        }
        values[point.label] = _average(per_app)
    return values


def class_label(applications: Optional[Iterable[str]]) -> str:
    """Human label for an application selection (class1/class2/class3/all)."""
    if applications is None:
        return "all"
    requested = tuple(sorted(applications))
    for app_class, members in APPLICATION_CLASSES.items():
        if requested == tuple(sorted(members)):
            return f"class{app_class}"
    return ", ".join(requested)


# ---------------------------------------------------------------------------
# Figure 6.1 -- L1 / L2 / L3 / DRAM energy
# ---------------------------------------------------------------------------

def figure_6_1(
    sweep: SweepResult, applications: Optional[Iterable[str]] = None
) -> FigureData:
    """Memory energy split by level, normalised to the SRAM memory energy."""
    names = _applications_for(sweep, applications)
    figure = FigureData(
        title=(
            "Figure 6.1: L1, L2, L3 & DRAM energy "
            f"(normalised to full-SRAM memory energy) [{class_label(applications)}]"
        )
    )
    levels = ("l1", "l2", "l3", "dram")
    per_level: Dict[str, List[float]] = {level: [] for level in levels}
    for point in sweep.points:
        figure.bar_labels.append(point.label)
        for level in levels:
            values = []
            for name in names:
                breakdown = sweep.result(name, point).normalised_level_breakdown(
                    sweep.baseline(name)
                )
                values.append(breakdown[level])
            per_level[level].append(sum(values) / len(values))
    figure.series = [
        FigureSeries(name=level.upper(), values=tuple(per_level[level]))
        for level in levels
    ]
    return figure


# ---------------------------------------------------------------------------
# Figure 6.2 -- dynamic / leakage / refresh / DRAM energy
# ---------------------------------------------------------------------------

def figure_6_2(
    sweep: SweepResult, applications: Optional[Iterable[str]] = None
) -> FigureData:
    """Memory energy split by component, normalised to the SRAM baseline."""
    names = _applications_for(sweep, applications)
    figure = FigureData(
        title=(
            "Figure 6.2: on-chip dynamic, leakage, refresh & DRAM energy "
            f"(normalised to full-SRAM memory energy) [{class_label(applications)}]"
        )
    )
    components = ("dynamic", "leakage", "refresh", "dram")
    per_component: Dict[str, List[float]] = {comp: [] for comp in components}
    for point in sweep.points:
        figure.bar_labels.append(point.label)
        for component in components:
            values = []
            for name in names:
                breakdown = sweep.result(name, point).normalised_component_breakdown(
                    sweep.baseline(name)
                )
                values.append(breakdown[component])
            per_component[component].append(sum(values) / len(values))
    figure.series = [
        FigureSeries(name=component.capitalize(), values=tuple(per_component[component]))
        for component in components
    ]
    return figure


# ---------------------------------------------------------------------------
# Figure 6.3 -- total system energy
# ---------------------------------------------------------------------------

def figure_6_3(
    sweep: SweepResult, applications: Optional[Iterable[str]] = None
) -> FigureData:
    """Total system energy (cores, caches, network, DRAM) vs the SRAM system."""
    figure = FigureData(
        title=(
            "Figure 6.3: total energy "
            f"(normalised to full-SRAM system energy) [{class_label(applications)}]"
        )
    )
    values = _per_bar(
        sweep,
        applications,
        lambda result, baseline: result.normalised_system_energy(baseline),
    )
    figure.bar_labels = [point.label for point in sweep.points]
    figure.series = [
        FigureSeries(
            name="Energy",
            values=tuple(values[point.label] for point in sweep.points),
        )
    ]
    return figure


# ---------------------------------------------------------------------------
# Figure 6.4 -- execution time
# ---------------------------------------------------------------------------

def figure_6_4(
    sweep: SweepResult, applications: Optional[Iterable[str]] = None
) -> FigureData:
    """Execution time normalised to the full-SRAM system."""
    figure = FigureData(
        title=(
            "Figure 6.4: execution time "
            f"(normalised to full-SRAM execution time) [{class_label(applications)}]"
        )
    )
    values = _per_bar(
        sweep,
        applications,
        lambda result, baseline: result.normalised_execution_time(baseline),
    )
    figure.bar_labels = [point.label for point in sweep.points]
    figure.series = [
        FigureSeries(
            name="Time",
            values=tuple(values[point.label] for point in sweep.points),
        )
    ]
    return figure
