"""Three-level inclusive cache hierarchy of the 16-core CMP."""

from repro.hierarchy.hierarchy import CacheHierarchy
from repro.hierarchy.levels import CoreCaches, L3Bank

__all__ = ["CacheHierarchy", "CoreCaches", "L3Bank"]
