"""The full on-chip memory hierarchy of the simulated CMP.

:class:`CacheHierarchy` wires together the per-core private caches, the 16
shared L3 banks, the torus network, the DRAM and the directory protocol, and
exposes the three operations a core performs (instruction fetch, load,
store) plus the hooks the refresh subsystem needs (per-cache access to lines
and the policy-driven invalidate / write-back entry points).

The hierarchy itself is technology-agnostic: whether the arrays are SRAM or
eDRAM only matters to the refresh controllers layered on top and to the
energy model applied afterwards.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.coherence.protocol import DirectoryProtocol
from repro.config.parameters import ArchitectureConfig
from repro.hierarchy.levels import CoreCaches, L3Bank
from repro.mem.cache import Cache
from repro.mem.dram import MainMemory
from repro.noc.network import TorusNetwork
from repro.noc.topology import TorusTopology
from repro.utils.statistics import Counter


class CacheHierarchy:
    """Private L1s/L2s, banked shared L3, torus NoC, DRAM and MESI directory.

    ``cache_backend`` selects the cache storage model: "array" (the default
    struct-of-arrays fast path), "numpy" (the same layout on int64
    ndarrays, vectorising the refresh sweeps; requires numpy) or "object"
    (the original one-object-per-line model, kept for equivalence checks
    and benchmarking).
    """

    def __init__(
        self, architecture: ArchitectureConfig, cache_backend: str = "array"
    ) -> None:
        self.architecture = architecture
        self.cache_backend = cache_backend
        self.counters = Counter()
        self.topology = TorusTopology(
            width=architecture.mesh_width, height=architecture.mesh_height
        )
        self.network = TorusNetwork(
            self.topology,
            router_hop_cycles=architecture.router_hop_cycles,
            link_hop_cycles=architecture.link_hop_cycles,
            counters=self.counters,
        )
        self.dram = MainMemory(
            access_cycles=architecture.dram_access_cycles, counters=self.counters
        )
        self.cores: List[CoreCaches] = [
            CoreCaches(core_id, architecture, backend=cache_backend)
            for core_id in range(architecture.num_cores)
        ]
        self.banks: List[L3Bank] = [
            L3Bank(bank_id, architecture, vertex=bank_id, backend=cache_backend)
            for bank_id in range(architecture.num_l3_banks)
        ]
        self.protocol = DirectoryProtocol(
            architecture=architecture,
            cores=self.cores,
            banks=self.banks,
            network=self.network,
            dram=self.dram,
            counters=self.counters,
        )
        # Set by build_refresh_controllers on eDRAM configurations: the
        # shared calendar queue all refresh timers drain from.  None for the
        # SRAM baseline (no refresh, no disturbances).
        self.refresh_wheel = None

    # -- core-facing operations ---------------------------------------------

    def read(self, core_id: int, address: int, cycle: int) -> int:
        """Data load; returns the end-to-end latency in cycles."""
        return self.protocol.read(core_id, address, cycle)

    def write(self, core_id: int, address: int, cycle: int) -> int:
        """Data store; returns the end-to-end latency in cycles."""
        return self.protocol.write(core_id, address, cycle)

    def instruction_fetch(self, core_id: int, address: int, cycle: int) -> int:
        """Instruction fetch; returns the end-to-end latency in cycles."""
        return self.protocol.instruction_fetch(core_id, address, cycle)

    def commit_hit_run(self, core_id: int, buf) -> None:
        """Commit a core's pending private-hit run in one staged call.

        See :meth:`~repro.coherence.protocol.DirectoryProtocol.hit_run`;
        the run-ahead driver and the cores call this through the hierarchy
        so the protocol object stays an implementation detail.
        """
        self.protocol.hit_run(core_id, buf)

    @property
    def protocol_calls(self) -> int:
        """Access-path protocol invocations so far (see ``ReplayStats``)."""
        return self.protocol.protocol_calls

    def flush_dirty(self, cycle: int) -> None:
        """Write all dirty data back to DRAM (end-of-run accounting)."""
        self.protocol.flush_dirty(cycle)

    # -- refresh-subsystem hooks ----------------------------------------------

    def next_disturbance_cycle(self) -> Optional[int]:
        """Earliest future cycle at which refresh work touches an array.

        A trace-replay core may execute references back-to-back up to this
        horizon without a refresh pass (blocking, write-backs, policy
        invalidations) interleaving.  None when the configuration has no
        refresh subsystem (SRAM) or no timer is pending.
        """
        if self.refresh_wheel is None:
            return None
        return self.refresh_wheel.next_deadline()

    def all_caches(self) -> Iterator[Tuple[str, int, Cache]]:
        """Yield (level, instance id, cache) for every array on the chip.

        The level names match the energy tables and the per-level data
        policies: "l1i", "l1d", "l2" use the core id as instance id, "l3"
        uses the bank id.
        """
        for caches in self.cores:
            yield "l1i", caches.core_id, caches.l1i
            yield "l1d", caches.core_id, caches.l1d
            yield "l2", caches.core_id, caches.l2
        for bank in self.banks:
            yield "l3", bank.bank_id, bank.cache

    def cache_instance(self, level: str, instance: int) -> Cache:
        """Return one cache array by level name and instance id."""
        if level == "l1i":
            return self.cores[instance].l1i
        if level == "l1d":
            return self.cores[instance].l1d
        if level == "l2":
            return self.cores[instance].l2
        if level == "l3":
            return self.banks[instance].cache
        raise KeyError(f"unknown cache level {level!r}")

    def policy_invalidate(
        self, level: str, instance: int, set_idx: int, line, cycle: int
    ) -> None:
        """Invalidate a line on behalf of a refresh policy.

        Dispatches to the protocol so that inclusion and dirty data are
        handled correctly for the level in question; L1 lines are always
        clean (write-through) and can be dropped silently.
        """
        if level == "l3":
            self.protocol.policy_invalidate_l3(
                self.banks[instance], set_idx, line, cycle
            )
        elif level == "l2":
            self.protocol.policy_invalidate_l2(instance, set_idx, line, cycle)
        elif level in ("l1i", "l1d"):
            if line.valid:
                self.counters.add(f"{level}_policy_invalidations")
                line.invalidate()
        else:
            raise KeyError(f"unknown cache level {level!r}")

    def policy_writeback(
        self, level: str, instance: int, set_idx: int, line, cycle: int
    ) -> None:
        """Write a dirty line back one level on behalf of a refresh policy."""
        if level == "l3":
            self.protocol.policy_writeback_l3(
                self.banks[instance], set_idx, line, cycle
            )
        elif level == "l2":
            self.protocol.policy_writeback_l2(instance, set_idx, line, cycle)
        elif level in ("l1i", "l1d"):
            # Write-through L1 lines are never dirty; nothing to do.
            return
        else:
            raise KeyError(f"unknown cache level {level!r}")

    # -- introspection ---------------------------------------------------------

    def occupancy(self) -> Dict[str, int]:
        """Number of valid lines per level (summed over instances)."""
        totals: Dict[str, int] = {"l1i": 0, "l1d": 0, "l2": 0, "l3": 0}
        for level, _, cache in self.all_caches():
            totals[level] += cache.count_valid()
        return totals

    def dirty_lines(self) -> Dict[str, int]:
        """Number of dirty lines per level (summed over instances)."""
        totals: Dict[str, int] = {"l1i": 0, "l1d": 0, "l2": 0, "l3": 0}
        for level, _, cache in self.all_caches():
            totals[level] += cache.count_dirty()
        return totals

    def check_inclusion(self) -> List[str]:
        """Verify that every valid L2/L1 block is present in the L3.

        Returns a list of human-readable violation descriptions (empty when
        the inclusive-hierarchy invariant holds).  Used by tests.
        """
        violations: List[str] = []
        for caches in self.cores:
            for level_name, cache in (
                ("l1i", caches.l1i), ("l1d", caches.l1d), ("l2", caches.l2),
            ):
                for set_idx, line in cache.valid_lines():
                    block = cache.block_address_of(set_idx, line)
                    bank = self.protocol.home_bank(block)
                    l3_line = bank.cache.probe(block)
                    if l3_line is None or not l3_line.valid:
                        violations.append(
                            f"core {caches.core_id} {level_name} holds block "
                            f"{block:#x} absent from L3 bank {bank.bank_id}"
                        )
        return violations
