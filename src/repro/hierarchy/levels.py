"""Physical cache instances: per-core private caches and shared L3 banks."""

from __future__ import annotations

from typing import Optional

from repro.config.parameters import ArchitectureConfig
from repro.mem.cache import Cache


class CoreCaches:
    """The private caches of one core: instruction L1, data L1 and L2.

    The instruction and data L1s are write-through relative to the L2
    (Table 5.1: the data L1 is WT, the instruction L1 never writes), so all
    dirty private data lives in the L2, which is write-back.
    """

    def __init__(
        self,
        core_id: int,
        architecture: ArchitectureConfig,
        backend: str = "array",
    ) -> None:
        self.core_id = core_id
        self.l1i = Cache(architecture.l1i, name=f"l1i[{core_id}]", backend=backend)
        self.l1d = Cache(architecture.l1d, name=f"l1d[{core_id}]", backend=backend)
        self.l2 = Cache(architecture.l2, name=f"l2[{core_id}]", backend=backend)

    def invalidate_l1_copies(self, block_address: int) -> int:
        """Invalidate any L1 copy of a block (inclusion with the L2).

        Returns the number of copies dropped (0, 1 or 2).
        """
        dropped = 0
        if self.l1d.invalidate(block_address) is not None:
            dropped += 1
        if self.l1i.invalidate(block_address) is not None:
            dropped += 1
        return dropped

    def __repr__(self) -> str:
        return f"CoreCaches(core={self.core_id})"


class L3Bank:
    """One bank of the shared L3, co-located with a torus vertex.

    Each bank holds :class:`~repro.mem.line.DirectoryLine` lines so the MESI
    directory state travels with the cached block, and has its own refresh
    interrupt logic (Fig. 4.3) attached by the refresh subsystem.
    """

    def __init__(
        self,
        bank_id: int,
        architecture: ArchitectureConfig,
        vertex: Optional[int] = None,
        backend: str = "array",
    ) -> None:
        self.bank_id = bank_id
        self.vertex = vertex if vertex is not None else bank_id
        # Blocks are interleaved across banks, so this bank indexes its sets
        # with the bank-selection bits stripped from the block number.
        self.cache = Cache(
            architecture.l3_bank,
            name=f"l3[{bank_id}]",
            index_interleave=architecture.num_l3_banks,
            index_offset=bank_id,
            backend=backend,
            directory=True,
        )

    def __repr__(self) -> str:
        return f"L3Bank(bank={self.bank_id}, vertex={self.vertex})"
