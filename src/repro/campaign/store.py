"""Persistent JSON result store keyed by job hash.

Each computed :class:`~repro.core.results.SimulationResult` is written to
``<root>/<job-key>.json`` together with a small metadata header describing
the job.  Because the key is a content hash of the job (workload recipe +
full configuration), the store doubles as a cache: re-running a campaign
with ``resume=True`` skips every point whose file already exists, and
extending the grid (a new retention time, a new application) only simulates
the new points.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.campaign.jobs import Job
from repro.core.results import SimulationResult
from repro.workloads.synthetic import TRACE_GENERATOR_PROVENANCE

#: Store-level metadata file recording which trace generator produced the
#: results inside.  Underscore-prefixed so it can never collide with a job
#: key (keys are hex digests) and is skipped by entry iteration.
PROVENANCE_FILE = "_trace_provenance.json"


class StoreProvenanceError(RuntimeError):
    """A store holds results from a different trace-generator environment.

    The numpy and scalar trace generators draw different (equally valid)
    streams from the same workload recipe; mixing their results in one
    store would make sweep figures silently incomparable.  Job hashes
    already keep the two apart (the provenance is part of the digest); this
    error makes the mixing attempt loud instead of silently recomputing
    every point into a mongrel store.
    """


class ResultStore:
    """Directory of per-job JSON result files.

    Writes are atomic (write to a temp file, then ``os.replace``) so a
    campaign killed mid-write never leaves a truncated entry that would
    poison later resumes; unreadable entries are treated as missing.

    The first write stamps the store with this environment's
    trace-generator provenance (numpy vs scalar fallback); later writes
    from the other environment raise :class:`StoreProvenanceError`.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._provenance_checked = False

    def path_for(self, key: str) -> Path:
        """Filesystem path of one job's result file."""
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        """Job keys currently persisted in the store."""
        for path in sorted(self.root.glob("*.json")):
            if not path.name.startswith(("_", ".")):
                yield path.stem

    def check_provenance(self) -> None:
        """Stamp or verify the store's trace-generator provenance.

        Idempotent and cheap after the first call.  Raises
        :class:`StoreProvenanceError` when the store was stamped by the
        other environment, and also when the marker exists but cannot be
        read -- a damaged marker must not silently disable the guard.
        Stores predating the stamp are stamped with the current
        environment on their next write (their old entries use
        pre-provenance job keys, which no current campaign can enumerate,
        so no mixing can occur through them).
        """
        if self._provenance_checked:
            return
        marker = self.root / PROVENANCE_FILE
        try:
            recorded = json.loads(marker.read_text(encoding="utf-8"))
        except FileNotFoundError:
            stamped = None
        except (OSError, ValueError) as error:
            raise StoreProvenanceError(
                f"store {self.root} has an unreadable provenance marker "
                f"({marker.name}: {error}); refusing to guess which trace "
                f"generator produced its results -- delete or restore the "
                f"marker by hand"
            ) from error
        else:
            # A marker that parses but has the wrong shape is just as
            # damaged as one that does not parse: never restamp over it.
            stamped = (
                recorded.get("trace_generator")
                if isinstance(recorded, dict)
                else None
            )
            if not isinstance(stamped, str):
                raise StoreProvenanceError(
                    f"store {self.root} has a malformed provenance marker "
                    f"({marker.name}: no 'trace_generator' string); delete "
                    f"or restore the marker by hand"
                )
        if stamped is None:
            # Atomic like every other store write: a crash mid-stamp must
            # not leave a truncated marker that poisons the next check.
            fd, tmp_name = tempfile.mkstemp(
                prefix=".provenance-", suffix=".tmp", dir=self.root
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(
                        {"trace_generator": TRACE_GENERATOR_PROVENANCE},
                        handle,
                        indent=2,
                    )
                    handle.write("\n")
                os.replace(tmp_name, marker)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_name)
                raise
        elif stamped != TRACE_GENERATOR_PROVENANCE:
            raise StoreProvenanceError(
                f"store {self.root} holds results generated with the "
                f"{stamped!r} trace generator, but this environment uses "
                f"{TRACE_GENERATOR_PROVENANCE!r} (numpy "
                f"{'missing' if TRACE_GENERATOR_PROVENANCE == 'scalar' else 'installed'}); "
                f"use a separate store per environment"
            )
        self._provenance_checked = True

    def get(self, key: str) -> Optional[SimulationResult]:
        """Load one result, or None when absent or unreadable."""
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            return SimulationResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, job: Job, result: SimulationResult) -> Path:
        """Persist one job's result; returns the file written.

        Raises:
            StoreProvenanceError: when the store was stamped by an
                environment with the other trace generator.
        """
        self.check_provenance()
        key = job.key()
        path = self.path_for(key)
        payload = {
            "job": {
                "key": key,
                "application": job.application,
                "label": job.label,
                "length_scale": job.workload.length_scale,
                "seed": job.workload.seed,
            },
            # The canonical structure the key is a SHA-256 of; lets
            # ``store verify`` re-check the content hash of an entry
            # without the original Job objects.
            "hash_payload": job.hash_payload(),
            "result": result.to_dict(),
        }
        # Unique temp name: concurrent campaigns sharing a store may compute
        # the same job, and a fixed tmp path would make them race on it.
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:16]}-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path
