"""Persistent result stores keyed by job hash.

Two interchangeable backends persist computed
:class:`~repro.core.results.SimulationResult` objects under content-hash
keys, behind one interface (:class:`BaseResultStore`):

* :class:`ResultStore` -- the legacy one-JSON-file-per-result layout
  (``<root>/<job-key>.json``).  Simple, greppable, and every entry is
  individually atomic; but a 100k-point campaign means 100k files and a
  directory scan per resume.
* :class:`~repro.campaign.segments.SegmentResultStore` -- an indexed,
  append-only segment store: results append to size-capped JSONL segments
  through a single writer, with a compact on-disk index keyed by job hash.
  Opened via :func:`open_store` with ``backend="segment"`` (or ``"auto"``,
  which detects the layout on disk).

Because keys are content hashes of the job (workload recipe + full
configuration), either store doubles as a cache: re-running a campaign with
``resume=True`` skips every point already persisted, and extending the grid
(a new retention time, a new application) only simulates the new points.
"""

from __future__ import annotations

import bisect
import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.campaign.jobs import Job
from repro.core.results import SimulationResult
from repro.workloads.synthetic import TRACE_GENERATOR_PROVENANCE

#: Store-level metadata file recording which trace generator produced the
#: results inside.  Underscore-prefixed so it can never collide with a job
#: key (keys are hex digests) and is skipped by entry iteration.
PROVENANCE_FILE = "_trace_provenance.json"


class StoreProvenanceError(RuntimeError):
    """A store holds results from a different trace-generator environment.

    The numpy and scalar trace generators draw different (equally valid)
    streams from the same workload recipe; mixing their results in one
    store would make sweep figures silently incomparable.  Job hashes
    already keep the two apart (the provenance is part of the digest); this
    error makes the mixing attempt loud instead of silently recomputing
    every point into a mongrel store.
    """


def atomic_write_text(path: Path, text: str, prefix: str = ".write-") -> None:
    """Write a file atomically (temp file + ``os.replace``) in its directory.

    A crash mid-write never leaves a truncated file under the final name.
    """
    fd, tmp_name = tempfile.mkstemp(prefix=prefix, suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


def entry_payload(job: Job, result: SimulationResult) -> dict:
    """The canonical persisted payload of one (job, result) pair.

    Shared by both backends so a record migrated between them is
    byte-identical after re-serialisation with the destination's settings.
    """
    return {
        "job": {
            "key": job.key(),
            "application": job.application,
            "label": job.label,
            "length_scale": job.workload.length_scale,
            "seed": job.workload.seed,
        },
        # The canonical structure the key is a SHA-256 of; lets
        # ``store verify`` re-check the content hash of an entry
        # without the original Job objects.
        "hash_payload": job.hash_payload(),
        "result": result.to_dict(),
    }


class BaseResultStore:
    """Root directory handling + trace-generator provenance, backend-agnostic.

    Subclasses implement ``keys`` / ``__contains__`` / ``__len__`` / ``get``
    / ``put_record`` / ``iter_records``; :meth:`put` is shared (it builds
    the canonical payload and checks provenance).
    """

    #: Short name used by ``open_store``/CLI (subclasses override).
    backend_name = "base"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._provenance_checked = False

    # -- provenance --------------------------------------------------------------

    def check_provenance(self) -> None:
        """Stamp or verify the store's trace-generator provenance.

        Idempotent and cheap after the first call.  Raises
        :class:`StoreProvenanceError` when the store was stamped by the
        other environment, and also when the marker exists but cannot be
        read -- a damaged marker must not silently disable the guard.
        Stores predating the stamp are stamped with the current
        environment on their next write (their old entries use
        pre-provenance job keys, which no current campaign can enumerate,
        so no mixing can occur through them).
        """
        if self._provenance_checked:
            return
        marker = self.root / PROVENANCE_FILE
        try:
            recorded = json.loads(marker.read_text(encoding="utf-8"))
        except FileNotFoundError:
            stamped = None
        except (OSError, ValueError) as error:
            raise StoreProvenanceError(
                f"store {self.root} has an unreadable provenance marker "
                f"({marker.name}: {error}); refusing to guess which trace "
                f"generator produced its results -- delete or restore the "
                f"marker by hand"
            ) from error
        else:
            # A marker that parses but has the wrong shape is just as
            # damaged as one that does not parse: never restamp over it.
            stamped = (
                recorded.get("trace_generator")
                if isinstance(recorded, dict)
                else None
            )
            if not isinstance(stamped, str):
                raise StoreProvenanceError(
                    f"store {self.root} has a malformed provenance marker "
                    f"({marker.name}: no 'trace_generator' string); delete "
                    f"or restore the marker by hand"
                )
        if stamped is None:
            # Atomic like every other store write: a crash mid-stamp must
            # not leave a truncated marker that poisons the next check.
            atomic_write_text(
                marker,
                json.dumps({"trace_generator": TRACE_GENERATOR_PROVENANCE}, indent=2)
                + "\n",
                prefix=".provenance-",
            )
        elif stamped != TRACE_GENERATOR_PROVENANCE:
            raise StoreProvenanceError(
                f"store {self.root} holds results generated with the "
                f"{stamped!r} trace generator, but this environment uses "
                f"{TRACE_GENERATOR_PROVENANCE!r} (numpy "
                f"{'missing' if TRACE_GENERATOR_PROVENANCE == 'scalar' else 'installed'}); "
                f"use a separate store per environment"
            )
        self._provenance_checked = True

    def recorded_provenance(self) -> Optional[str]:
        """The trace-generator the store is stamped with, if readable."""
        try:
            recorded = json.loads(
                (self.root / PROVENANCE_FILE).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None
        if isinstance(recorded, dict):
            value = recorded.get("trace_generator")
            return value if isinstance(value, str) else None
        return None

    def stamp_provenance(self, trace_generator: str) -> None:
        """Stamp the store with an explicit provenance (used by migration).

        Migration copies the *source* store's stamp verbatim, so a store can
        be converted between layouts in either environment without its
        entries being reattributed to the converting machine.
        """
        atomic_write_text(
            self.root / PROVENANCE_FILE,
            json.dumps({"trace_generator": trace_generator}, indent=2) + "\n",
            prefix=".provenance-",
        )
        self._provenance_checked = False

    # -- shared write path -------------------------------------------------------

    def put(self, job: Job, result: SimulationResult) -> Path:
        """Persist one job's result; returns the file written.

        Raises:
            StoreProvenanceError: when the store was stamped by an
                environment with the other trace generator.
        """
        self.check_provenance()
        return self.put_record(job.key(), entry_payload(job, result))

    # -- backend interface -------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """Job keys currently persisted in the store."""
        raise NotImplementedError

    def get(self, key: str) -> Optional[SimulationResult]:
        """Load one result, or None when absent or unreadable."""
        raise NotImplementedError

    def put_record(self, key: str, payload: dict) -> Path:
        """Persist one raw entry payload (no provenance check; see put)."""
        raise NotImplementedError

    def iter_records(self) -> Iterator[Tuple[str, dict]]:
        """Yield ``(key, payload)`` for every readable entry (for migration)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered writes to disk (no-op for per-file backends)."""

    def close(self) -> None:
        """Release file handles (no-op for per-file backends)."""

    def __enter__(self) -> "BaseResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __contains__(self, key: str) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class ResultStore(BaseResultStore):
    """Directory of per-job JSON result files (the legacy ``json`` backend).

    Writes are atomic (write to a temp file, then ``os.replace``) so a
    campaign killed mid-write never leaves a truncated entry that would
    poison later resumes; unreadable entries are treated as missing.

    The key index is scanned from the directory once and then cached:
    ``keys()``/``len()`` no longer pay a full directory scan per call, and
    ``put`` updates the cache in place.  :meth:`refresh_index` drops the
    cache when another process may have written the directory.

    The first write stamps the store with this environment's
    trace-generator provenance (numpy vs scalar fallback); later writes
    from the other environment raise :class:`StoreProvenanceError`.
    """

    backend_name = "json"

    def __init__(self, root: Union[str, Path]) -> None:
        super().__init__(root)
        self._key_list: Optional[List[str]] = None
        self._key_set: Optional[set] = None

    def path_for(self, key: str) -> Path:
        """Filesystem path of one job's result file."""
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        # Deliberately checks the filesystem, not the cached index: another
        # campaign sharing the store may have just written the entry.
        return self.path_for(key).exists()

    def __len__(self) -> int:
        self._ensure_index()
        return len(self._key_list)

    def keys(self) -> Iterator[str]:
        """Job keys currently persisted in the store (sorted)."""
        self._ensure_index()
        return iter(list(self._key_list))

    def refresh_index(self) -> None:
        """Drop the cached key index (rescan on next ``keys()``/``len()``)."""
        self._key_list = None
        self._key_set = None

    def _ensure_index(self) -> None:
        if self._key_list is not None:
            return
        self._key_list = sorted(
            path.stem
            for path in self.root.glob("*.json")
            if not path.name.startswith(("_", "."))
        )
        self._key_set = set(self._key_list)

    def get(self, key: str) -> Optional[SimulationResult]:
        """Load one result, or None when absent or unreadable."""
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            return SimulationResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put_record(self, key: str, payload: dict) -> Path:
        """Write one entry file atomically and update the cached index."""
        path = self.path_for(key)
        # Unique temp name: concurrent campaigns sharing a store may compute
        # the same job, and a fixed tmp path would make them race on it.
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:16]}-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        if self._key_list is not None and key not in self._key_set:
            bisect.insort(self._key_list, key)
            self._key_set.add(key)
        return path

    def iter_records(self) -> Iterator[Tuple[str, dict]]:
        """Yield ``(key, payload)`` per entry, skipping unreadable files."""
        for key in self.keys():
            try:
                with self.path_for(key).open("r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                continue
            if isinstance(payload, dict):
                yield key, payload


def detect_backend(root: Union[str, Path]) -> Optional[str]:
    """Which backend's layout a directory holds (None when undecidable).

    A segment store is recognisable by its meta file or its ``segments/``
    directory; a directory containing ``<hex>.json`` entries (or nothing
    but store metadata) is the legacy per-file layout.
    """
    root = Path(root)
    from repro.campaign.segments import SEGMENT_META_FILE, SEGMENTS_DIR

    if (root / SEGMENT_META_FILE).exists() or (root / SEGMENTS_DIR).is_dir():
        return "segment"
    if root.is_dir():
        return "json"
    return None


def open_store(
    root: Union[str, Path], backend: str = "auto", **kwargs
) -> BaseResultStore:
    """Open (or create) a result store with the requested backend.

    ``backend="auto"`` detects the layout of an existing directory and
    defaults to ``json`` for a new one (the legacy behaviour, so existing
    scripts keep producing the layout they always did).  Passing an explicit
    backend against a directory holding the *other* layout is an error --
    silently writing a second layout into one directory would split the
    store in two.
    """
    root = Path(root)
    detected = detect_backend(root) if root.exists() else None
    if backend == "auto":
        backend = detected if detected is not None else "json"
    elif detected is not None and detected != backend:
        # An empty directory detects as "json" but holds nothing yet, so
        # any backend may claim it.
        if detected == "json" and not any(root.glob("*.json")):
            pass
        else:
            raise ValueError(
                f"store {root} holds a {detected!r}-layout store but "
                f"backend={backend!r} was requested; refusing to mix two "
                f"layouts in one directory. Either open it with "
                f"backend='{detected}' (or 'auto'), or convert it first: "
                f"python -m repro.cli store migrate {root} <new-dir> "
                f"--to {backend}"
            )
    if backend == "json":
        return ResultStore(root, **kwargs)
    if backend == "segment":
        from repro.campaign.segments import SegmentResultStore

        return SegmentResultStore(root, **kwargs)
    raise ValueError(f"unknown store backend {backend!r} (json, segment, auto)")
