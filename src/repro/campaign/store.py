"""Persistent JSON result store keyed by job hash.

Each computed :class:`~repro.core.results.SimulationResult` is written to
``<root>/<job-key>.json`` together with a small metadata header describing
the job.  Because the key is a content hash of the job (workload recipe +
full configuration), the store doubles as a cache: re-running a campaign
with ``resume=True`` skips every point whose file already exists, and
extending the grid (a new retention time, a new application) only simulates
the new points.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.campaign.jobs import Job
from repro.core.results import SimulationResult


class ResultStore:
    """Directory of per-job JSON result files.

    Writes are atomic (write to a temp file, then ``os.replace``) so a
    campaign killed mid-write never leaves a truncated entry that would
    poison later resumes; unreadable entries are treated as missing.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Filesystem path of one job's result file."""
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        """Job keys currently persisted in the store."""
        for path in sorted(self.root.glob("*.json")):
            yield path.stem

    def get(self, key: str) -> Optional[SimulationResult]:
        """Load one result, or None when absent or unreadable."""
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            return SimulationResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, job: Job, result: SimulationResult) -> Path:
        """Persist one job's result; returns the file written."""
        key = job.key()
        path = self.path_for(key)
        payload = {
            "job": {
                "key": key,
                "application": job.application,
                "label": job.label,
                "length_scale": job.workload.length_scale,
                "seed": job.workload.seed,
            },
            # The canonical structure the key is a SHA-256 of; lets
            # ``store verify`` re-check the content hash of an entry
            # without the original Job objects.
            "hash_payload": job.hash_payload(),
            "result": result.to_dict(),
        }
        # Unique temp name: concurrent campaigns sharing a store may compute
        # the same job, and a fixed tmp path would make them race on it.
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:16]}-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path
