"""Result-store maintenance: listing, garbage collection, verification.

A campaign result store accretes state over many runs: interrupted writes
leave ``*.tmp`` orphans, disk corruption or hand-editing can truncate
entries, and an entry's filename is a content hash that should always match
what is inside the file.  The three operations here keep a store healthy:

``ls``
    One line per entry (key prefix, application, policy label, trace
    parameters) without loading full results into memory.

``gc``
    Remove temp-file orphans and entries that cannot be parsed or whose
    result payload does not round-trip -- the files a ``resume`` would
    silently recompute anyway, now deleted instead of shadowing the store.

``verify``
    Re-derive each entry's content hash from the persisted canonical job
    payload and compare it to the filename, and check the result payload
    round-trips bit-exactly through :class:`SimulationResult`.

All three are exposed through ``python -m repro.cli store ...``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.campaign.jobs import hash_payload_digest
from repro.campaign.store import ResultStore
from repro.core.results import SimulationResult


@dataclass(frozen=True)
class EntryStatus:
    """Health report for one store entry (or stray file)."""

    path: Path
    key: Optional[str] = None
    application: Optional[str] = None
    label: Optional[str] = None
    problem: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when no problem was found."""
        return self.problem is None


@dataclass
class StoreReport:
    """Outcome of a maintenance pass over one store."""

    entries: List[EntryStatus] = field(default_factory=list)
    orphans: List[Path] = field(default_factory=list)
    removed: List[Path] = field(default_factory=list)

    @property
    def problems(self) -> List[EntryStatus]:
        """Entries with a detected problem."""
        return [entry for entry in self.entries if not entry.ok]

    @property
    def ok(self) -> bool:
        """True when every entry is healthy and no orphans remain."""
        return not self.problems and not self.orphans


def _store_root(store: Union[ResultStore, str, Path]) -> Path:
    if isinstance(store, ResultStore):
        return store.root
    return Path(store)


def _inspect_entry(path: Path, check_hash: bool) -> EntryStatus:
    """Classify one ``<key>.json`` entry file."""
    try:
        with path.open("r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        return EntryStatus(path=path, problem=f"unreadable JSON ({error})")
    if not isinstance(data, dict) or "job" not in data or "result" not in data:
        return EntryStatus(path=path, problem="missing job/result sections")
    job = data["job"] if isinstance(data["job"], dict) else {}
    key = job.get("key")
    application = job.get("application")
    label = job.get("label")
    if key != path.stem:
        return EntryStatus(
            path=path, key=key, application=application, label=label,
            problem=f"recorded key {str(key)[:16]}... does not match filename",
        )
    try:
        restored = SimulationResult.from_dict(data["result"])
        if restored.to_dict() != data["result"]:
            raise ValueError("result payload does not round-trip")
    except (KeyError, TypeError, ValueError) as error:
        return EntryStatus(
            path=path, key=key, application=application, label=label,
            problem=f"corrupt result payload ({error})",
        )
    if check_hash:
        payload = data.get("hash_payload")
        if payload is None:
            return EntryStatus(
                path=path, key=key, application=application, label=label,
                problem="no hash payload recorded (written by a pre-hash store)",
            )
        digest = hash_payload_digest(payload)
        if digest != path.stem:
            return EntryStatus(
                path=path, key=key, application=application, label=label,
                problem=f"content hash mismatch (recomputed {digest[:16]}...)",
            )
    return EntryStatus(path=path, key=key, application=application, label=label)


def scan_store(
    store: Union[ResultStore, str, Path], check_hashes: bool = False
) -> StoreReport:
    """Inspect every entry and stray file in a store."""
    root = _store_root(store)
    report = StoreReport()
    if not root.is_dir():
        return report
    for path in sorted(root.iterdir()):
        if path.is_dir():
            continue
        if path.name.startswith("_"):
            # Store-level metadata (e.g. the trace-generator provenance
            # stamp), not an entry and not a leftover.
            continue
        if path.suffix == ".json" and not path.name.startswith("."):
            report.entries.append(_inspect_entry(path, check_hashes))
        else:
            # Anything else in a store directory is a leftover (temp files
            # from interrupted writes, editor droppings).
            report.orphans.append(path)
    return report


def store_ls(store: Union[ResultStore, str, Path]) -> StoreReport:
    """List the entries of a store (no hash re-check)."""
    return scan_store(store, check_hashes=False)


def store_verify(store: Union[ResultStore, str, Path]) -> StoreReport:
    """Fully verify a store: structure, round-trip, and content hashes."""
    return scan_store(store, check_hashes=True)


def store_gc(
    store: Union[ResultStore, str, Path], dry_run: bool = False
) -> StoreReport:
    """Drop orphan temp files and corrupt entries from a store.

    Entries failing the *structural* checks (unreadable, wrong sections,
    key/filename mismatch, non-round-tripping result) are removed; entries
    that merely predate hash-payload recording are kept, since their results
    are still loadable.  Returns the report with ``removed`` filled in.
    """
    report = scan_store(store, check_hashes=False)
    doomed = list(report.orphans) + [entry.path for entry in report.problems]
    for path in doomed:
        if not dry_run:
            path.unlink(missing_ok=True)
        report.removed.append(path)
    return report
