"""Result-store maintenance: listing, garbage collection, verification, migration.

A campaign result store accretes state over many runs: interrupted writes
leave ``*.tmp`` orphans, disk corruption or hand-editing can truncate
entries, and an entry's identity is a content hash that should always match
what is inside the record.  The operations here keep a store healthy, on
**both** backends (the per-file JSON layout and the indexed segment
layout -- :func:`repro.campaign.store.detect_backend` picks the scan):

``ls``
    One line per entry (key prefix, application, policy label) without
    loading full results into memory.

``gc``
    JSON backend: remove temp-file orphans and entries that cannot be
    parsed or whose result payload does not round-trip.  Segment backend:
    delete orphaned segment files (not referenced by any index entry),
    rewrite the index without entries whose records are corrupt or
    mismatched, and repair crash damage (truncated tails, unindexed
    records) by re-running the store's recovery.

``verify``
    Re-derive each entry's content hash from the persisted canonical job
    payload and compare it to its key, and check the result payload
    round-trips bit-exactly through :class:`SimulationResult`.  On the
    segment backend this additionally detects index mismatches (an index
    entry whose record bytes hold a different key), index entries pointing
    at missing or shortened segments, unindexed records, truncated tails
    and per-segment provenance stamps that disagree with the store's.

``migrate``
    Convert a store between the two layouts, copying the raw canonical
    payloads (so re-serialisation is byte-identical) and the
    trace-generator provenance stamp verbatim.

All of these are exposed through ``python -m repro.cli store ...``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.campaign.jobs import hash_payload_digest
from repro.campaign.store import (
    PROVENANCE_FILE,
    BaseResultStore,
    detect_backend,
    open_store,
)
from repro.core.results import SimulationResult


@dataclass(frozen=True)
class EntryStatus:
    """Health report for one store entry (or stray file)."""

    path: Path
    key: Optional[str] = None
    application: Optional[str] = None
    label: Optional[str] = None
    problem: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when no problem was found."""
        return self.problem is None


@dataclass
class StoreReport:
    """Outcome of a maintenance pass over one store."""

    entries: List[EntryStatus] = field(default_factory=list)
    orphans: List[Path] = field(default_factory=list)
    removed: List[Path] = field(default_factory=list)
    #: Keys whose index entries were dropped by a segment-store gc (the
    #: record bytes stay in the append-only segment; a resume re-runs them).
    dropped_keys: List[str] = field(default_factory=list)

    @property
    def problems(self) -> List[EntryStatus]:
        """Entries with a detected problem."""
        return [entry for entry in self.entries if not entry.ok]

    @property
    def ok(self) -> bool:
        """True when every entry is healthy and no orphans remain."""
        return not self.problems and not self.orphans


def _store_root(store: Union[BaseResultStore, str, Path]) -> Path:
    if isinstance(store, BaseResultStore):
        return store.root
    return Path(store)


def _check_payload(
    path: Path,
    key: Optional[str],
    data: dict,
    expected_key: str,
    check_hash: bool,
) -> EntryStatus:
    """Shared structural checks for one entry payload (both backends)."""
    job = data["job"] if isinstance(data.get("job"), dict) else {}
    application = job.get("application")
    label = job.get("label")
    if key != expected_key:
        return EntryStatus(
            path=path, key=key, application=application, label=label,
            problem=f"recorded key {str(key)[:16]}... does not match {expected_key[:16]}...",
        )
    if "result" not in data:
        return EntryStatus(
            path=path, key=key, application=application, label=label,
            problem="missing job/result sections",
        )
    try:
        restored = SimulationResult.from_dict(data["result"])
        if restored.to_dict() != data["result"]:
            raise ValueError("result payload does not round-trip")
    except (KeyError, TypeError, ValueError) as error:
        return EntryStatus(
            path=path, key=key, application=application, label=label,
            problem=f"corrupt result payload ({error})",
        )
    if check_hash:
        payload = data.get("hash_payload")
        if payload is None:
            return EntryStatus(
                path=path, key=key, application=application, label=label,
                problem="no hash payload recorded (written by a pre-hash store)",
            )
        digest = hash_payload_digest(payload)
        if digest != expected_key:
            return EntryStatus(
                path=path, key=key, application=application, label=label,
                problem=f"content hash mismatch (recomputed {digest[:16]}...)",
            )
    return EntryStatus(path=path, key=key, application=application, label=label)


# ---------------------------------------------------------------------------
# JSON backend scan
# ---------------------------------------------------------------------------

def _inspect_entry(path: Path, check_hash: bool) -> EntryStatus:
    """Classify one ``<key>.json`` entry file."""
    try:
        with path.open("r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        return EntryStatus(path=path, problem=f"unreadable JSON ({error})")
    if not isinstance(data, dict) or "job" not in data or "result" not in data:
        return EntryStatus(path=path, problem="missing job/result sections")
    job = data["job"] if isinstance(data["job"], dict) else {}
    key = job.get("key")
    if key != path.stem:
        return EntryStatus(
            path=path, key=key,
            application=job.get("application"), label=job.get("label"),
            problem=f"recorded key {str(key)[:16]}... does not match filename",
        )
    return _check_payload(path, key, data, path.stem, check_hash)


def _scan_json_store(root: Path, check_hashes: bool) -> StoreReport:
    report = StoreReport()
    for path in sorted(root.iterdir()):
        if path.is_dir():
            continue
        if path.name.startswith("_"):
            # Store-level metadata (e.g. the trace-generator provenance
            # stamp), not an entry and not a leftover.
            continue
        if path.suffix == ".json" and not path.name.startswith("."):
            report.entries.append(_inspect_entry(path, check_hashes))
        else:
            # Anything else in a store directory is a leftover (temp files
            # from interrupted writes, editor droppings).
            report.orphans.append(path)
    return report


# ---------------------------------------------------------------------------
# Segment backend scan
# ---------------------------------------------------------------------------

def _scan_segment_store(root: Path, check_hashes: bool) -> StoreReport:
    """Inspect a segment store without mutating it.

    Replays the on-disk index directly (not through the store class, whose
    recovery would repair the very damage this scan must report) and walks
    every segment for unindexed records, truncated tails, orphaned files
    and provenance mismatches.
    """
    from repro.campaign.segments import (
        INDEX_FILE,
        SEGMENT_META_FILE,
        SEGMENTS_DIR,
        parse_segment_number,
    )

    report = StoreReport()
    segments_dir = root / SEGMENTS_DIR
    index_path = root / INDEX_FILE

    store_provenance = None
    try:
        marker = json.loads((root / PROVENANCE_FILE).read_text(encoding="utf-8"))
        if isinstance(marker, dict) and isinstance(
            marker.get("trace_generator"), str
        ):
            store_provenance = marker["trace_generator"]
    except (OSError, ValueError):
        pass

    # Replay the index file leniently: report damage instead of stopping.
    entries: dict = {}
    if index_path.exists():
        try:
            blob = index_path.read_bytes()
        except OSError as error:
            report.entries.append(
                EntryStatus(path=index_path, problem=f"unreadable index ({error})")
            )
            blob = b""
        position = 0
        total = len(blob)
        while position < total:
            newline = blob.find(b"\n", position)
            if newline == -1:
                report.entries.append(
                    EntryStatus(
                        path=index_path,
                        problem=f"truncated index tail at byte {position} "
                        f"(reopen the store to recover)",
                    )
                )
                break
            raw = blob[position:newline]
            if raw:
                try:
                    entry = json.loads(raw.decode("utf-8"))
                    entries[entry["key"]] = (
                        entry["segment"],
                        int(entry["offset"]),
                        int(entry["length"]),
                    )
                except (ValueError, KeyError, TypeError):
                    report.entries.append(
                        EntryStatus(
                            path=index_path,
                            problem=f"unparseable index line at byte {position}",
                        )
                    )
            position = newline + 1

    # Segment inventory: sizes, foreign files.
    sizes: dict = {}
    if segments_dir.is_dir():
        for path in sorted(segments_dir.iterdir()):
            if path.is_dir() or parse_segment_number(path.name) is None:
                report.orphans.append(path)
                continue
            sizes[path.name] = path.stat().st_size

    # Check every index entry against its record bytes.
    referenced: set = set()
    covered: dict = {}  # segment name -> set of byte ranges claimed
    for key, (name, offset, length) in sorted(entries.items()):
        seg_path = segments_dir / name
        referenced.add(name)
        if name not in sizes:
            report.entries.append(
                EntryStatus(
                    path=seg_path, key=key,
                    problem="index references a missing segment",
                )
            )
            continue
        if sizes[name] < offset + length + 1:
            report.entries.append(
                EntryStatus(
                    path=seg_path, key=key,
                    problem=f"index points past segment end "
                    f"(offset {offset}+{length} > {sizes[name]}; "
                    f"reopen the store to recover)",
                )
            )
            continue
        covered.setdefault(name, set()).add((offset, length))
        try:
            with seg_path.open("rb") as handle:
                handle.seek(offset)
                blob = handle.read(length)
            record = json.loads(blob.decode("utf-8"))
        except (OSError, ValueError) as error:
            report.entries.append(
                EntryStatus(
                    path=seg_path, key=key,
                    problem=f"unreadable record at offset {offset} ({error})",
                )
            )
            continue
        if not isinstance(record, dict):
            report.entries.append(
                EntryStatus(
                    path=seg_path, key=key,
                    problem=f"index mismatch: no record object at offset {offset}",
                )
            )
            continue
        recorded_key = record.get("key")
        if recorded_key != key:
            report.entries.append(
                EntryStatus(
                    path=seg_path, key=key,
                    application=(record.get("job") or {}).get("application"),
                    label=(record.get("job") or {}).get("label"),
                    problem=f"index mismatch: record holds key "
                    f"{str(recorded_key)[:16]}...",
                )
            )
            continue
        report.entries.append(
            _check_payload(seg_path, key, record, key, check_hashes)
        )

    # Walk every segment for header sanity, unindexed records and tails.
    for name, size in sizes.items():
        seg_path = segments_dir / name
        claimed = covered.get(name, set())
        try:
            blob = seg_path.read_bytes()
        except OSError as error:
            report.entries.append(
                EntryStatus(path=seg_path, problem=f"unreadable segment ({error})")
            )
            continue
        position = 0
        saw_header = False
        has_records = bool(claimed)
        while position < len(blob):
            newline = blob.find(b"\n", position)
            if newline == -1:
                report.entries.append(
                    EntryStatus(
                        path=seg_path,
                        problem=f"truncated record tail at byte {position} "
                        f"(reopen the store to recover)",
                    )
                )
                break
            raw = blob[position:newline]
            if raw:
                try:
                    record = json.loads(raw.decode("utf-8"))
                except ValueError:
                    report.entries.append(
                        EntryStatus(
                            path=seg_path,
                            problem=f"unparseable record at byte {position}",
                        )
                    )
                    break
                if position == 0 and isinstance(record, dict) and (
                    "store_format" in record
                ):
                    saw_header = True
                    stamped = record.get("trace_generator")
                    if (
                        store_provenance is not None
                        and isinstance(stamped, str)
                        and stamped != store_provenance
                    ):
                        report.entries.append(
                            EntryStatus(
                                path=seg_path,
                                problem=f"segment provenance {stamped!r} "
                                f"disagrees with store marker "
                                f"{store_provenance!r}",
                            )
                        )
                elif isinstance(record, dict) and isinstance(
                    record.get("key"), str
                ):
                    has_records = True
                    if (position, len(raw)) not in claimed:
                        report.entries.append(
                            EntryStatus(
                                path=seg_path, key=record["key"],
                                problem=f"unindexed record at byte {position} "
                                f"(reopen the store to reindex)",
                            )
                        )
                else:
                    report.entries.append(
                        EntryStatus(
                            path=seg_path,
                            problem=f"foreign line at byte {position}",
                        )
                    )
            position = newline + 1
        if not saw_header:
            report.entries.append(
                EntryStatus(path=seg_path, problem="segment has no header line")
            )
        if not has_records and name not in referenced:
            # Header-only (or unreadable) segment nothing points at: an
            # orphan a gc may delete.
            report.orphans.append(seg_path)

    # Stray files in the store root (anything but metadata and the index).
    for path in sorted(root.iterdir()):
        if path.is_dir() or path.name.startswith("_"):
            continue
        if path.name == INDEX_FILE:
            continue
        report.orphans.append(path)
    # The meta file is metadata, never an orphan (covered by the "_" rule:
    # SEGMENT_META_FILE and PROVENANCE_FILE are underscore-prefixed).
    assert SEGMENT_META_FILE.startswith("_")
    return report


# ---------------------------------------------------------------------------
# Public operations
# ---------------------------------------------------------------------------

def scan_store(
    store: Union[BaseResultStore, str, Path], check_hashes: bool = False
) -> StoreReport:
    """Inspect every entry and stray file in a store (either backend)."""
    root = _store_root(store)
    if not root.is_dir():
        return StoreReport()
    if detect_backend(root) == "segment":
        return _scan_segment_store(root, check_hashes)
    return _scan_json_store(root, check_hashes)


def store_ls(store: Union[BaseResultStore, str, Path]) -> StoreReport:
    """List the entries of a store (no hash re-check)."""
    return scan_store(store, check_hashes=False)


def store_verify(store: Union[BaseResultStore, str, Path]) -> StoreReport:
    """Fully verify a store: structure, round-trip, and content hashes."""
    return scan_store(store, check_hashes=True)


def store_gc(
    store: Union[BaseResultStore, str, Path], dry_run: bool = False
) -> StoreReport:
    """Repair a store: drop orphans and unrecoverable entries.

    JSON backend: entries failing the *structural* checks (unreadable,
    wrong sections, key/filename mismatch, non-round-tripping result) are
    removed along with temp-file orphans; entries that merely predate
    hash-payload recording are kept, since their results are still
    loadable.

    Segment backend: crash damage (truncated tails, unindexed records) is
    repaired by the store's own recovery, index entries whose records are
    corrupt or mismatched are dropped from the index (``dropped_keys``;
    the append-only segment bytes are left in place), and orphaned files
    are deleted.

    Returns the report with ``removed``/``dropped_keys`` filled in.
    """
    root = _store_root(store)
    if not root.is_dir():
        return StoreReport()
    if detect_backend(root) == "segment":
        return _gc_segment_store(root, dry_run)
    report = scan_store(root, check_hashes=False)
    doomed = list(report.orphans) + [entry.path for entry in report.problems]
    for path in doomed:
        if not dry_run:
            path.unlink(missing_ok=True)
        report.removed.append(path)
    return report


def _gc_segment_store(root: Path, dry_run: bool) -> StoreReport:
    from repro.campaign.segments import SegmentResultStore

    report = scan_store(root, check_hashes=False)
    if dry_run:
        report.removed.extend(report.orphans)
        return report
    # 1. Let recovery repair crash damage (reindex unindexed records,
    #    truncate partial tails, rewrite a damaged index); loading the
    #    index is what triggers it.
    segment_store = SegmentResultStore(root)
    len(segment_store)
    # 2. Drop index entries whose records are structurally bad.
    rescanned = scan_store(root, check_hashes=False)
    bad_keys = {entry.key for entry in rescanned.problems if entry.key}
    if bad_keys:
        for key in sorted(bad_keys):
            report.dropped_keys.append(key)
        segment_store.drop_keys(bad_keys)
    segment_store.close()
    # 3. Delete orphaned files.
    for path in rescanned.orphans:
        path.unlink(missing_ok=True)
        report.removed.append(path)
    return report


def migrate_store(
    source: Union[BaseResultStore, str, Path],
    destination: Union[str, Path],
    backend: str,
) -> Tuple[int, int]:
    """Copy every entry of a store into a new store with another layout.

    The raw canonical payloads are copied (not re-derived), so the
    destination's records serialise byte-identically, and the source's
    trace-generator provenance stamp is copied verbatim -- a store can be
    migrated on any machine without reattributing its results.

    Returns ``(entries_copied, entries_skipped)`` (skipped = unreadable in
    the source; run ``store gc`` there first if this is non-zero).
    """
    src = (
        source
        if isinstance(source, BaseResultStore)
        else open_store(source, backend="auto")
    )
    destination = Path(destination)
    if destination.exists() and any(destination.iterdir()):
        raise ValueError(
            f"destination {destination} is not empty; migrate into a fresh "
            f"directory"
        )
    if destination.resolve() == src.root.resolve():
        raise ValueError("cannot migrate a store onto itself")
    dst = open_store(destination, backend=backend)
    provenance = src.recorded_provenance()
    if provenance is not None:
        dst.stamp_provenance(provenance)
    copied = 0
    total = len(src)
    for key, payload in src.iter_records():
        dst.put_record(key, payload)
        copied += 1
    dst.flush()
    dst.close()
    src.close()
    return copied, total - copied
