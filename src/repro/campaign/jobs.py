"""Content-addressed campaign jobs.

A :class:`Job` is the unit of work of a campaign: one simulation of one
workload under one configuration.  Its identity is a SHA-256 digest of the
canonical JSON form of the workload recipe and the simulation configuration,
so two jobs with the same hash are guaranteed to produce the same
:class:`~repro.core.results.SimulationResult` (the simulator is
deterministic), and a persisted result can be reused by any later campaign
that enumerates the same point -- the basis of ``--resume`` and incremental
grid extension.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass
from functools import cached_property
from typing import List, Optional, Sequence

from repro.config.parameters import ArchitectureConfig, SimulationConfig
from repro.core.sweep import PolicyPoint
from repro.workloads.suite import WorkloadRequest
from repro.workloads.synthetic import TRACE_GENERATOR_PROVENANCE

#: Display label used for the full-SRAM baseline job.
BASELINE_LABEL = "SRAM baseline"


def canonical_value(obj: object) -> object:
    """Recursively convert dataclasses/enums/sequences to JSON-able values.

    The conversion is *canonical*: the same logical object always produces
    the same nested structure, independent of dict ordering or identity, so
    the JSON dump (with sorted keys) is a stable hashing payload.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: canonical_value(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [canonical_value(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): canonical_value(value) for key, value in obj.items()}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalise {type(obj).__name__} for hashing")


@dataclass(frozen=True)
class Job:
    """One content-addressed simulation of a campaign.

    Attributes:
        workload: seeded recipe for regenerating the workload (picklable, so
            parallel workers rebuild the trace instead of receiving it).
        config: the full simulation configuration for this point.
        point_label: the sweep-point label (``50us/R.WB(32,32)``), or None
            for the full-SRAM baseline.
    """

    workload: WorkloadRequest
    config: SimulationConfig
    point_label: Optional[str] = None

    @property
    def application(self) -> str:
        """Application name this job simulates."""
        return self.workload.name

    @property
    def is_baseline(self) -> bool:
        """True for the full-SRAM baseline job of an application."""
        return self.point_label is None

    @property
    def label(self) -> str:
        """Human-readable label for progress messages."""
        return BASELINE_LABEL if self.is_baseline else self.point_label

    def key(self) -> str:
        """Content hash identifying this job (and its result) forever.

        The digest covers everything that influences the simulation output:
        the workload recipe (name, length scale, seed), the complete
        configuration (architecture geometry, cell technology, refresh
        policy, simulator seed), and the trace-generator provenance of this
        environment (numpy vs scalar fallback -- the two draw different,
        equally valid streams from the same recipe, so their results must
        never alias).
        """
        return self._digest

    def hash_payload(self) -> dict:
        """The canonical nested structure the job key is a digest of.

        Persisted alongside stored results so ``store verify`` can re-derive
        the content hash of an entry without reconstructing the original
        :class:`Job` objects.
        """
        return {
            "workload": canonical_value(self.workload),
            "config": canonical_value(self.config),
            "trace_generator": TRACE_GENERATOR_PROVENANCE,
        }

    @cached_property
    def _digest(self) -> str:
        # Memoised: the job is frozen, and canonicalising the nested config
        # is the expensive part (cached_property writes straight into
        # __dict__, bypassing the frozen-dataclass setattr guard).
        return hash_payload_digest(self.hash_payload())


def hash_payload_digest(payload: dict) -> str:
    """SHA-256 digest of a canonical job payload (the store's file key)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def enumerate_jobs(
    requests: Sequence[WorkloadRequest],
    points: Sequence[PolicyPoint],
    architecture: ArchitectureConfig,
) -> List[Job]:
    """Flatten a sweep into jobs: per application, the baseline then each point.

    The order matches the original serial ``run_sweep`` loop so progress
    output and result-dict insertion order are unchanged.
    """
    jobs: List[Job] = []
    baseline_config = SimulationConfig.sram(architecture)
    for request in requests:
        jobs.append(Job(workload=request, config=baseline_config))
        for point in points:
            jobs.append(
                Job(
                    workload=request,
                    config=point.simulation_config(architecture),
                    point_label=point.label,
                )
            )
    return jobs
