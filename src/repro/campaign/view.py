"""Store-backed sweep views: aggregate figures without the whole sweep in RAM.

:class:`StoreSweep` duck-types :class:`~repro.core.sweep.SweepResult` for
the figure/table/report layer while loading each
:class:`~repro.core.results.SimulationResult` from a
:class:`~repro.campaign.store.BaseResultStore` on demand: baselines are
pinned (one per application), point results live in a small LRU sized to
the access pattern of the figure code (which walks point-by-point across
applications).  A 100k-point campaign can therefore be aggregated with a
few dozen results resident at any moment -- no whole-sweep summary file,
no ``results`` dict holding every point.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.campaign.jobs import Job
from repro.campaign.store import BaseResultStore
from repro.core.results import SimulationResult
from repro.core.sweep import PolicyPoint, SweepResult

#: Default number of point results kept resident while aggregating.
DEFAULT_RESULT_CACHE = 64


class _LazyBaselines(Mapping):
    """Mapping facade over the per-application baseline keys.

    A full :class:`collections.abc.Mapping`, so everything a plain
    ``baselines`` dict supports (``values()``, ``get()``, ``items()``,
    equality, ...) works here too.  Membership, iteration and ``keys()``
    are overridden to consult only the key index -- they must not require
    loading any result -- while value access goes through the owning
    :class:`StoreSweep` so results land in its pinned baseline cache.
    """

    def __init__(self, view: "StoreSweep") -> None:
        self._view = view

    def __contains__(self, name: object) -> bool:
        return name in self._view._baseline_keys

    def __iter__(self) -> Iterator[str]:
        return iter(self._view._baseline_keys)

    def __len__(self) -> int:
        return len(self._view._baseline_keys)

    def __getitem__(self, name: str) -> SimulationResult:
        return self._view.baseline(name)

    def keys(self):
        return self._view._baseline_keys.keys()


class StoreSweep(SweepResult):
    """A ``SweepResult`` whose results live in a result store.

    Built from the campaign's job enumeration (which maps every
    (application, point) cell to its content-hash key) and the store those
    keys were committed to.  All ``SweepResult`` accessors and the
    ``normalised_*`` helpers work unchanged; only ``result``/``baseline``
    are overridden to load lazily.

    Raises :class:`KeyError` with the missing key when an accessed cell was
    never persisted (e.g. a campaign that was killed before completing).
    """

    def __init__(
        self,
        store: BaseResultStore,
        jobs: Sequence[Job],
        points: Sequence[PolicyPoint],
        result_cache: int = DEFAULT_RESULT_CACHE,
    ) -> None:
        super().__init__(points=list(points))
        self.store = store
        self._baseline_keys: "OrderedDict[str, str]" = OrderedDict()
        self._point_keys: Dict[Tuple[str, str], str] = {}
        for job in jobs:
            if job.is_baseline:
                self._baseline_keys.setdefault(job.application, job.key())
            else:
                self._point_keys.setdefault(
                    (job.application, job.point_label), job.key()
                )
        self._baseline_cache: Dict[str, SimulationResult] = {}
        self._result_cache: "OrderedDict[str, SimulationResult]" = OrderedDict()
        self._result_cache_max = max(1, result_cache)
        # Shadow the dataclass field: membership/iteration over
        # ``sweep.baselines`` must not require loading any result.
        self.baselines = _LazyBaselines(self)

    # -- lazy accessors ----------------------------------------------------------

    @property
    def applications(self) -> List[str]:
        """Applications present in the sweep, in job-enumeration order."""
        return list(self._baseline_keys)

    def baseline(self, application: str) -> SimulationResult:
        """The full-SRAM result of one application (pinned once loaded)."""
        cached = self._baseline_cache.get(application)
        if cached is None:
            key = self._baseline_keys[application]
            cached = self._load(key)
            self._baseline_cache[application] = cached
        return cached

    def result(self, application: str, point: PolicyPoint) -> SimulationResult:
        """The result of one application at one sweep point (LRU-cached)."""
        key = self._point_keys[(application, point.label)]
        cached = self._result_cache.get(key)
        if cached is not None:
            self._result_cache.move_to_end(key)
            return cached
        result = self._load(key)
        self._result_cache[key] = result
        if len(self._result_cache) > self._result_cache_max:
            self._result_cache.popitem(last=False)
        return result

    def _load(self, key: str) -> SimulationResult:
        result = self.store.get(key)
        if result is None:
            raise KeyError(
                f"result {key[:16]}... is not in store {self.store.root} "
                f"(incomplete campaign? run it to completion or resume it)"
            )
        return result

    def missing_keys(self) -> List[str]:
        """Keys of cells the store does not hold (empty when complete).

        Takes one ``store.keys()`` snapshot and diffs against it rather
        than probing ``key in store`` per cell: ``__contains__`` hits the
        filesystem on every call, which made completeness checks O(N)
        stat calls on large campaigns.
        """
        present = set(self.store.keys())
        wanted = list(self._baseline_keys.values()) + list(self._point_keys.values())
        return [key for key in wanted if key not in present]

    # -- materialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Materialise the full summary (defeats bounded memory; avoid at scale)."""
        return self.materialise().to_dict()

    def materialise(self) -> SweepResult:
        """Load everything into a plain in-memory :class:`SweepResult`."""
        sweep = SweepResult(points=list(self.points))
        for name in self.applications:
            sweep.baselines[name] = self.baseline(name)
            sweep.results[name] = {}
        for (name, label), key in self._point_keys.items():
            sweep.results[name][label] = self._load(key)
        return sweep
