"""The campaign engine: enumerate, (re)use, execute, assemble.

:func:`run_campaign` is the single entry point used by ``run_sweep``, the
CLI and the :class:`~repro.experiments.runner.ExperimentRunner`.  It
enumerates the sweep as content-addressed jobs, skips every job whose result
is already persisted (when resuming), executes the remainder through the
chosen executor, persists fresh results, and folds everything back into the
:class:`~repro.core.sweep.SweepResult` the figure/table layer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.executors import ParallelExecutor, SerialExecutor
from repro.campaign.jobs import Job, enumerate_jobs
from repro.campaign.store import ResultStore
from repro.config.parameters import ArchitectureConfig
from repro.config.presets import scaled_architecture
from repro.core.results import SimulationResult
from repro.core.sweep import PolicyPoint, SweepResult, default_policy_points
from repro.workloads.suite import WorkloadRequest


@dataclass
class CampaignStats:
    """How a campaign's jobs were satisfied.

    Attributes:
        total: number of jobs in the campaign.
        executed: jobs actually simulated this run.
        reused: jobs satisfied from the result store without simulating.
        duplicates: jobs sharing another job's hash, satisfied by its result.
    """

    total: int
    executed: int
    reused: int
    duplicates: int = 0

    def summary(self) -> str:
        """One-line human-readable summary."""
        text = (
            f"{self.total} jobs: {self.executed} simulated, "
            f"{self.reused} reused from store"
        )
        if self.duplicates:
            text += f", {self.duplicates} duplicates"
        return text


def make_executor(
    jobs: int = 1,
) -> Union[SerialExecutor, ParallelExecutor]:
    """The executor for a worker count: serial for 1, a process pool above."""
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    return SerialExecutor() if jobs == 1 else ParallelExecutor(jobs)


def run_campaign(
    requests: Sequence[WorkloadRequest],
    points: Optional[Sequence[PolicyPoint]] = None,
    architecture: Optional[ArchitectureConfig] = None,
    executor: Optional[Union[SerialExecutor, ParallelExecutor]] = None,
    store: Optional[Union[ResultStore, str, Path]] = None,
    resume: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Tuple[SweepResult, CampaignStats]:
    """Run (or resume) a sweep campaign.

    Args:
        requests: workload recipes, one per application.
        points: sweep points (defaults to the full Table 5.4 grid).
        architecture: chip geometry (defaults to the scaled preset).
        executor: how to run jobs (defaults to a :class:`SerialExecutor`).
        store: result store (or its directory) to persist results into.
        resume: when True and a store is given, skip jobs whose results are
            already persisted.
        progress: optional callback invoked with a message per job.

    Returns:
        The assembled :class:`SweepResult` and the :class:`CampaignStats`
        recording how many jobs were simulated versus reused.
    """
    arch = architecture if architecture is not None else scaled_architecture()
    grid = list(points) if points is not None else default_policy_points()
    if executor is None:
        executor = SerialExecutor()
    if store is not None and getattr(executor, "uses_prebuilt_workloads", False):
        # Pre-built traces are not described by the jobs' workload recipes;
        # persisting them would poison the store with wrong content hashes.
        raise ValueError(
            "cannot use a result store with pre-built workloads; pass "
            "WorkloadRequests and let the executor regenerate the traces"
        )
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    if store is not None:
        # Fail fast (before any simulation) when the store was written by
        # an environment with the other trace generator; resuming against
        # it could only recompute everything into a mixed store.
        store.check_provenance()

    jobs = enumerate_jobs(requests, grid, arch)
    results: Dict[str, SimulationResult] = {}
    pending: List[Job] = []
    scheduled: set = set()
    duplicates = 0
    for job in jobs:
        key = job.key()
        if key in scheduled or key in results:
            duplicates += 1  # duplicate request: one simulation serves all
            continue
        if resume and store is not None:
            cached = store.get(key)
            if cached is not None:
                results[key] = cached
                if progress is not None:
                    progress(f"{job.application}: {job.label} (cached)")
                continue
        pending.append(job)
        scheduled.add(key)

    for job, result in executor.run(pending, progress=progress):
        results[job.key()] = result
        if store is not None:
            store.put(job, result)

    sweep = SweepResult(points=grid)
    for job in jobs:
        result = results[job.key()]
        if job.is_baseline:
            sweep.baselines[job.application] = result
            sweep.results.setdefault(job.application, {})
        else:
            sweep.results.setdefault(job.application, {})[job.point_label] = result
    stats = CampaignStats(
        total=len(jobs),
        executed=len(pending),
        reused=len(jobs) - len(pending) - duplicates,
        duplicates=duplicates,
    )
    return sweep, stats
