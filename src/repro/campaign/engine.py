"""The campaign engine: enumerate, (re)use, execute, assemble -- streaming.

:func:`stream_campaign` is the streaming core used by ``run_sweep``, the
CLI and the :class:`~repro.experiments.runner.ExperimentRunner`.  It
enumerates the sweep as content-addressed jobs, yields every already
persisted result straight from the store (when resuming), executes the
remainder through the chosen executor as a completion-ordered stream, and
commits each fresh result to the store the moment it arrives -- one
``(job, result)`` pair at a time, never the whole sweep, so a 100k-point
campaign runs in bounded memory and a killed one loses at most the jobs in
flight.

:func:`run_campaign` keeps the classic batch interface on top: it drains
the stream into the :class:`~repro.core.sweep.SweepResult` the figure and
table layer consumes.  Callers that want bounded memory end to end iterate
the stream themselves and aggregate through a
:class:`~repro.campaign.view.StoreSweep`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.campaign.executors import ParallelExecutor, SerialExecutor
from repro.campaign.jobs import Job, enumerate_jobs
from repro.campaign.store import BaseResultStore, open_store
from repro.config.parameters import ArchitectureConfig
from repro.config.presets import scaled_architecture
from repro.core.results import SimulationResult
from repro.core.sweep import PolicyPoint, SweepResult, default_policy_points
from repro.workloads.suite import WorkloadRequest


@dataclass
class CampaignStats:
    """How a campaign's jobs were satisfied.

    Attributes:
        total: number of jobs in the campaign.
        executed: jobs actually simulated this run.
        reused: jobs satisfied from the result store without simulating.
        duplicates: jobs sharing another job's hash, satisfied by its result.
    """

    total: int
    executed: int
    reused: int
    duplicates: int = 0

    def summary(self) -> str:
        """One-line human-readable summary."""
        text = (
            f"{self.total} jobs: {self.executed} simulated, "
            f"{self.reused} reused from store"
        )
        if self.duplicates:
            text += f", {self.duplicates} duplicates"
        return text


def make_executor(
    jobs: int = 1,
) -> Union[SerialExecutor, ParallelExecutor]:
    """The executor for a worker count: serial for 1, a process pool above."""
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    return SerialExecutor() if jobs == 1 else ParallelExecutor(jobs)


class CampaignStream:
    """A lazily executed campaign: iterate to drive it, one result at a time.

    Iterating yields ``(job, result)`` for every *unique* job of the
    campaign -- cached results first (during enumeration), then fresh
    results in completion order, each committed to the store before it is
    yielded.  Nothing is retained between yields, so memory stays bounded
    regardless of grid size; :attr:`stats` is populated once the stream is
    exhausted.

    Attributes:
        jobs: the full job enumeration (including duplicate-hash jobs).
        store: the opened result store, or None.
        stats: the :class:`CampaignStats`, available after exhaustion.
    """

    def __init__(
        self,
        jobs: List[Job],
        executor: Union[SerialExecutor, ParallelExecutor],
        store: Optional[BaseResultStore],
        resume: bool,
        progress: Optional[Callable[[str], None]],
    ) -> None:
        self.jobs = jobs
        self.store = store
        self.stats: Optional[CampaignStats] = None
        self._executor = executor
        self._resume = resume
        self._progress = progress

    def __iter__(self) -> Iterator[Tuple[Job, SimulationResult]]:
        executed = 0
        reused = 0
        duplicates = 0
        pending: List[Job] = []
        seen: set = set()
        try:
            for job in self.jobs:
                key = job.key()
                if key in seen:
                    duplicates += 1  # duplicate request: one simulation serves all
                    continue
                seen.add(key)
                if self._resume and self.store is not None:
                    cached = self.store.get(key)
                    if cached is not None:
                        reused += 1
                        if self._progress is not None:
                            self._progress(f"{job.application}: {job.label} (cached)")
                        yield job, cached
                        continue
                pending.append(job)
            for job, result in self._executor.run(pending, progress=self._progress):
                if self.store is not None:
                    self.store.put(job, result)
                executed += 1
                yield job, result
        finally:
            if self.store is not None:
                self.store.flush()
        self.stats = CampaignStats(
            total=len(self.jobs),
            executed=executed,
            reused=reused,
            duplicates=duplicates,
        )


def stream_campaign(
    requests: Sequence[WorkloadRequest],
    points: Optional[Sequence[PolicyPoint]] = None,
    architecture: Optional[ArchitectureConfig] = None,
    executor: Optional[Union[SerialExecutor, ParallelExecutor]] = None,
    store: Optional[Union[BaseResultStore, str, Path]] = None,
    resume: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    store_backend: str = "auto",
) -> CampaignStream:
    """Set up a streaming campaign (see :class:`CampaignStream`).

    Args:
        requests: workload recipes, one per application.
        points: sweep points (defaults to the full Table 5.4 grid).
        architecture: chip geometry (defaults to the scaled preset).
        executor: how to run jobs (defaults to a :class:`SerialExecutor`).
        store: result store (or its directory) to persist results into.
        resume: when True and a store is given, skip jobs whose results are
            already persisted.
        progress: optional callback invoked with a message per job.
        store_backend: backend for a store given as a directory --
            ``json``, ``segment`` or ``auto`` (detect, default json).

    Returns:
        The :class:`CampaignStream`; iterate it to execute the campaign.
    """
    arch = architecture if architecture is not None else scaled_architecture()
    grid = list(points) if points is not None else default_policy_points()
    if executor is None:
        executor = SerialExecutor()
    if store is not None and getattr(executor, "uses_prebuilt_workloads", False):
        # Pre-built traces are not described by the jobs' workload recipes;
        # persisting them would poison the store with wrong content hashes.
        raise ValueError(
            "cannot use a result store with pre-built workloads; pass "
            "WorkloadRequests and let the executor regenerate the traces"
        )
    if store is not None and not isinstance(store, BaseResultStore):
        store = open_store(store, backend=store_backend)
    if store is not None:
        # Fail fast (before any simulation) when the store was written by
        # an environment with the other trace generator; resuming against
        # it could only recompute everything into a mixed store.
        store.check_provenance()

    jobs = enumerate_jobs(requests, grid, arch)
    return CampaignStream(jobs, executor, store, resume, progress)


def assemble_sweep(
    jobs: Sequence[Job],
    points: Sequence[PolicyPoint],
    results: Dict[str, SimulationResult],
) -> SweepResult:
    """Fold per-job results back into the figure layer's ``SweepResult``."""
    sweep = SweepResult(points=list(points))
    for job in jobs:
        result = results[job.key()]
        if job.is_baseline:
            sweep.baselines[job.application] = result
            sweep.results.setdefault(job.application, {})
        else:
            sweep.results.setdefault(job.application, {})[job.point_label] = result
    return sweep


def run_campaign(
    requests: Sequence[WorkloadRequest],
    points: Optional[Sequence[PolicyPoint]] = None,
    architecture: Optional[ArchitectureConfig] = None,
    executor: Optional[Union[SerialExecutor, ParallelExecutor]] = None,
    store: Optional[Union[BaseResultStore, str, Path]] = None,
    resume: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    store_backend: str = "auto",
) -> Tuple[SweepResult, CampaignStats]:
    """Run (or resume) a sweep campaign and materialise the whole sweep.

    A thin wrapper over :func:`stream_campaign` that drains the stream into
    an in-memory :class:`SweepResult` -- the right interface up to a few
    thousand points.  For 100k-point campaigns, iterate the stream and
    aggregate through :class:`~repro.campaign.view.StoreSweep` instead.

    Returns:
        The assembled :class:`SweepResult` and the :class:`CampaignStats`
        recording how many jobs were simulated versus reused.
    """
    grid = list(points) if points is not None else default_policy_points()
    stream = stream_campaign(
        requests,
        points=grid,
        architecture=architecture,
        executor=executor,
        store=store,
        resume=resume,
        progress=progress,
        store_backend=store_backend,
    )
    results: Dict[str, SimulationResult] = {}
    for job, result in stream:
        results[job.key()] = result
    sweep = assemble_sweep(stream.jobs, grid, results)
    return sweep, stream.stats
