"""Pluggable campaign executors.

Both executors consume a list of :class:`~repro.campaign.jobs.Job` and yield
``(job, SimulationResult)`` pairs *as each job completes*, so the campaign
engine can commit results to the store incrementally with bounded memory:

* :class:`SerialExecutor` runs jobs in-process.  It can be seeded with
  already-built workloads (the classic ``run_sweep`` path) and otherwise
  regenerates them from the job's :class:`WorkloadRequest`, caching per
  application so the 43 points of one application share one trace.
* :class:`ParallelExecutor` fans jobs out over a *persistent*
  :class:`concurrent.futures.ProcessPoolExecutor`: the pool is created
  lazily on first use and reused across ``run`` calls, so repeated
  campaigns (a resumed sweep, a service answering queries) pay the
  fork-and-import cost once.  Only the tiny picklable jobs (recipe +
  config) cross the process boundary; each worker rebuilds the workload
  from its seed, so results are bit-identical to a serial run while the
  campaign scales with cores.

Work is dealt in small chunks with work-stealing refill: the per-workload
grouping is computed once (:func:`group_jobs_by_workload`), each free
worker pulls the next chunk from the workload group with the most backlog,
and at most a bounded number of chunks are in flight -- no worker idles
behind a pre-assigned giant batch, no 100k-job campaign materialises all
its futures (or their results) at once, and a slow consumer of the result
iterator back-pressures submission instead of buffering unboundedly.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import (
    Callable,
    Deque,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.campaign.jobs import Job
from repro.config.parameters import ArchitectureConfig
from repro.core.results import SimulationResult
from repro.core.simulator import RefrintSimulator
from repro.workloads.suite import ApplicationWorkload, WorkloadRequest

#: Optional callback receiving a human-readable message per job.
ProgressFn = Callable[[str], None]

#: Per-process LRU of regenerated workloads: trace generation is pure in
#: (request, architecture), so consecutive jobs of the same application reuse
#: one trace -- in the parent for serial runs and in each worker for parallel
#: ones.  Jobs are enumerated contiguously per application, so a handful of
#: entries captures nearly all reuse; the bound keeps long-lived processes
#: (notebooks, services) from pinning every trace ever generated.
_WORKLOAD_CACHE: "OrderedDict[Tuple[WorkloadRequest, ArchitectureConfig], ApplicationWorkload]" = (
    OrderedDict()
)
_WORKLOAD_CACHE_MAX = 4

#: Upper bound on jobs per submitted chunk.  Small enough that a completed
#: chunk's results are a bounded buffer and stealing stays fine-grained,
#: large enough to amortise the per-future pickling overhead.
CHUNK_CAP = 32


def build_workload(job: Job) -> ApplicationWorkload:
    """Regenerate (or fetch the cached) workload for one job."""
    cache_key = (job.workload, job.config.architecture)
    workload = _WORKLOAD_CACHE.get(cache_key)
    if workload is None:
        workload = job.workload.build(job.config.architecture)
        _WORKLOAD_CACHE[cache_key] = workload
        if len(_WORKLOAD_CACHE) > _WORKLOAD_CACHE_MAX:
            _WORKLOAD_CACHE.popitem(last=False)
    else:
        _WORKLOAD_CACHE.move_to_end(cache_key)
    return workload


def execute_job(job: Job) -> SimulationResult:
    """Run one job to completion (the worker-process entry point)."""
    return RefrintSimulator(job.config).run(build_workload(job))


def execute_job_batch(jobs: Sequence[Job]) -> "list[SimulationResult]":
    """Run a batch of jobs in one worker (all sharing one workload key).

    Batches are chunks of one workload group
    (:func:`group_jobs_by_workload`), so the first job regenerates (or
    finds cached) the chunk's trace and the rest reuse it -- the
    worker-side memoisation that keeps a many-point sweep from rebuilding
    the same application's trace once per point.
    """
    return [execute_job(job) for job in jobs]


def group_jobs_by_workload(
    jobs: Sequence[Job],
) -> "OrderedDict[Tuple[WorkloadRequest, ArchitectureConfig], List[Job]]":
    """Group jobs by (workload recipe, architecture), preserving job order.

    Computed **once** per campaign and reused for every pool refill -- the
    grouping is a full pass over the job list, which must not be repeated
    each time a worker asks for another chunk.
    """
    grouped: "OrderedDict[Tuple[WorkloadRequest, ArchitectureConfig], List[Job]]" = (
        OrderedDict()
    )
    for job in jobs:
        grouped.setdefault((job.workload, job.config.architecture), []).append(job)
    return grouped


def batch_jobs_by_workload(
    jobs: Sequence[Job],
    max_workers: int,
    groups: Optional[Mapping] = None,
) -> "list[list[Job]]":
    """Split jobs into per-workload batches (static pre-split form).

    Jobs sharing a (workload recipe, architecture) key land in the same
    batch; large groups are split into up to ``max_workers`` batches so a
    single-application campaign still spreads over the whole pool, and the
    submission order of jobs within a group is preserved.  ``groups``
    accepts a precomputed :func:`group_jobs_by_workload` mapping so callers
    that already grouped the jobs don't pay a second pass.

    The streaming executor no longer pre-splits (it deals bounded chunks
    with work-stealing refill); this remains for callers that want a static
    partition of a job list.
    """
    grouped = groups if groups is not None else group_jobs_by_workload(jobs)
    batches: "list[list[Job]]" = []
    for group in grouped.values():
        num_batches = min(max_workers, len(group))
        size = -(-len(group) // num_batches)  # ceil division
        batches.extend(
            group[start:start + size] for start in range(0, len(group), size)
        )
    return batches


def plan_chunk(
    queues: Sequence[Deque[Job]], max_workers: int, chunk_cap: int = CHUNK_CAP
) -> "list[Job]":
    """Steal the next chunk of jobs from the group with the most backlog.

    Pulls from the front of the longest queue (preserving within-group
    submission order) and sizes the chunk so every group still splits into
    roughly ``2 x max_workers`` chunks -- fine-grained enough that a free
    worker always finds work, coarse enough to amortise submission cost.
    Returns an empty list when every queue is drained.
    """
    queue = max(queues, key=len, default=None)
    if queue is None or not queue:
        return []
    size = max(1, min(chunk_cap, -(-len(queue) // (2 * max_workers))))
    return [queue.popleft() for _ in range(min(size, len(queue)))]


class SerialExecutor:
    """Run campaign jobs one after another in the calling process."""

    def __init__(
        self, workloads: Optional[Mapping[str, ApplicationWorkload]] = None
    ) -> None:
        """``workloads`` short-circuits regeneration for pre-built traces."""
        self._workloads = dict(workloads) if workloads is not None else None

    @property
    def uses_prebuilt_workloads(self) -> bool:
        """True when results may come from caller-supplied traces.

        Pre-built traces are not described by the jobs' workload recipes, so
        their results must never be persisted under the jobs' content hashes
        (the engine refuses a store in that case).
        """
        return self._workloads is not None

    def run(
        self, jobs: Sequence[Job], progress: Optional[ProgressFn] = None
    ) -> Iterator[Tuple[Job, SimulationResult]]:
        """Yield ``(job, result)`` in submission order."""
        try:
            for job in jobs:
                if progress is not None:
                    progress(f"{job.application}: {job.label}")
                if self._workloads is not None and job.application in self._workloads:
                    workload = self._workloads[job.application]
                    result = RefrintSimulator(job.config).run(workload)
                else:
                    result = execute_job(job)
                yield job, result
        finally:
            # Traces are only worth caching within one campaign; release the
            # memory so long-lived parent processes don't pin dead workloads.
            # (Parallel workers' caches are bounded and die with the pool.)
            _WORKLOAD_CACHE.clear()


class ParallelExecutor:
    """Run campaign jobs across a persistent pool of worker processes."""

    def __init__(self, max_workers: int, chunk_cap: int = CHUNK_CAP) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if chunk_cap < 1:
            raise ValueError("chunk_cap must be >= 1")
        self.max_workers = max_workers
        self.chunk_cap = chunk_cap
        self._pool: Optional[ProcessPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """Create the worker pool on first use; reuse it afterwards."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            # Reap the workers when the executor object is dropped without
            # an explicit shutdown() (wait=False: never block a GC).
            self._finalizer = weakref.finalize(
                self, ProcessPoolExecutor.shutdown, self._pool, wait=False
            )
        return self._pool

    def shutdown(self) -> None:
        """Stop the worker pool (a later ``run`` recreates it)."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def run(
        self, jobs: Sequence[Job], progress: Optional[ProgressFn] = None
    ) -> Iterator[Tuple[Job, SimulationResult]]:
        """Yield ``(job, result)`` in completion order, streaming.

        The per-workload grouping is computed once; chunks of at most
        ``chunk_cap`` jobs are dealt to the pool with work-stealing refill
        (each completion triggers one steal from the group with the most
        backlog) and at most ``2 x max_workers`` chunks are in flight.
        Because refill happens between yields, a consumer that stops
        pulling stops submission too -- natural backpressure.
        """
        if not jobs:
            return
        queues: List[Deque[Job]] = [
            deque(group) for group in group_jobs_by_workload(jobs).values()
        ]
        pool = self._ensure_pool()
        max_inflight = 2 * self.max_workers
        future_to_chunk = {}
        try:
            while len(future_to_chunk) < max_inflight:
                chunk = plan_chunk(queues, self.max_workers, self.chunk_cap)
                if not chunk:
                    break
                future_to_chunk[pool.submit(execute_job_batch, chunk)] = chunk
            while future_to_chunk:
                done, _ = wait(future_to_chunk, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk = future_to_chunk.pop(future)
                    results = future.result()
                    # Refill before yielding so workers stay busy while the
                    # consumer processes this chunk's results.
                    while len(future_to_chunk) < max_inflight:
                        refill = plan_chunk(queues, self.max_workers, self.chunk_cap)
                        if not refill:
                            break
                        future_to_chunk[pool.submit(execute_job_batch, refill)] = refill
                    for job, result in zip(chunk, results):
                        if progress is not None:
                            progress(f"{job.application}: {job.label}")
                        yield job, result
        finally:
            # Consumer abandoned the iterator (or a worker raised): drop
            # whatever has not started; running chunks finish and are
            # discarded, the pool itself stays warm for the next run.
            for future in future_to_chunk:
                future.cancel()
