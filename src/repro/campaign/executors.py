"""Pluggable campaign executors.

Both executors consume a list of :class:`~repro.campaign.jobs.Job` and yield
``(job, SimulationResult)`` pairs:

* :class:`SerialExecutor` runs jobs in-process.  It can be seeded with
  already-built workloads (the classic ``run_sweep`` path) and otherwise
  regenerates them from the job's :class:`WorkloadRequest`, caching per
  application so the 43 points of one application share one trace.
* :class:`ParallelExecutor` fans jobs out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Only the tiny picklable
  job (recipe + config) crosses the process boundary; each worker rebuilds
  the workload from its seed, so results are bit-identical to a serial run
  while the campaign scales with cores.
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.campaign.jobs import Job
from repro.config.parameters import ArchitectureConfig
from repro.core.results import SimulationResult
from repro.core.simulator import RefrintSimulator
from repro.workloads.suite import ApplicationWorkload, WorkloadRequest

#: Optional callback receiving a human-readable message per job.
ProgressFn = Callable[[str], None]

#: Per-process LRU of regenerated workloads: trace generation is pure in
#: (request, architecture), so consecutive jobs of the same application reuse
#: one trace -- in the parent for serial runs and in each worker for parallel
#: ones.  Jobs are enumerated contiguously per application, so a handful of
#: entries captures nearly all reuse; the bound keeps long-lived processes
#: (notebooks, services) from pinning every trace ever generated.
_WORKLOAD_CACHE: "OrderedDict[Tuple[WorkloadRequest, ArchitectureConfig], ApplicationWorkload]" = (
    OrderedDict()
)
_WORKLOAD_CACHE_MAX = 4


def build_workload(job: Job) -> ApplicationWorkload:
    """Regenerate (or fetch the cached) workload for one job."""
    cache_key = (job.workload, job.config.architecture)
    workload = _WORKLOAD_CACHE.get(cache_key)
    if workload is None:
        workload = job.workload.build(job.config.architecture)
        _WORKLOAD_CACHE[cache_key] = workload
        if len(_WORKLOAD_CACHE) > _WORKLOAD_CACHE_MAX:
            _WORKLOAD_CACHE.popitem(last=False)
    else:
        _WORKLOAD_CACHE.move_to_end(cache_key)
    return workload


def execute_job(job: Job) -> SimulationResult:
    """Run one job to completion (the worker-process entry point)."""
    return RefrintSimulator(job.config).run(build_workload(job))


def execute_job_batch(jobs: Sequence[Job]) -> "list[SimulationResult]":
    """Run a batch of jobs in one worker (all sharing one workload key).

    Batches are formed by :func:`batch_jobs_by_workload`, so the first job
    regenerates (or finds cached) the batch's trace and the rest reuse it
    -- the worker-side memoisation that keeps a many-point sweep from
    rebuilding the same application's trace once per point.
    """
    return [execute_job(job) for job in jobs]


def batch_jobs_by_workload(
    jobs: Sequence[Job], max_workers: int
) -> "list[list[Job]]":
    """Group jobs by workload so each batch regenerates one trace at most.

    Jobs sharing a (workload recipe, architecture) key land in the same
    batch -- the expensive part of a job's setup is the seeded trace
    regeneration, which is identical for every point of one application.
    Large groups are split into up to ``max_workers`` batches so a
    single-application campaign still spreads over the whole pool; the
    submission order of jobs within a group is preserved.
    """
    grouped: "OrderedDict[Tuple[WorkloadRequest, ArchitectureConfig], list[Job]]" = (
        OrderedDict()
    )
    for job in jobs:
        grouped.setdefault((job.workload, job.config.architecture), []).append(job)
    batches: "list[list[Job]]" = []
    for group in grouped.values():
        num_batches = min(max_workers, len(group))
        size = -(-len(group) // num_batches)  # ceil division
        batches.extend(
            group[start:start + size] for start in range(0, len(group), size)
        )
    return batches


class SerialExecutor:
    """Run campaign jobs one after another in the calling process."""

    def __init__(
        self, workloads: Optional[Mapping[str, ApplicationWorkload]] = None
    ) -> None:
        """``workloads`` short-circuits regeneration for pre-built traces."""
        self._workloads = dict(workloads) if workloads is not None else None

    @property
    def uses_prebuilt_workloads(self) -> bool:
        """True when results may come from caller-supplied traces.

        Pre-built traces are not described by the jobs' workload recipes, so
        their results must never be persisted under the jobs' content hashes
        (the engine refuses a store in that case).
        """
        return self._workloads is not None

    def run(
        self, jobs: Sequence[Job], progress: Optional[ProgressFn] = None
    ) -> Iterator[Tuple[Job, SimulationResult]]:
        """Yield ``(job, result)`` in submission order."""
        try:
            for job in jobs:
                if progress is not None:
                    progress(f"{job.application}: {job.label}")
                if self._workloads is not None and job.application in self._workloads:
                    workload = self._workloads[job.application]
                    result = RefrintSimulator(job.config).run(workload)
                else:
                    result = execute_job(job)
                yield job, result
        finally:
            # Traces are only worth caching within one campaign; release the
            # memory so long-lived parent processes don't pin dead workloads.
            # (Parallel workers die with their pool, reclaiming theirs.)
            _WORKLOAD_CACHE.clear()


class ParallelExecutor:
    """Run campaign jobs across a pool of worker processes."""

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def run(
        self, jobs: Sequence[Job], progress: Optional[ProgressFn] = None
    ) -> Iterator[Tuple[Job, SimulationResult]]:
        """Yield ``(job, result)`` in completion order.

        Jobs are submitted as per-workload batches
        (:func:`batch_jobs_by_workload`): a worker regenerates a batch's
        trace once and runs every point of the batch against it, instead of
        pulling arbitrary jobs and thrashing its workload cache when a
        campaign interleaves more applications than the cache holds.
        """
        batches = batch_jobs_by_workload(jobs, self.max_workers)
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            future_to_batch = {
                pool.submit(execute_job_batch, batch): batch for batch in batches
            }
            pending = set(future_to_batch)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    batch = future_to_batch[future]
                    results = future.result()
                    for job, result in zip(batch, results):
                        if progress is not None:
                            progress(f"{job.application}: {job.label}")
                        yield job, result
