"""Pluggable campaign executors.

Both executors consume a list of :class:`~repro.campaign.jobs.Job` and yield
``(job, SimulationResult)`` pairs:

* :class:`SerialExecutor` runs jobs in-process.  It can be seeded with
  already-built workloads (the classic ``run_sweep`` path) and otherwise
  regenerates them from the job's :class:`WorkloadRequest`, caching per
  application so the 43 points of one application share one trace.
* :class:`ParallelExecutor` fans jobs out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Only the tiny picklable
  job (recipe + config) crosses the process boundary; each worker rebuilds
  the workload from its seed, so results are bit-identical to a serial run
  while the campaign scales with cores.
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.campaign.jobs import Job
from repro.config.parameters import ArchitectureConfig
from repro.core.results import SimulationResult
from repro.core.simulator import RefrintSimulator
from repro.workloads.suite import ApplicationWorkload, WorkloadRequest

#: Optional callback receiving a human-readable message per job.
ProgressFn = Callable[[str], None]

#: Per-process LRU of regenerated workloads: trace generation is pure in
#: (request, architecture), so consecutive jobs of the same application reuse
#: one trace -- in the parent for serial runs and in each worker for parallel
#: ones.  Jobs are enumerated contiguously per application, so a handful of
#: entries captures nearly all reuse; the bound keeps long-lived processes
#: (notebooks, services) from pinning every trace ever generated.
_WORKLOAD_CACHE: "OrderedDict[Tuple[WorkloadRequest, ArchitectureConfig], ApplicationWorkload]" = (
    OrderedDict()
)
_WORKLOAD_CACHE_MAX = 4


def build_workload(job: Job) -> ApplicationWorkload:
    """Regenerate (or fetch the cached) workload for one job."""
    cache_key = (job.workload, job.config.architecture)
    workload = _WORKLOAD_CACHE.get(cache_key)
    if workload is None:
        workload = job.workload.build(job.config.architecture)
        _WORKLOAD_CACHE[cache_key] = workload
        if len(_WORKLOAD_CACHE) > _WORKLOAD_CACHE_MAX:
            _WORKLOAD_CACHE.popitem(last=False)
    else:
        _WORKLOAD_CACHE.move_to_end(cache_key)
    return workload


def execute_job(job: Job) -> SimulationResult:
    """Run one job to completion (the worker-process entry point)."""
    return RefrintSimulator(job.config).run(build_workload(job))


class SerialExecutor:
    """Run campaign jobs one after another in the calling process."""

    def __init__(
        self, workloads: Optional[Mapping[str, ApplicationWorkload]] = None
    ) -> None:
        """``workloads`` short-circuits regeneration for pre-built traces."""
        self._workloads = dict(workloads) if workloads is not None else None

    @property
    def uses_prebuilt_workloads(self) -> bool:
        """True when results may come from caller-supplied traces.

        Pre-built traces are not described by the jobs' workload recipes, so
        their results must never be persisted under the jobs' content hashes
        (the engine refuses a store in that case).
        """
        return self._workloads is not None

    def run(
        self, jobs: Sequence[Job], progress: Optional[ProgressFn] = None
    ) -> Iterator[Tuple[Job, SimulationResult]]:
        """Yield ``(job, result)`` in submission order."""
        try:
            for job in jobs:
                if progress is not None:
                    progress(f"{job.application}: {job.label}")
                if self._workloads is not None and job.application in self._workloads:
                    workload = self._workloads[job.application]
                    result = RefrintSimulator(job.config).run(workload)
                else:
                    result = execute_job(job)
                yield job, result
        finally:
            # Traces are only worth caching within one campaign; release the
            # memory so long-lived parent processes don't pin dead workloads.
            # (Parallel workers die with their pool, reclaiming theirs.)
            _WORKLOAD_CACHE.clear()


class ParallelExecutor:
    """Run campaign jobs across a pool of worker processes."""

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def run(
        self, jobs: Sequence[Job], progress: Optional[ProgressFn] = None
    ) -> Iterator[Tuple[Job, SimulationResult]]:
        """Yield ``(job, result)`` in completion order.

        All jobs are submitted up front and the pool assigns them to
        whichever worker frees up, so each worker may rebuild several
        applications' traces (bounded by its per-process workload cache);
        regeneration cost is small relative to simulation cost.
        """
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            future_to_job = {pool.submit(execute_job, job): job for job in jobs}
            pending = set(future_to_job)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    job = future_to_job[future]
                    if progress is not None:
                        progress(f"{job.application}: {job.label}")
                    yield job, future.result()
