"""Campaign engine: parallel, resumable execution of simulation sweeps.

The Table 5.4 grid is embarrassingly parallel -- every (application, policy
point) pair is an independent simulation -- yet the original ``run_sweep``
executed the whole grid serially in one process and recomputed everything on
each invocation.  This package turns a sweep into a *campaign*:

* :mod:`repro.campaign.jobs` enumerates the grid as a flat list of
  content-addressed :class:`~repro.campaign.jobs.Job` objects (config hash x
  workload recipe);
* :mod:`repro.campaign.executors` runs jobs through pluggable executors --
  in-process :class:`~repro.campaign.executors.SerialExecutor` or the
  process-pool :class:`~repro.campaign.executors.ParallelExecutor`, which
  regenerates each seeded workload inside the worker so results are
  bit-identical to a serial run;
* :mod:`repro.campaign.store` persists every result to a JSON
  :class:`~repro.campaign.store.ResultStore` keyed by job hash, so resumed
  or extended campaigns only simulate points they have never seen;
* :mod:`repro.campaign.engine` ties it together:
  :func:`~repro.campaign.engine.run_campaign` returns the familiar
  :class:`~repro.core.sweep.SweepResult` plus execution statistics.
"""

from repro.campaign.engine import CampaignStats, run_campaign
from repro.campaign.executors import ParallelExecutor, SerialExecutor, execute_job
from repro.campaign.jobs import Job, enumerate_jobs
from repro.campaign.maintenance import store_gc, store_ls, store_verify
from repro.campaign.store import ResultStore, StoreProvenanceError

__all__ = [
    "CampaignStats",
    "Job",
    "ParallelExecutor",
    "ResultStore",
    "SerialExecutor",
    "StoreProvenanceError",
    "enumerate_jobs",
    "execute_job",
    "run_campaign",
    "store_gc",
    "store_ls",
    "store_verify",
]
