"""Campaign engine: parallel, resumable, streaming execution of sweeps.

The Table 5.4 grid is embarrassingly parallel -- every (application, policy
point) pair is an independent simulation -- yet the original ``run_sweep``
executed the whole grid serially in one process and recomputed everything on
each invocation.  This package turns a sweep into a *campaign*:

* :mod:`repro.campaign.jobs` enumerates the grid as a flat list of
  content-addressed :class:`~repro.campaign.jobs.Job` objects (config hash x
  workload recipe);
* :mod:`repro.campaign.executors` runs jobs through pluggable executors --
  in-process :class:`~repro.campaign.executors.SerialExecutor` or the
  persistent-pool :class:`~repro.campaign.executors.ParallelExecutor`,
  which deals work-stealing chunks to worker processes and streams results
  back in completion order, bit-identical to a serial run;
* :mod:`repro.campaign.store` and :mod:`repro.campaign.segments` persist
  every result keyed by job hash behind one
  :class:`~repro.campaign.store.BaseResultStore` interface: one JSON file
  per result (:class:`~repro.campaign.store.ResultStore`) or indexed
  append-only segments
  (:class:`~repro.campaign.segments.SegmentResultStore`, the right fit at
  10k+ points) -- resumed or extended campaigns only simulate points they
  have never seen;
* :mod:`repro.campaign.engine` ties it together:
  :func:`~repro.campaign.engine.stream_campaign` yields ``(job, result)``
  as each completes (bounded memory at any grid size) and
  :func:`~repro.campaign.engine.run_campaign` drains that stream into the
  familiar :class:`~repro.core.sweep.SweepResult` plus execution
  statistics;
* :mod:`repro.campaign.view` aggregates straight from a store:
  :class:`~repro.campaign.view.StoreSweep` duck-types ``SweepResult`` for
  the figure/table layer while loading results on demand.
"""

from repro.campaign.engine import (
    CampaignStats,
    CampaignStream,
    run_campaign,
    stream_campaign,
)
from repro.campaign.executors import (
    ParallelExecutor,
    SerialExecutor,
    execute_job,
    group_jobs_by_workload,
)
from repro.campaign.jobs import Job, enumerate_jobs
from repro.campaign.maintenance import (
    migrate_store,
    store_gc,
    store_ls,
    store_verify,
)
from repro.campaign.segments import SegmentResultStore
from repro.campaign.store import (
    BaseResultStore,
    ResultStore,
    StoreProvenanceError,
    detect_backend,
    open_store,
)
from repro.campaign.view import StoreSweep

__all__ = [
    "BaseResultStore",
    "CampaignStats",
    "CampaignStream",
    "Job",
    "ParallelExecutor",
    "ResultStore",
    "SegmentResultStore",
    "SerialExecutor",
    "StoreProvenanceError",
    "StoreSweep",
    "detect_backend",
    "enumerate_jobs",
    "execute_job",
    "group_jobs_by_workload",
    "migrate_store",
    "open_store",
    "run_campaign",
    "store_gc",
    "store_ls",
    "store_verify",
    "stream_campaign",
]
