"""Indexed, append-only segment store for campaign results.

The per-file JSON layout (:class:`~repro.campaign.store.ResultStore`) pays
one ``open``/``write``/``rename`` per result and a directory scan per
resume -- fine at hundreds of points, a syscall storm at 100k.  This module
replaces it with the classic log-structured layout:

``<root>/segments/seg-00000001.jsonl``
    Append-only JSONL segments, size-capped (:data:`DEFAULT_SEGMENT_BYTES`).
    The first line of every segment is a header stamping the segment with
    the store format and this environment's trace-generator provenance;
    every following line is one complete entry record (the same canonical
    payload the JSON backend writes, compactly serialised).

``<root>/index.jsonl``
    The compact on-disk index: one line per committed record, mapping the
    job-hash key to ``(segment, offset, length)``.  Appended *after* the
    segment append is flushed, so the index never references bytes that are
    not on disk.

``<root>/_segment_store.json``
    Store meta (format version, configured segment cap) -- also how
    :func:`~repro.campaign.store.detect_backend` recognises the layout.

Crash safety is recovery-based rather than rename-based: on open the store
replays the index, drops entries pointing past a segment's end (the record
bytes were lost), re-indexes complete records that never got their index
line (crash between the two appends), and truncates a partial record off
the active segment's tail.  A result is therefore either fully durable or
cleanly absent -- a resumed campaign re-runs exactly the lost jobs.

Writes go through a single in-process writer (a lock around two buffered
appends); a persistent worker pool streams results back to the campaign
parent, which is that single writer.  Two processes must not append to one
segment store concurrently (the JSON backend remains the right choice for
that pattern).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.campaign.store import BaseResultStore, atomic_write_text
from repro.core.results import SimulationResult

#: Subdirectory holding the append-only segment files.
SEGMENTS_DIR = "segments"

#: The on-disk index file (one compact JSON line per committed record).
INDEX_FILE = "index.jsonl"

#: Store meta file; its presence identifies the segment layout.
SEGMENT_META_FILE = "_segment_store.json"

#: Format tag written into the meta file and every segment header.
SEGMENT_FORMAT = "refrint-segment-v1"

#: Default size cap per segment file (new records roll to a fresh segment
#: once the active one exceeds this).  4 MiB keeps any single recovery scan
#: and any ``gc`` rewrite small while a 100k-point campaign still fits in a
#: few hundred segments.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


def segment_name(number: int) -> str:
    """Canonical file name of segment ``number`` (1-based)."""
    return f"seg-{number:08d}.jsonl"


def parse_segment_number(name: str) -> Optional[int]:
    """Inverse of :func:`segment_name`; None for foreign file names."""
    if not (name.startswith("seg-") and name.endswith(".jsonl")):
        return None
    digits = name[len("seg-"):-len(".jsonl")]
    return int(digits) if digits.isdigit() and len(digits) == 8 else None


class SegmentResultStore(BaseResultStore):
    """Append-only segment store behind the common ResultStore interface.

    The in-memory index (key -> segment/offset/length) is loaded once on
    first access and kept exact by ``put``, so ``keys()``/``len()``/``in``
    are O(1) dictionary operations -- no directory scan, ever.
    """

    backend_name = "segment"

    def __init__(
        self,
        root: Union[str, Path],
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        super().__init__(root)
        if segment_max_bytes < 1:
            raise ValueError("segment_max_bytes must be >= 1")
        self.segment_max_bytes = segment_max_bytes
        self._lock = threading.Lock()
        self._index: Optional[Dict[str, Tuple[str, int, int]]] = None
        self._active_segment: Optional[str] = None
        self._active_size = 0
        self._segment_handle = None
        self._index_handle = None

    # -- paths -------------------------------------------------------------------

    @property
    def segments_dir(self) -> Path:
        """Directory holding the segment files."""
        return self.root / SEGMENTS_DIR

    @property
    def index_path(self) -> Path:
        """Path of the on-disk index."""
        return self.root / INDEX_FILE

    def segment_path(self, name: str) -> Path:
        """Path of one segment file."""
        return self.segments_dir / name

    def location_for(self, key: str) -> Optional[Tuple[Path, int, int]]:
        """Where one key's record lives: ``(segment path, offset, length)``."""
        self._ensure_loaded()
        entry = self._index.get(key)
        if entry is None:
            return None
        name, offset, length = entry
        return self.segment_path(name), offset, length

    # -- mapping interface ---------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        self._ensure_loaded()
        return key in self._index

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._index)

    def keys(self) -> Iterator[str]:
        """Job keys currently persisted in the store (sorted)."""
        self._ensure_loaded()
        return iter(sorted(self._index))

    def get(self, key: str) -> Optional[SimulationResult]:
        """Load one result, or None when absent or unreadable."""
        record = self._read_record(key)
        if record is None:
            return None
        try:
            return SimulationResult.from_dict(record["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def _read_record(self, key: str) -> Optional[dict]:
        location = self.location_for(key)
        if location is None:
            return None
        path, offset, length = location
        try:
            with path.open("rb") as handle:
                handle.seek(offset)
                blob = handle.read(length)
            record = json.loads(blob.decode("utf-8"))
        except (OSError, ValueError):
            return None
        return record if isinstance(record, dict) else None

    def iter_records(self) -> Iterator[Tuple[str, dict]]:
        """Yield ``(key, payload)`` per entry, skipping unreadable records.

        Records are yielded in key order; the payload omits the envelope
        ``key`` field so it matches the JSON backend's file payload exactly.
        """
        self._ensure_loaded()
        for key in sorted(self._index):
            record = self._read_record(key)
            if record is None or record.get("key") != key:
                continue
            payload = {
                name: value for name, value in record.items() if name != "key"
            }
            yield key, payload

    # -- write path ----------------------------------------------------------------

    def put_record(self, key: str, payload: dict) -> Path:
        """Append one record and its index line through the single writer."""
        record = dict(payload)
        record["key"] = key
        line = json.dumps(record, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
        with self._lock:
            self._ensure_loaded()
            self._ensure_writable()
            if self._active_size > self.segment_max_bytes:
                self._roll_segment()
            offset = self._active_size
            self._segment_handle.write(line + b"\n")
            self._segment_handle.flush()
            self._active_size = offset + len(line) + 1
            index_line = json.dumps(
                {
                    "key": key,
                    "segment": self._active_segment,
                    "offset": offset,
                    "length": len(line),
                },
                sort_keys=True,
                separators=(",", ":"),
            ).encode("utf-8")
            self._index_handle.write(index_line + b"\n")
            self._index_handle.flush()
            self._index[key] = (self._active_segment, offset, len(line))
            return self.segment_path(self._active_segment)

    def flush(self) -> None:
        """Flush buffered segment/index appends to the OS."""
        with self._lock:
            if self._segment_handle is not None:
                self._segment_handle.flush()
            if self._index_handle is not None:
                self._index_handle.flush()

    def close(self) -> None:
        """Close the writer handles (reopened transparently on next put)."""
        with self._lock:
            if self._segment_handle is not None:
                self._segment_handle.close()
                self._segment_handle = None
            if self._index_handle is not None:
                self._index_handle.close()
                self._index_handle = None

    def drop_keys(self, keys) -> int:
        """Remove entries from the index (their segment bytes stay in place).

        Used by ``store gc`` to retire entries whose records are corrupt:
        the append-only segments are never rewritten, but the index -- the
        store's source of truth for membership -- is atomically rewritten
        without them, so a resumed campaign re-runs those jobs.  Returns
        the number of entries actually dropped.
        """
        doomed = set(keys)
        with self._lock:
            self._ensure_loaded()
            present = doomed & set(self._index)
            if not present:
                return 0
            for key in present:
                del self._index[key]
            lines = [
                json.dumps(
                    {"key": key, "segment": seg, "offset": off, "length": length},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                for key, (seg, off, length) in self._index.items()
            ]
            if self._index_handle is not None:
                self._index_handle.close()
                self._index_handle = None
            atomic_write_text(
                self.index_path,
                "".join(line + "\n" for line in lines),
                prefix=".index-",
            )
            return len(present)

    # -- loading and recovery ------------------------------------------------------

    def refresh_index(self) -> None:
        """Drop the in-memory index (replayed from disk on next access)."""
        self.close()
        self._index = None
        self._active_segment = None
        self._active_size = 0

    def _ensure_loaded(self) -> None:
        if self._index is not None:
            return
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        meta_path = self.root / SEGMENT_META_FILE
        if not meta_path.exists():
            atomic_write_text(
                meta_path,
                json.dumps(
                    {
                        "format": SEGMENT_FORMAT,
                        "segment_max_bytes": self.segment_max_bytes,
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n",
                prefix=".meta-",
            )
        self._index = {}
        self._recover()

    def _ensure_writable(self) -> None:
        """Open (or reopen) the append handles for the active segment."""
        if self._segment_handle is not None:
            return
        if self._active_segment is None:
            self._active_segment = segment_name(self._next_segment_number())
            self._active_size = 0
        path = self.segment_path(self._active_segment)
        fresh = not path.exists() or path.stat().st_size == 0
        self._segment_handle = path.open("ab")
        if fresh:
            header = json.dumps(
                self._segment_header(self._active_segment),
                sort_keys=True,
                separators=(",", ":"),
            ).encode("utf-8")
            self._segment_handle.write(header + b"\n")
            self._segment_handle.flush()
            self._active_size = len(header) + 1
        self._index_handle = self.index_path.open("ab")

    def _segment_header(self, name: str) -> dict:
        from repro.workloads.synthetic import TRACE_GENERATOR_PROVENANCE

        return {
            "segment": name,
            "store_format": SEGMENT_FORMAT,
            "trace_generator": TRACE_GENERATOR_PROVENANCE,
        }

    def _next_segment_number(self) -> int:
        numbers = [
            parse_segment_number(path.name)
            for path in self.segments_dir.glob("seg-*.jsonl")
        ]
        numbers = [number for number in numbers if number is not None]
        return max(numbers, default=0) + 1

    def _roll_segment(self) -> None:
        """Start a fresh segment (called with the lock held)."""
        if self._segment_handle is not None:
            self._segment_handle.close()
            self._segment_handle = None
        self._active_segment = segment_name(self._next_segment_number())
        self._active_size = 0
        path = self.segment_path(self._active_segment)
        self._segment_handle = path.open("ab")
        header = json.dumps(
            self._segment_header(self._active_segment),
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        self._segment_handle.write(header + b"\n")
        self._segment_handle.flush()
        self._active_size = len(header) + 1

    def _recover(self) -> None:
        """Replay the index, repair crash damage, pick the active segment.

        Three kinds of damage are possible after a crash (or an external
        truncation) and all three are repaired here:

        * the index references bytes past a segment's end -- the record was
          lost; the entry is dropped (the job will be re-run on resume);
        * a segment holds complete records past the indexed extent -- the
          crash hit between the segment append and the index append; the
          records are re-indexed (nothing is re-run);
        * a segment's final record is a partial line -- it is truncated off
          so the next append starts at a clean record boundary.
        """
        index_entries, index_dirty = self._replay_index_file()
        sizes: Dict[str, int] = {}
        for path in sorted(self.segments_dir.glob("seg-*.jsonl")):
            if parse_segment_number(path.name) is not None:
                sizes[path.name] = path.stat().st_size

        # Drop entries whose bytes are gone (missing or shortened segment).
        dropped = False
        for key, (name, offset, length) in list(index_entries.items()):
            if sizes.get(name, 0) < offset + length + 1:
                del index_entries[key]
                dropped = True

        # Scan every segment's unindexed tail: re-index complete records,
        # truncate a partial final record.
        recovered: list = []
        for name, size in sizes.items():
            indexed_end = max(
                (
                    offset + length + 1
                    for (seg, offset, length) in index_entries.values()
                    if seg == name
                ),
                default=0,
            )
            recovered.extend(self._scan_tail(name, indexed_end, size, index_entries))

        if index_dirty or dropped:
            # The index file disagrees with what survived: rewrite it so the
            # next open replays clean state (atomic, so a crash here is safe).
            lines = [
                json.dumps(
                    {"key": key, "segment": seg, "offset": off, "length": length},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                for key, (seg, off, length) in index_entries.items()
            ]
            atomic_write_text(
                self.index_path,
                "".join(line + "\n" for line in lines),
                prefix=".index-",
            )
        elif recovered:
            # Clean index, but some committed records never got their index
            # line: append the recovered entries.
            with self.index_path.open("ab") as handle:
                for key in recovered:
                    seg, off, length = index_entries[key]
                    handle.write(
                        json.dumps(
                            {
                                "key": key,
                                "segment": seg,
                                "offset": off,
                                "length": length,
                            },
                            sort_keys=True,
                            separators=(",", ":"),
                        ).encode("utf-8")
                        + b"\n"
                    )

        self._index = index_entries
        # Resume appending to the highest-numbered segment if it has room.
        names = sorted(sizes)
        if names:
            last = names[-1]
            size = self.segment_path(last).stat().st_size
            if size <= self.segment_max_bytes:
                self._active_segment = last
                self._active_size = size

    def _replay_index_file(self) -> Tuple[Dict[str, Tuple[str, int, int]], bool]:
        """Read index.jsonl; returns (entries, dirty flag).

        ``dirty`` is set when the file holds a partial or unparseable line
        (crash mid index append) -- recovery then rewrites it from the
        surviving entries.
        """
        entries: Dict[str, Tuple[str, int, int]] = {}
        dirty = False
        try:
            blob = self.index_path.read_bytes()
        except OSError:
            return entries, False
        position = 0
        total = len(blob)
        while position < total:
            newline = blob.find(b"\n", position)
            if newline == -1:
                dirty = True  # partial final line (crash mid index append)
                break
            raw = blob[position:newline]
            if raw:
                try:
                    entry = json.loads(raw.decode("utf-8"))
                    key = entry["key"]
                    name = entry["segment"]
                    offset = int(entry["offset"])
                    length = int(entry["length"])
                except (ValueError, KeyError, TypeError):
                    dirty = True
                    break
                entries[key] = (name, offset, length)
            position = newline + 1
        return entries, dirty

    def _scan_tail(
        self,
        name: str,
        start: int,
        size: int,
        index_entries: Dict[str, Tuple[str, int, int]],
    ) -> list:
        """Re-index complete unindexed records; truncate a partial tail.

        Returns the keys recovered from this segment.
        """
        if start >= size:
            return []
        path = self.segment_path(name)
        try:
            with path.open("rb") as handle:
                handle.seek(start)
                blob = handle.read()
        except OSError:
            return []
        recovered = []
        truncate_at: Optional[int] = None
        relative = 0
        total = len(blob)
        while relative < total:
            newline = blob.find(b"\n", relative)
            absolute = start + relative
            if newline == -1:
                truncate_at = absolute  # partial final record
                break
            raw = blob[relative:newline]
            if raw:
                try:
                    record = json.loads(raw.decode("utf-8"))
                except ValueError:
                    # Mid-file corruption: stop indexing here.  If it is the
                    # final line, cut it off; otherwise leave the bytes for
                    # ``store verify`` to report.
                    if newline + 1 >= total:
                        truncate_at = absolute
                    break
                if (
                    absolute == 0
                    and isinstance(record, dict)
                    and "store_format" in record
                ):
                    pass  # segment header, not a record
                elif isinstance(record, dict) and isinstance(record.get("key"), str):
                    key = record["key"]
                    if key not in index_entries:
                        recovered.append(key)
                    index_entries[key] = (name, absolute, len(raw))
            relative = newline + 1
        if truncate_at is not None:
            try:
                with path.open("r+b") as handle:
                    handle.truncate(truncate_at)
            except OSError:
                pass
        return recovered
