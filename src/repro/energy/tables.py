"""Technology energy tables (the CACTI / McPAT substitute).

The paper obtains timing, dynamic energy and leakage power from CACTI (for
the SRAM / eDRAM arrays) and McPAT (cores, network) at 32 nm LOP, 1 GHz and
330 K.  Neither tool is available here, so this module provides calibrated
tables that preserve the structural properties the paper's evaluation relies
on (Table 5.2 and Sections 5-6):

* SRAM and eDRAM have the same access time and access energy;
* eDRAM leakage power is one quarter of SRAM leakage power;
* refreshing a line costs the same energy as accessing it and takes one
  access time (pipelined, one line per cycle);
* the shared L3 dominates on-chip memory energy (roughly 60 %);
* the L1s are dominated by dynamic energy (roughly 90 % dynamic, about 1 %
  refresh), so there is little refresh energy to recover there;
* for the low-voltage manycore the paper targets, leakage dominates the
  SRAM memory-hierarchy energy.

Absolute values are nanojoules per access and watts per cache *instance*
(one private cache, or one L3 bank).  Every figure the paper reports is
normalised to the full-SRAM baseline, so only these ratios matter for the
reproduction; EXPERIMENTS.md records the resulting paper-vs-measured
comparison.

Scaled geometries
-----------------

The scaled architecture preset shrinks cache capacities and retention
periods by a common factor purely to make pure-Python simulation fast.  A
scaled cache *represents* the full-size one, so leakage power is **not**
rescaled with capacity: execution time, access counts and refresh counts all
shrink together in a scaled run, which keeps the dynamic : leakage : refresh
proportions of the full-size system.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.config.parameters import ArchitectureConfig, CacheGeometry, CellTechnology

#: Leakage ratio of eDRAM relative to SRAM for equal capacity (Table 5.2).
EDRAM_LEAKAGE_RATIO: float = 0.25

#: Joules per nanojoule, for converting table entries during accounting.
NANOJOULE: float = 1e-9


@dataclass(frozen=True)
class CacheEnergyTable:
    """Per-cache energy characteristics for one technology.

    Attributes:
        read_energy_nj: dynamic energy of one read access (whole line).
        write_energy_nj: dynamic energy of one write access.
        refresh_energy_nj: energy to refresh one line (equal to the read
            access energy for eDRAM; never used for SRAM).
        leakage_power_w: static power of one cache instance (one private
            cache or one L3 bank).
    """

    read_energy_nj: float
    write_energy_nj: float
    refresh_energy_nj: float
    leakage_power_w: float

    def scaled_leakage(self, factor: float) -> "CacheEnergyTable":
        """Return a copy with leakage power multiplied by ``factor``."""
        return replace(self, leakage_power_w=self.leakage_power_w * factor)


@dataclass(frozen=True)
class TechnologyTables:
    """Complete set of energy tables for one simulation point.

    The on-chip caches are either all SRAM or all eDRAM (the paper compares a
    full-SRAM baseline against a full-eDRAM proposal); DRAM, cores and the
    network are technology independent.
    """

    caches: Dict[str, CacheEnergyTable]
    dram_access_energy_nj: float
    core_active_power_w: float
    core_idle_power_w: float
    core_leakage_power_w: float
    router_hop_energy_nj: float
    link_hop_energy_nj: float

    def cache(self, level: str) -> CacheEnergyTable:
        """Return the table for ``level`` ("l1i", "l1d", "l2", "l3")."""
        if level not in self.caches:
            raise KeyError(f"no energy table for cache level {level!r}")
        return self.caches[level]


# Calibrated per-instance SRAM tables.
#
# Leakage values give an aggregate chip leakage of roughly
#   16 * (0.0012 + 0.0018) W  (L1I + L1D)   ~ 0.05 W
#   16 * 0.084 W              (L2)          ~ 1.34 W
#   16 * 0.194 W              (L3 banks)    ~ 3.10 W
# i.e. about 4.5 W, dominated by the shared L3, so that for a typical
# 16-thread workload (a) leakage is roughly 4-6x the dynamic memory energy,
# (b) the L3 carries about 60 % of on-chip memory energy, and (c) the L1s
# remain about 90 % dynamic -- the three ratios Section 6 quotes.
_SRAM_TABLES: Dict[str, CacheEnergyTable] = {
    "l1i": CacheEnergyTable(
        read_energy_nj=0.030, write_energy_nj=0.030,
        refresh_energy_nj=0.030, leakage_power_w=0.0012,
    ),
    "l1d": CacheEnergyTable(
        read_energy_nj=0.030, write_energy_nj=0.033,
        refresh_energy_nj=0.030, leakage_power_w=0.0018,
    ),
    "l2": CacheEnergyTable(
        read_energy_nj=0.060, write_energy_nj=0.066,
        refresh_energy_nj=0.060, leakage_power_w=0.084,
    ),
    "l3": CacheEnergyTable(
        read_energy_nj=0.120, write_energy_nj=0.132,
        refresh_energy_nj=0.120, leakage_power_w=0.194,
    ),
}


def sram_tables() -> Dict[str, CacheEnergyTable]:
    """Per-level SRAM energy tables (one entry per cache instance)."""
    return dict(_SRAM_TABLES)


def edram_tables() -> Dict[str, CacheEnergyTable]:
    """Per-level eDRAM tables: same access energy, one-quarter leakage."""
    return {
        level: table.scaled_leakage(EDRAM_LEAKAGE_RATIO)
        for level, table in _SRAM_TABLES.items()
    }


def default_tables(technology: CellTechnology) -> TechnologyTables:
    """Build the full technology tables for a simulation point.

    Args:
        technology: SRAM for the baseline hierarchy, eDRAM for the proposal.
    """
    caches = (
        sram_tables() if technology is CellTechnology.SRAM else edram_tables()
    )
    return TechnologyTables(
        caches=caches,
        dram_access_energy_nj=2.0,
        core_active_power_w=0.18,
        core_idle_power_w=0.05,
        core_leakage_power_w=0.06,
        router_hop_energy_nj=0.008,
        link_hop_energy_nj=0.005,
    )


def geometry_for_level(architecture: ArchitectureConfig, level: str) -> CacheGeometry:
    """Return the :class:`CacheGeometry` of ``level`` in ``architecture``."""
    geometries = {
        "l1i": architecture.l1i,
        "l1d": architecture.l1d,
        "l2": architecture.l2,
        "l3": architecture.l3_bank,
    }
    if level not in geometries:
        raise KeyError(f"unknown cache level {level!r}")
    return geometries[level]


def instances_for_level(architecture: ArchitectureConfig, level: str) -> int:
    """Number of physical instances of ``level`` on the chip.

    L1s and L2s are private (one per core); the L3 has one bank per torus
    vertex.
    """
    if level in ("l1i", "l1d", "l2"):
        return architecture.num_cores
    if level == "l3":
        return architecture.num_l3_banks
    raise KeyError(f"unknown cache level {level!r}")
