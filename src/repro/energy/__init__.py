"""Energy modelling: technology tables, per-component accounting, system model."""

from repro.energy.accounting import EnergyAccount, EnergyBreakdown
from repro.energy.model import SystemEnergyModel
from repro.energy.tables import (
    CacheEnergyTable,
    TechnologyTables,
    default_tables,
)

__all__ = [
    "CacheEnergyTable",
    "EnergyAccount",
    "EnergyBreakdown",
    "SystemEnergyModel",
    "TechnologyTables",
    "default_tables",
]
