"""System energy model.

The simulator produces raw activity counters (accesses per level, refreshes,
network hops, DRAM accesses, busy cycles per core) and an execution time in
cycles.  :class:`SystemEnergyModel` converts those into an
:class:`~repro.energy.accounting.EnergyAccount` using the technology tables,
mirroring the paper's use of CACTI/McPAT numbers on top of SESC statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.parameters import ArchitectureConfig, CellTechnology
from repro.energy.accounting import EnergyAccount
from repro.energy.tables import (
    NANOJOULE,
    TechnologyTables,
    default_tables,
    instances_for_level,
)
from repro.utils.statistics import Counter

#: Counter names the model understands, per cache level prefix.
READ_SUFFIX = "_reads"
WRITE_SUFFIX = "_writes"
REFRESH_SUFFIX = "_refreshes"

#: Cache levels carrying their own activity counters.
CACHE_LEVELS = ("l1i", "l1d", "l2", "l3")


@dataclass(frozen=True)
class ActivitySummary:
    """Raw activity of one run, as produced by the simulator.

    Attributes:
        counters: event counts; the model reads ``<level>_reads``,
            ``<level>_writes`` and ``<level>_refreshes`` for each cache
            level, plus ``dram_accesses``, ``network_router_hops`` and
            ``network_link_hops``.
        execution_cycles: end-to-end execution time in cycles.
        busy_core_cycles: sum over cores of cycles spent executing (not
            stalled on memory); used to split core energy between active and
            idle power.
    """

    counters: Counter
    execution_cycles: int
    busy_core_cycles: int


class SystemEnergyModel:
    """Convert activity counters into energy, per the technology tables."""

    def __init__(
        self,
        architecture: ArchitectureConfig,
        technology: CellTechnology,
        tables: TechnologyTables | None = None,
    ) -> None:
        self.architecture = architecture
        self.technology = technology
        self.tables = tables if tables is not None else default_tables(technology)

    def account_for(self, activity: ActivitySummary) -> EnergyAccount:
        """Build a full energy account for one run's activity."""
        account = EnergyAccount()
        seconds = self.architecture.seconds_from_cycles(activity.execution_cycles)
        self._add_cache_energy(account, activity, seconds)
        self._add_dram_energy(account, activity)
        self._add_core_energy(account, activity, seconds)
        self._add_network_energy(account, activity)
        return account

    # -- pieces -------------------------------------------------------------

    def _add_cache_energy(
        self, account: EnergyAccount, activity: ActivitySummary, seconds: float
    ) -> None:
        for level in CACHE_LEVELS:
            table = self.tables.cache(level)
            reads = activity.counters.get(level + READ_SUFFIX)
            writes = activity.counters.get(level + WRITE_SUFFIX)
            refreshes = activity.counters.get(level + REFRESH_SUFFIX)
            dynamic = (
                reads * table.read_energy_nj + writes * table.write_energy_nj
            ) * NANOJOULE
            refresh = refreshes * table.refresh_energy_nj * NANOJOULE
            instances = instances_for_level(self.architecture, level)
            leakage = table.leakage_power_w * instances * seconds
            account.add_dynamic(level, dynamic)
            account.add_leakage(level, leakage)
            if self.technology is CellTechnology.EDRAM:
                account.add_refresh(level, refresh)
            elif refreshes:
                raise ValueError("an SRAM hierarchy must not report refreshes")

    def _add_dram_energy(
        self, account: EnergyAccount, activity: ActivitySummary
    ) -> None:
        accesses = activity.counters.get("dram_accesses")
        account.add_dram_access(
            accesses * self.tables.dram_access_energy_nj * NANOJOULE
        )

    def _add_core_energy(
        self, account: EnergyAccount, activity: ActivitySummary, seconds: float
    ) -> None:
        busy_seconds = self.architecture.seconds_from_cycles(
            activity.busy_core_cycles
        )
        total_core_seconds = seconds * self.architecture.num_cores
        idle_seconds = max(0.0, total_core_seconds - busy_seconds)
        active = self.tables.core_active_power_w * busy_seconds
        idle = self.tables.core_idle_power_w * idle_seconds
        leakage = (
            self.tables.core_leakage_power_w
            * self.architecture.num_cores
            * seconds
        )
        account.add_core(active + idle + leakage)

    def _add_network_energy(
        self, account: EnergyAccount, activity: ActivitySummary
    ) -> None:
        router_hops = activity.counters.get("network_router_hops")
        link_hops = activity.counters.get("network_link_hops")
        energy = (
            router_hops * self.tables.router_hop_energy_nj
            + link_hops * self.tables.link_hop_energy_nj
        ) * NANOJOULE
        account.add_network(energy)
