"""Per-component energy accounting.

The paper reports the memory-hierarchy energy split in two ways (Section 6):

* by *level*: L1, L2, L3 and DRAM (Fig. 6.1);
* by *component*: on-chip dynamic, on-chip leakage, on-chip refresh and DRAM
  (Fig. 6.2);

plus the *total system* energy including cores and network (Fig. 6.3).  The
:class:`EnergyAccount` here records every contribution with both its level
and its component so that all three views can be produced from one run.

The activity counters an account is built from are produced by the staged
simulation fast path: refresh counts arrive as bulk deltas from the
controllers' vectorized group sweeps over the cache state arrays, and
access counts are incremented with pre-interned keys on the protocol's
per-access path -- the accounting layer itself only ever sees the final
per-run totals, so the energy numbers are independent of which cache
backend (array or object) produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

#: Cache-hierarchy levels tracked by the account.
MEMORY_LEVELS: Tuple[str, ...] = ("l1", "l2", "l3", "dram")

#: Energy components tracked by the account.
COMPONENTS: Tuple[str, ...] = ("dynamic", "leakage", "refresh", "dram")

#: Non-memory parts of the system (for the Fig. 6.3 total-energy view).
SYSTEM_PARTS: Tuple[str, ...] = ("core", "network")


def _level_of_cache(cache_level: str) -> str:
    """Collapse the per-cache levels (l1i/l1d) onto the reporting levels."""
    if cache_level in ("l1i", "l1d", "l1"):
        return "l1"
    if cache_level in ("l2", "l3", "dram"):
        return cache_level
    raise ValueError(f"unknown cache level {cache_level!r}")


@dataclass
class EnergyBreakdown:
    """An immutable snapshot of an account, in joules.

    Attributes:
        by_level: memory energy keyed by reporting level (l1/l2/l3/dram).
        by_component: memory energy keyed by component
            (dynamic/leakage/refresh/dram).
        system: non-memory energy keyed by part (core/network).
    """

    by_level: Dict[str, float] = field(default_factory=dict)
    by_component: Dict[str, float] = field(default_factory=dict)
    system: Dict[str, float] = field(default_factory=dict)

    def memory_total(self) -> float:
        """Total memory-hierarchy energy (L1 + L2 + L3 + DRAM)."""
        return sum(self.by_level.get(level, 0.0) for level in MEMORY_LEVELS)

    def system_total(self) -> float:
        """Total system energy (memory + cores + network)."""
        return self.memory_total() + sum(
            self.system.get(part, 0.0) for part in SYSTEM_PARTS
        )

    def level_fraction(self, level: str) -> float:
        """Fraction of memory energy spent at ``level``."""
        total = self.memory_total()
        if total == 0:
            return 0.0
        return self.by_level.get(level, 0.0) / total

    def component_fraction(self, component: str) -> float:
        """Fraction of memory energy spent in ``component``."""
        total = self.memory_total()
        if total == 0:
            return 0.0
        return self.by_component.get(component, 0.0) / total


class EnergyAccount:
    """Mutable accumulator of energy contributions for one simulation run.

    All amounts are in joules.  Memory contributions are tagged with both a
    cache level and a component; core and network energy are tracked
    separately so the memory-only figures are unaffected by them.
    """

    def __init__(self) -> None:
        self._memory: Dict[Tuple[str, str], float] = {}
        self._system: Dict[str, float] = {part: 0.0 for part in SYSTEM_PARTS}

    # -- memory hierarchy -------------------------------------------------

    def add_memory(self, cache_level: str, component: str, joules: float) -> None:
        """Add ``joules`` of ``component`` energy at ``cache_level``.

        ``cache_level`` may be any of l1i/l1d/l1/l2/l3/dram; l1i and l1d are
        folded into the l1 reporting level.
        """
        if component not in COMPONENTS:
            raise ValueError(f"unknown energy component {component!r}")
        if joules < 0:
            raise ValueError("energy contributions must be non-negative")
        level = _level_of_cache(cache_level)
        key = (level, component)
        self._memory[key] = self._memory.get(key, 0.0) + joules

    def add_dynamic(self, cache_level: str, joules: float) -> None:
        """Add dynamic (access) energy at ``cache_level``."""
        self.add_memory(cache_level, "dynamic", joules)

    def add_leakage(self, cache_level: str, joules: float) -> None:
        """Add leakage energy at ``cache_level``."""
        self.add_memory(cache_level, "leakage", joules)

    def add_refresh(self, cache_level: str, joules: float) -> None:
        """Add refresh energy at ``cache_level``."""
        self.add_memory(cache_level, "refresh", joules)

    def add_dram_access(self, joules: float) -> None:
        """Add main-memory access energy (level dram, component dram)."""
        self.add_memory("dram", "dram", joules)

    # -- rest of the system ----------------------------------------------

    def add_core(self, joules: float) -> None:
        """Add core (pipeline + core leakage) energy."""
        if joules < 0:
            raise ValueError("energy contributions must be non-negative")
        self._system["core"] += joules

    def add_network(self, joules: float) -> None:
        """Add on-chip network (router + link) energy."""
        if joules < 0:
            raise ValueError("energy contributions must be non-negative")
        self._system["network"] += joules

    # -- queries -----------------------------------------------------------

    def memory_total(self) -> float:
        """Total memory-hierarchy energy so far."""
        return sum(self._memory.values())

    def system_total(self) -> float:
        """Total system energy so far (memory + cores + network)."""
        return self.memory_total() + sum(self._system.values())

    def level_total(self, level: str) -> float:
        """Memory energy at one reporting level (l1/l2/l3/dram)."""
        return sum(
            value for (lvl, _), value in self._memory.items() if lvl == level
        )

    def component_total(self, component: str) -> float:
        """Memory energy of one component (dynamic/leakage/refresh/dram)."""
        return sum(
            value for (_, comp), value in self._memory.items() if comp == component
        )

    def merge(self, other: "EnergyAccount") -> None:
        """Fold another account (e.g. from a second run phase) into this one."""
        for key, value in other._memory.items():
            self._memory[key] = self._memory.get(key, 0.0) + value
        for part, value in other._system.items():
            self._system[part] += value

    def breakdown(self) -> EnergyBreakdown:
        """Return an immutable snapshot of the account."""
        by_level = {level: self.level_total(level) for level in MEMORY_LEVELS}
        by_component = {comp: self.component_total(comp) for comp in COMPONENTS}
        return EnergyBreakdown(
            by_level=by_level,
            by_component=by_component,
            system=dict(self._system),
        )


def normalise(
    breakdown: EnergyBreakdown, baseline: EnergyBreakdown
) -> Dict[str, float]:
    """Normalise a breakdown to a baseline's memory and system totals.

    Returns a flat mapping with per-level and per-component memory fractions
    (relative to the *baseline memory total*, as in Figs. 6.1 and 6.2) and a
    ``system`` entry relative to the baseline system total (Fig. 6.3).
    """
    memory_base = baseline.memory_total()
    system_base = baseline.system_total()
    if memory_base <= 0 or system_base <= 0:
        raise ValueError("baseline totals must be positive for normalisation")
    result: Dict[str, float] = {}
    for level in MEMORY_LEVELS:
        result[f"level:{level}"] = breakdown.by_level.get(level, 0.0) / memory_base
    for component in COMPONENTS:
        result[f"component:{component}"] = (
            breakdown.by_component.get(component, 0.0) / memory_base
        )
    result["memory"] = breakdown.memory_total() / memory_base
    result["system"] = breakdown.system_total() / system_base
    return result
