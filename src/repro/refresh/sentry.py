"""Sentry bit model.

The Refrint timing policy associates one Sentry bit with each cache line
(Section 3.1 / 4.1).  The Sentry bit is a deliberately weaker 1T-1C cell
that decays ``sentry_margin`` cycles before the rest of the line, acting as
a canary: its decay interrupts the cache controller, which then refreshes or
drops the line.  Every normal access recharges both the line and its Sentry
bit.

To keep the interrupt wiring tractable the hardware groups several Sentry
bits into one interrupt line (Section 5: group size 1 for L1, 4 for L2 and
16 for L3); when the group's interrupt fires, the controller walks the
group's lines in a pipelined fashion, one line per cycle.

In the simulator a Sentry bit is not a separate timer object per line --
that would mean cancelling and rescheduling a heap event on every cache
access.  Instead :class:`SentryBit` captures the *rule* (when would this
line's sentry fire, given its last refresh?) and the Refrint controller
keeps one lazy timer per group in the shared refresh wheel
(:mod:`repro.utils.wheel`): a timer served before its group is due simply
re-arms itself for the correct time, and one served within the margin's
slack can never lose data.

:class:`SentryGroup` is the object-model reference of the grouping: the
production controller tracks groups as contiguous ``[start, end)`` line
ranges and evaluates the same decay rule with compares over the cache's
last-refresh vector, so this class now serves the tests (and any external
code) that reason about groups line-object by line-object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.mem.line import CacheLine


@dataclass(frozen=True)
class SentryBit:
    """Decay rule of the Sentry bit attached to a cache line.

    Attributes:
        retention_cycles: retention period of the *line's* eDRAM cells.
        margin_cycles: how much earlier the Sentry bit decays.
    """

    retention_cycles: int
    margin_cycles: int

    def __post_init__(self) -> None:
        if self.retention_cycles <= 0:
            raise ValueError("retention must be positive")
        if not 0 <= self.margin_cycles < self.retention_cycles:
            raise ValueError("margin must be in [0, retention)")

    @property
    def sentry_retention_cycles(self) -> int:
        """Cycles after a refresh at which the Sentry bit decays."""
        return self.retention_cycles - self.margin_cycles

    def fire_time(self, line: CacheLine) -> int:
        """Cycle at which this line's Sentry bit will decay next."""
        return line.last_refresh_cycle + self.sentry_retention_cycles

    def line_expiry_time(self, line: CacheLine) -> int:
        """Cycle at which the line's data itself would decay."""
        return line.last_refresh_cycle + self.retention_cycles

    def has_fired(self, line: CacheLine, cycle: int) -> bool:
        """True if the Sentry bit has decayed by ``cycle``."""
        return cycle >= self.fire_time(line)


class SentryGroup:
    """A group of cache lines sharing one interrupt line.

    The priority encoder serialises interrupts, so when a group fires the
    controller processes its lines one per cycle (Section 4.2).  The group
    remembers the (set index, line) pairs it watches; membership is fixed at
    construction, mirroring the wired OR of sentry outputs in hardware.
    """

    def __init__(
        self,
        group_id: int,
        members: Sequence[Tuple[int, CacheLine]],
        sentry: SentryBit,
    ) -> None:
        if not members:
            raise ValueError("a sentry group needs at least one member line")
        self.group_id = group_id
        self.members: List[Tuple[int, CacheLine]] = list(members)
        self.sentry = sentry

    def next_fire_time(self) -> int:
        """Earliest Sentry decay among the group's *valid* lines.

        Invalid lines hold no data worth protecting, so their sentry decay is
        irrelevant; if no line is valid the group reports no pending fire
        (a very large sentinel time).
        """
        times = [
            self.sentry.fire_time(line) for _, line in self.members if line.valid
        ]
        if not times:
            return _NEVER
        return min(times)

    def due_lines(self, cycle: int) -> List[Tuple[int, CacheLine]]:
        """Members whose Sentry bit has decayed by ``cycle``."""
        return [
            (set_idx, line)
            for set_idx, line in self.members
            if line.valid and self.sentry.has_fired(line, cycle)
        ]

    def __len__(self) -> int:
        return len(self.members)


#: Sentinel "no pending fire" time used by :meth:`SentryGroup.next_fire_time`.
_NEVER: int = 2**62


def build_sentry_groups(
    lines: Sequence[Tuple[int, CacheLine]],
    group_size: int,
    sentry: SentryBit,
) -> List[SentryGroup]:
    """Partition a cache's lines into fixed-size sentry groups."""
    if group_size < 1:
        raise ValueError("group size must be >= 1")
    groups: List[SentryGroup] = []
    for start in range(0, len(lines), group_size):
        members = lines[start:start + group_size]
        groups.append(SentryGroup(len(groups), members, sentry))
    return groups
