"""Refresh controller base class and construction helpers.

A refresh controller is attached to one physical cache array (one private
cache or one L3 bank).  It owns the *timing* side of refresh -- when lines
are considered for refresh -- and delegates the *data* side to a
:class:`~repro.refresh.policies.DataPolicy`.  Its actions go through the
hierarchy's policy entry points so that write-backs, inclusion
back-invalidations and DRAM traffic are accounted exactly like those caused
by normal execution.

Two concrete controllers exist:

* :class:`~repro.refresh.periodic.PeriodicRefreshController` -- the naive
  baseline: every refresh group is walked once per retention period,
  staggered across the period, blocking the array while it is walked;
* :class:`~repro.refresh.refrint.RefrintRefreshController` -- the paper's
  proposal: per-line Sentry bits interrupt the controller just before a line
  decays, so lines are refreshed only when they truly need it.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import List, Optional

from repro.config.parameters import RefreshConfig, SimulationConfig, TimingPolicyKind
from repro.hierarchy.hierarchy import CacheHierarchy
from repro.mem.cache import Cache
from repro.mem.line import CacheLine
from repro.refresh.policies import (
    AllPolicy,
    DataPolicy,
    DirtyPolicy,
    PolicyAction,
    ValidPolicy,
    WritebackPolicy,
    make_data_policy,
)
from repro.utils.events import EventQueue
from repro.utils.statistics import Counter
from repro.utils.wheel import RefreshWheel


class RefreshController(abc.ABC):
    """Common machinery for the periodic and Refrint controllers.

    Refresh timers (periodic group passes, lazy sentry interrupts) are
    scheduled through a :class:`~repro.utils.wheel.RefreshWheel` rather than
    as individual heap events.  :func:`build_refresh_controllers` hands
    every controller of a simulation the same wheel so their timers drain
    from one queue event per deadline; a controller constructed standalone
    (unit tests, external tooling) builds a private wheel on its queue.
    """

    def __init__(
        self,
        level: str,
        instance: int,
        cache: Cache,
        policy: DataPolicy,
        refresh_config: RefreshConfig,
        hierarchy: CacheHierarchy,
        event_queue: EventQueue,
        counters: Optional[Counter] = None,
        wheel: Optional[RefreshWheel] = None,
    ) -> None:
        self.level = level
        self.instance = instance
        self.cache = cache
        self.policy = policy
        self.config = refresh_config
        self.hierarchy = hierarchy
        self.events = event_queue
        self.wheel = wheel if wheel is not None else RefreshWheel(event_queue)
        self.counters = counters if counters is not None else hierarchy.counters
        # Counter keys and per-line costs are resolved once, and the hot
        # handlers increment the raw counter dict directly; the refresh
        # path runs tens of thousands of times per simulation.
        self._refresh_cycles_per_line = refresh_config.refresh_cycles_per_line
        self._raw_counts = self.counters.raw
        self._refresh_counter = f"{level}_refreshes"
        self._writeback_counter = f"{level}_policy_writebacks_total"
        self._invalidate_counter = f"{level}_policy_invalidations_total"
        self._setup_policy_dispatch()

    def _setup_policy_dispatch(self) -> None:
        """Classify the data policy for the staged per-line fast path.

        On the array backend, the overwhelmingly common refresh decision
        (REFRESH under Valid/All, a Count decrement under WB(n, m)) is pure
        index arithmetic; only write-backs and invalidations go through the
        line views and the hierarchy entry points.  Exact types only: a
        subclassed policy falls back to the generic per-line walk.
        """
        policy_type = type(self.policy)
        if policy_type is AllPolicy:
            self._policy_kind = "all"
        elif policy_type is ValidPolicy:
            self._policy_kind = "valid"
        elif policy_type is DirtyPolicy:
            self._policy_kind = "dirty"
        elif policy_type is WritebackPolicy:
            self._policy_kind = "wb"
            self._dirty_budget = self.policy.dirty_refreshes
            self._clean_budget = self.policy.clean_refreshes
        else:
            self._policy_kind = "custom"

    # -- lifecycle ----------------------------------------------------------

    @abc.abstractmethod
    def start(self, cycle: int) -> None:
        """Schedule this controller's first event(s) at or after ``cycle``."""

    def next_disturbance_cycle(self) -> Optional[int]:
        """Earliest future cycle at which this controller must act.

        Trace-replay cores use this (through the event queue the wheel arms
        itself on) as the horizon up to which references can be executed
        back-to-back without a refresh pass interleaving.
        """
        return self.wheel.next_deadline()

    # -- shared action machinery ---------------------------------------------

    def apply_policy(self, set_idx: int, line: CacheLine, cycle: int) -> PolicyAction:
        """Ask the data policy about one line and carry out its verdict.

        Returns the action taken, so the timing controllers can decide how
        many controller cycles the pass consumed and whether the line still
        needs a future refresh event.
        """
        decision = self.policy.decide(line)
        action = decision.action
        if action is PolicyAction.REFRESH:
            self._refresh_line(line, cycle)
        elif action is PolicyAction.WRITEBACK:
            self.hierarchy.policy_writeback(
                self.level, self.instance, set_idx, line, cycle
            )
            self.counters.add(self._writeback_counter)
        elif action is PolicyAction.INVALIDATE:
            self.hierarchy.policy_invalidate(
                self.level, self.instance, set_idx, line, cycle
            )
            self.counters.add(self._invalidate_counter)
        else:
            # SKIP: nothing holds useful data here.  Advance the refresh
            # timestamp anyway so lazy sentry timers do not keep finding the
            # same (invalid) line "due" on every pass.
            line.last_refresh_cycle = cycle
        if decision.new_count is not None:
            line.refresh_count = decision.new_count
        return action

    def process_indices(self, indices: List[int], cycle: int) -> int:
        """Apply the data policy to the lines at ``indices`` (all due).

        The staged equivalent of calling :meth:`apply_policy` per line:
        refresh decisions run as index arithmetic on the state vectors, and
        only write-backs / invalidations materialise a view.  On the object
        backend (``cache.arrays is None``) or for a plugged-in policy the
        generic per-line walk is used instead.  Returns the number of lines
        processed (non-SKIP actions).
        """
        cache = self.cache
        kind = self._policy_kind
        if not indices:
            return 0
        if cache.arrays is None or kind == "custom":
            processed = 0
            assoc = cache.geometry.associativity
            for index in indices:
                action = self.apply_policy(
                    index // assoc, cache.view(index), cycle
                )
                if action is not PolicyAction.SKIP:
                    processed += 1
            return processed

        retention = self.config.retention_cycles
        counters = self.counters
        if kind in ("valid", "all"):
            violations = 0
            for index in indices:
                violations += cache.refresh_line_checked(index, cycle, retention)
            counters.add(self._refresh_counter, len(indices))
            if violations:
                counters.add("decay_violations", violations)
            return len(indices)

        assoc = cache.geometry.associativity
        processed = 0
        refreshed = 0
        violations = 0
        if kind == "dirty":
            for index in indices:
                if cache.dirty_at(index):
                    violations += cache.refresh_line_checked(index, cycle, retention)
                    refreshed += 1
                    processed += 1
                else:
                    action = self.apply_policy(
                        index // assoc, cache.view(index), cycle
                    )
                    if action is not PolicyAction.SKIP:
                        processed += 1
        else:  # WB(n, m)
            dirty_budget = self._dirty_budget
            clean_budget = self._clean_budget
            for index in indices:
                tick = cache.wb_tick(
                    index, cycle, retention, dirty_budget, clean_budget
                )
                if tick >= 0:
                    violations += tick
                    refreshed += 1
                    processed += 1
                else:
                    action = self.apply_policy(
                        index // assoc, cache.view(index), cycle
                    )
                    if action is not PolicyAction.SKIP:
                        processed += 1
        if refreshed:
            counters.add(self._refresh_counter, refreshed)
        if violations:
            counters.add("decay_violations", violations)
        return processed

    def _refresh_line(self, line: CacheLine, cycle: int) -> None:
        """Recharge one line's cells, with a decay sanity check."""
        if line.valid and line.is_expired(cycle, self.config.retention_cycles):
            # The controller failed to reach this line before its retention
            # ran out; count it so tests can assert this never happens.
            self.counters.add("decay_violations")
        line.refresh(cycle)
        self.counters.add(self._refresh_counter)

    def block_array(self, cycle: int, lines_processed: int) -> None:
        """Block the array while ``lines_processed`` lines are handled.

        Refresh work has priority over plain read/write requests
        (Section 4.2), so demand accesses arriving while the pass runs wait
        until it finishes; the protocol charges that wait as stall cycles.
        """
        if lines_processed <= 0:
            return
        busy_for = lines_processed * self._refresh_cycles_per_line
        self.cache.busy_until = max(self.cache.busy_until, cycle + busy_for)


def level_refresh_config(
    config: SimulationConfig, level: str, cache: "Cache | int"
) -> RefreshConfig:
    """The refresh configuration seen by one cache level's controller.

    ``cache`` may be the live :class:`~repro.mem.cache.Cache` (controller
    construction) or just its line count (the invariant engine recomputes
    per-level retention from geometry alone, without building a hierarchy).

    On the paper-sized geometry every level simply uses the configured
    retention period.  On a *scaled* geometry the levels are shrunk by
    different factors (the L3 and the retention period share one factor; the
    L1/L2 are shrunk less so realistic hit rates remain possible), which
    would otherwise over-refresh the L1/L2: their refresh rate in
    lines-per-cycle would exceed the full-size system's.  To keep every
    level's refresh power faithful, the retention period of a level is
    stretched by the ratio of its scale factor to the L3's, i.e.::

        retention(level) = retention_config
                           * (paper_lines(level) / actual_lines(level))
                           / (paper_lines(l3)    / actual_lines(l3))

    which is exactly 1x for the unscaled geometry.  The Sentry margin is
    re-derived from the level's own line count, as in Section 4.1.
    """
    assert config.refresh is not None
    refresh = config.refresh
    if level == "l3":
        return refresh
    from repro.config.presets import paper_architecture

    num_lines = getattr(cache, "num_lines", cache)
    paper = paper_architecture()
    paper_lines = {
        "l1i": paper.l1i.num_lines,
        "l1d": paper.l1d.num_lines,
        "l2": paper.l2.num_lines,
    }[level]
    paper_l3_lines = paper.l3_bank.num_lines
    actual_l3_lines = config.architecture.l3_bank.num_lines
    level_scale = paper_lines / num_lines
    l3_scale = paper_l3_lines / actual_l3_lines
    multiplier = max(1.0, l3_scale / level_scale)
    retention = max(2, int(round(refresh.retention_cycles * multiplier)))
    margin = min(num_lines, retention - 1)
    return dataclasses.replace(
        refresh, retention_cycles=retention, sentry_margin_cycles=margin
    )


def build_refresh_controllers(
    hierarchy: CacheHierarchy,
    config: SimulationConfig,
    event_queue: EventQueue,
) -> List[RefreshController]:
    """Create one refresh controller per cache array for an eDRAM config.

    Returns an empty list for the SRAM baseline (nothing to refresh).  Each
    level uses the data policy the configuration assigns to it; following
    the paper, L1 and L2 default to Valid while the configured intelligent
    policy is applied at the L3.
    """
    if not config.is_edram:
        return []
    assert config.refresh is not None
    from repro.refresh.periodic import PeriodicRefreshController
    from repro.refresh.refrint import RefrintRefreshController

    refresh = config.refresh
    controllers: List[RefreshController] = []
    # One calendar queue serves every controller: timers from all 64 arrays
    # coalesce into shared buckets, so a single queue event drains the
    # simultaneous sentry decays (and identically staggered periodic passes)
    # of many caches at once.
    wheel = RefreshWheel(event_queue)
    hierarchy.refresh_wheel = wheel
    for level, instance, cache in hierarchy.all_caches():
        policy_level = "l1" if level in ("l1i", "l1d") else level
        policy = make_data_policy(refresh.data_policy_for_level(policy_level))
        level_config = level_refresh_config(config, level, cache)
        if refresh.timing_policy is TimingPolicyKind.PERIODIC:
            controller: RefreshController = PeriodicRefreshController(
                level, instance, cache, policy, level_config, hierarchy,
                event_queue, wheel=wheel,
            )
        else:
            controller = RefrintRefreshController(
                level, instance, cache, policy, level_config, hierarchy,
                event_queue, wheel=wheel,
            )
        controllers.append(controller)
    return controllers
