"""Periodic (baseline) refresh controller.

The trivial eDRAM refresh scheme: a global counter walks the cache once per
retention period, refreshing a group of lines at a time (one group per CACTI
sub-array).  To avoid bunching the work, the groups' passes are staggered
across the retention period (Section 3.2).  The scheme needs no Sentry bits,
but it is eager -- a line is refreshed on schedule even if it was accessed
(and therefore recharged) a cycle earlier -- and it blocks the array while a
group is walked, which is where the paper's 18 % slowdown for Periodic-All
comes from.

The data policy still decides what happens to each line in the group:
Periodic-All refreshes everything (the naive baseline configuration),
Periodic-Valid skips invalid lines, and Periodic-Dirty / Periodic-WB(n, m)
invalidate or write back lines exactly as they do under Refrint timing.

A refresh group is a contiguous range of line indices, so the All and Valid
passes -- which touch no per-line policy state -- run as one slice operation
over the cache's timestamp vectors (:meth:`~repro.mem.cache.Cache.bulk_refresh_range`)
instead of a per-line object walk; only the per-line policies (Dirty,
WB(n, m)) still visit their group's *valid* lines individually.
"""

from __future__ import annotations

from typing import Any

from repro.refresh.controller import RefreshController
from repro.refresh.policies import PolicyAction


class PeriodicRefreshController(RefreshController):
    """Walks one refresh group per timer, once per retention period.

    Group passes are exact entries in the shared refresh wheel; identically
    configured controllers (all 16 cores' L1s, say) stagger their groups to
    the same nominal cycles, so one wheel drain walks the same-numbered
    group of every such cache at once.
    """

    def start(self, cycle: int) -> None:
        """Stagger the groups' first passes across one retention period."""
        self._pass_counter = f"{self.level}_periodic_passes"
        # All and Valid act uniformly on (in)valid lines, so a whole group
        # can be refreshed with slice operations; Dirty / WB need a per-line
        # decision on every valid line.  Exact types only (the policy-kind
        # classification from the base class): a subclassed policy must keep
        # the generic every-line walk so its decide() overrides are honoured.
        self._include_invalid = self._policy_kind == "all"
        self._bulk_policy = self._policy_kind in ("all", "valid")
        num_groups = self.cache.geometry.num_refresh_groups
        stride = max(1, self.config.retention_cycles // num_groups)
        for group in range(num_groups):
            when = cycle + group * stride
            # Periodic passes are exact timers (ready == deadline): the
            # global counter walks the array on a fixed schedule, so the
            # wheel serves each pass at precisely its nominal cycle --
            # batching comes from identically configured controllers whose
            # staggered passes share deadlines, not from slack.
            self.wheel.schedule(when, when, self._on_group_event, payload=group)

    # -- event handling --------------------------------------------------------

    def _on_group_event(self, cycle: int, payload: Any) -> None:
        group: int = payload
        processed = self._walk_group(group, cycle)
        # The pass keeps the sub-array (refresh group) busy for one cycle per
        # line handled; the other sub-arrays of the cache stay accessible.
        if processed:
            busy_for = processed * self.config.refresh_cycles_per_line
            self.cache.block_group(group, cycle + busy_for)
        self.counters.add(self._pass_counter)
        when = cycle + self.config.retention_cycles
        self.wheel.schedule(when, when, self._on_group_event, payload=group)

    def _walk_group(self, group: int, cycle: int) -> int:
        """Apply the data policy to every line in the group.

        Returns the number of lines the controller actually had to process
        (refresh, write back or invalidate); skipped lines cost no array
        time because nothing is read or written.
        """
        start, end = self.cache.refresh_group_line_range(group)
        if start >= end:
            return 0
        if self._policy_kind == "custom":
            # A plugged-in policy: the original walk, every line of the
            # group through decide() -- custom policies may act on invalid
            # lines too, so no bulk stamping or valid-only filtering.
            processed = 0
            for set_idx, line in self.cache.lines_in_refresh_group(group):
                action = self.apply_policy(set_idx, line, cycle)
                if action is not PolicyAction.SKIP:
                    processed += 1
            return processed
        if self._bulk_policy:
            processed, violations = self.cache.bulk_refresh_range(
                start, end, cycle, self.config.retention_cycles,
                self._include_invalid,
            )
            if processed:
                self.counters.add(self._refresh_counter, processed)
            if violations:
                # The controller failed to reach these lines before their
                # retention ran out; counted so tests can assert it never
                # happens.
                self.counters.add("decay_violations", violations)
            return processed
        # Per-line policies: snapshot the valid lines, advance the refresh
        # timestamp of the skipped (invalid) ones in bulk, then let the
        # policy judge each valid line.
        cache = self.cache
        valid_indices = cache.valid_indices_in_range(start, end)
        cache.stamp_invalid_range(start, end, cycle)
        return self.process_indices(valid_indices, cycle)
