"""Periodic (baseline) refresh controller.

The trivial eDRAM refresh scheme: a global counter walks the cache once per
retention period, refreshing a group of lines at a time (one group per CACTI
sub-array).  To avoid bunching the work, the groups' passes are staggered
across the retention period (Section 3.2).  The scheme needs no Sentry bits,
but it is eager -- a line is refreshed on schedule even if it was accessed
(and therefore recharged) a cycle earlier -- and it blocks the array while a
group is walked, which is where the paper's 18 % slowdown for Periodic-All
comes from.

The data policy still decides what happens to each line in the group:
Periodic-All refreshes everything (the naive baseline configuration),
Periodic-Valid skips invalid lines, and Periodic-Dirty / Periodic-WB(n, m)
invalidate or write back lines exactly as they do under Refrint timing.
"""

from __future__ import annotations

from typing import Any

from repro.refresh.controller import RefreshController
from repro.refresh.policies import PolicyAction


class PeriodicRefreshController(RefreshController):
    """Walks one refresh group per event, once per retention period."""

    def start(self, cycle: int) -> None:
        """Stagger the groups' first passes across one retention period."""
        num_groups = self.cache.geometry.num_refresh_groups
        stride = max(1, self.config.retention_cycles // num_groups)
        for group in range(num_groups):
            self.events.schedule(
                cycle + group * stride, self._on_group_event, payload=group
            )

    # -- event handling --------------------------------------------------------

    def _on_group_event(self, cycle: int, payload: Any) -> None:
        group: int = payload
        processed = self._walk_group(group, cycle)
        # The pass keeps the sub-array (refresh group) busy for one cycle per
        # line handled; the other sub-arrays of the cache stay accessible.
        if processed:
            busy_for = processed * self.config.refresh_cycles_per_line
            self.cache.block_group(group, cycle + busy_for)
        self.counters.add(f"{self.level}_periodic_passes")
        self.events.schedule(
            cycle + self.config.retention_cycles, self._on_group_event, payload=group
        )

    def _walk_group(self, group: int, cycle: int) -> int:
        """Apply the data policy to every line in the group.

        Returns the number of lines the controller actually had to process
        (refresh, write back or invalidate); skipped lines cost no array
        time because nothing is read or written.
        """
        processed = 0
        for set_idx, line in self.cache.lines_in_refresh_group(group):
            action = self.apply_policy(set_idx, line, cycle)
            if action is not PolicyAction.SKIP:
                processed += 1
        return processed
