"""Refrint (Sentry-bit, interrupt-driven) refresh controller.

Each cache line carries a Sentry bit that decays ``sentry_margin`` cycles
before the line itself; its decay raises an interrupt through a priority
encoder, and the cache controller then refreshes, writes back or
invalidates the line according to the data policy (Sections 3.1, 4.1, 4.2).
Because a line is only touched when its Sentry bit says it is about to
decay, Refrint performs the minimum number of refreshes needed to keep a
line alive, and the work is naturally spread out in time instead of
arriving in bulk passes.

Sentry bits are grouped onto shared interrupt lines (group size 1 for the
L1s, 4 for the L2 and 16 for the L3 in the paper's configuration); when a
group's interrupt fires the controller processes the group's due lines one
per cycle, with interrupt requests taking priority over plain reads and
writes.

Simulation strategy: one *lazy* timer per sentry group, kept in the shared
:class:`~repro.utils.wheel.RefreshWheel` rather than as an individual heap
event.  A timer is always armed no later than ``now + sentry retention``
and may be served up to ``margin - 1`` cycles after its predicted decay
(the margin is precisely the headroom the hardware budgets between a
Sentry bit's decay and the line's own), which lets one wheel drain serve
many groups -- and many controllers -- at once.  When a timer is served,
lines whose Sentry bit has actually decayed are processed and the timer is
re-armed for the group's next earliest decay.  A line that was accessed
(and therefore recharged) after the timer was armed is simply not due yet
and is picked up by a later drain, so no per-access cancellation is needed.

A sentry group is a contiguous ``[start, end)`` range of line indices
(mirroring the wired-OR of adjacent sentry outputs in hardware), so the
"which lines have decayed" question and the "when does this group fire
next" question are both answered by compares over the cache's last-refresh
vector (:meth:`~repro.mem.cache.Cache.refresh_due_indices` /
:meth:`~repro.mem.cache.Cache.min_last_refresh`) -- no per-line objects are
touched until a line is actually due.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.refresh.controller import RefreshController
from repro.refresh.policies import AllPolicy, PolicyAction
from repro.refresh.sentry import SentryBit


class RefrintRefreshController(RefreshController):
    """Sentry-bit-driven refresh of one cache array."""

    def start(self, cycle: int) -> None:
        """Partition the lines into sentry groups and arm one lazy timer each."""
        self._interrupt_counter = f"{self.level}_sentry_interrupts"
        self.sentry = SentryBit(
            retention_cycles=self.config.retention_cycles,
            margin_cycles=self.config.sentry_margin_cycles,
        )
        self._sentry_retention = self.sentry.sentry_retention_cycles
        # A sentry timer may be served after its predicted decay: the margin
        # is exactly the headroom between a Sentry bit's decay and the
        # line's own (the hardware sizes it so the priority-encoder walk
        # finishes in time, Section 4.1), so anything under ``margin``
        # cycles of lateness can never lose data.  The slack is what lets
        # one wheel drain serve whole batches of timers; it is additionally
        # capped at ~3% of the sentry period so the cadence of repeated
        # passes over an idle line -- which is what ages a WB(n, m) Count
        # towards its write-back/invalidate -- stays true to the paper's.
        self._slack = max(
            0,
            min(
                self.config.sentry_margin_cycles - 1,
                self._sentry_retention // 32,
            ),
        )
        self._include_invalid = isinstance(self.policy, AllPolicy)
        group_size = self.cache.geometry.sentry_group_size
        num_lines = self.cache.num_lines
        self.groups: List[Tuple[int, int]] = [
            (start, min(start + group_size, num_lines))
            for start in range(0, num_lines, group_size)
        ]
        # The single-pass handler fuses the due scan, the refresh ticks and
        # the next-fire computation over the raw state vectors -- as masked
        # array operations on the numpy backend, as one int-compare loop on
        # the list backend; the object backend and plugged-in policies keep
        # the generic two-pass walk.
        if self._policy_kind == "custom" or self.cache.arrays is None:
            self._handler = self._on_group_interrupt
        elif self.cache.numpy_backed:
            self._handler = self._on_group_interrupt_vector
        else:
            self._handler = self._on_group_interrupt_fast
        # An empty cache has nothing due before one full sentry retention.
        wheel = self.wheel
        slack = self._slack
        probe = self._group_probe
        first = cycle + self._sentry_retention
        for group in self.groups:
            wheel.schedule(
                first, first + slack, self._handler, payload=group, probe=probe
            )

    # -- event handling --------------------------------------------------------

    def _group_probe(self, cycle: int, payload: Any) -> Any:
        """Per-group due-time check consulted by the wheel before a scan.

        Returns None when the group holds at least one line whose Sentry
        bit has decayed by ``cycle`` -- the interrupt must be served.
        Otherwise every predicted-decayed line was recharged by an access
        since the timer was armed, and the handler would do nothing but
        reschedule; the return value is exactly the fire time the handler
        would have armed (earliest last-refresh plus the sentry retention,
        capped one retention out), so skipping the scan is unobservable.
        Shared by all three handler variants, whose no-due-work reschedule
        logic is identical.
        """
        sentry_retention = self._sentry_retention
        earliest = self.cache.min_last_refresh(
            payload[0], payload[1], self._include_invalid
        )
        horizon = cycle + sentry_retention
        if earliest is None:
            return horizon
        if earliest <= cycle - sentry_retention:
            return None
        next_time = earliest + sentry_retention
        return horizon if next_time > horizon else next_time

    def _on_group_interrupt(self, cycle: int, payload: Any) -> None:
        start, end = payload
        include_invalid = self._include_invalid
        # The controller walks the group's due lines (one per cycle through
        # the priority encoder); a line accessed since the event was armed
        # had its Sentry bit recharged and is simply not due yet.  This is
        # what makes Refrint cheaper than the eager periodic walk.
        due = self.cache.refresh_due_indices(
            start, end, cycle - self._sentry_retention, include_invalid
        )
        processed = self.process_indices(due, cycle)
        if processed:
            self.block_array(cycle, processed)
            self.counters.add(self._interrupt_counter)
        self._reschedule(payload, cycle, include_invalid)

    def _on_group_interrupt_fast(self, cycle: int, payload: Any) -> None:
        """Single-pass group interrupt over the state vectors (array backend).

        One walk of ``[start, end)`` classifies every line: due lines take
        their refresh tick in place (a timestamp store plus, for WB(n, m), a
        Count decrement), lines needing a write-back or invalidation are
        collected for the slow per-view path, and the earliest last-refresh
        among the not-due lines is tracked for the reschedule -- so the
        whole interrupt costs one loop of int compares instead of building
        due lists and re-scanning for the next fire time.  Behaviour is
        identical to :meth:`_on_group_interrupt`; the equivalence suite
        pins the two paths against each other.
        """
        start, end = payload
        arrays = self.cache.arrays
        last_refresh = arrays.last_refresh_cycle
        valid = arrays.valid
        sentry_retention = self._sentry_retention
        cutoff = cycle - sentry_retention
        limit = cycle - self.config.retention_cycles
        kind = self._policy_kind
        processed = 0
        refreshed = 0
        violations = 0
        slow = None
        min_not_due = None
        if kind == "wb":
            counts = arrays.refresh_count
            dirty = arrays.dirty
            dirty_budget = self._dirty_budget
            clean_budget = self._clean_budget
            for i in range(start, end):
                if not valid[i]:
                    continue
                stamp = last_refresh[i]
                if stamp <= cutoff:
                    count = counts[i]
                    if count < 0:
                        count = dirty_budget if dirty[i] else clean_budget
                    if count >= 1:
                        if stamp < limit:
                            violations += 1
                        last_refresh[i] = cycle
                        counts[i] = count - 1
                        refreshed += 1
                    elif slow is None:
                        slow = [i]
                    else:
                        slow.append(i)
                elif min_not_due is None or stamp < min_not_due:
                    min_not_due = stamp
        elif kind == "dirty":
            dirty = arrays.dirty
            for i in range(start, end):
                if not valid[i]:
                    continue
                stamp = last_refresh[i]
                if stamp <= cutoff:
                    if dirty[i]:
                        if stamp < limit:
                            violations += 1
                        last_refresh[i] = cycle
                        refreshed += 1
                    elif slow is None:
                        slow = [i]
                    else:
                        slow.append(i)
                elif min_not_due is None or stamp < min_not_due:
                    min_not_due = stamp
        else:  # valid / all
            include_invalid = self._include_invalid
            for i in range(start, end):
                if not valid[i] and not include_invalid:
                    continue
                stamp = last_refresh[i]
                if stamp <= cutoff:
                    if valid[i] and stamp < limit:
                        violations += 1
                    last_refresh[i] = cycle
                    refreshed += 1
                elif min_not_due is None or stamp < min_not_due:
                    min_not_due = stamp
        processed = refreshed
        if slow:
            cache = self.cache
            assoc = cache.geometry.associativity
            for i in slow:
                action = self.apply_policy(i // assoc, cache.view(i), cycle)
                if action is not PolicyAction.SKIP:
                    processed += 1
        stat_counts = self._raw_counts  # distinct from the WB Count vector
        if refreshed:
            stat_counts[self._refresh_counter] += refreshed
        if violations:
            stat_counts["decay_violations"] += violations
        if processed:
            cache = self.cache
            until = cycle + processed * self._refresh_cycles_per_line
            if until > cache.busy_until:
                cache.busy_until = until
            stat_counts[self._interrupt_counter] += 1
        # Reschedule: lines handled this pass carry last_refresh == cycle,
        # i.e. exactly the horizon; only the not-due lines can fire earlier.
        # The horizon cap matters even so: the protocol's functionally
        # atomic transactions stamp lines at cycle + latency, so a not-due
        # line's refresh timestamp can lie in the future.
        horizon = cycle + sentry_retention
        if min_not_due is None:
            next_time = horizon
        else:
            next_time = min_not_due + sentry_retention
            if next_time > horizon:
                next_time = horizon
            elif next_time <= cycle:
                next_time = cycle + 1
        self.wheel.schedule(
            next_time, next_time + self._slack,
            self._on_group_interrupt_fast, payload=payload,
            probe=self._group_probe,
        )

    def _on_group_interrupt_vector(self, cycle: int, payload: Any) -> None:
        """Group interrupt as masked array operations (numpy backend).

        Delegates the scan, the in-place refresh ticks and the next-fire
        computation to :meth:`~repro.mem.cache.Cache.sentry_scan_range`;
        only write-backs / invalidations walk their line views.  Behaviour
        is identical to :meth:`_on_group_interrupt_fast` (the equivalence
        suite pins all backends against each other).
        """
        start, end = payload
        kind = self._policy_kind
        refreshed, violations, slow, min_not_due = self.cache.sentry_scan_range(
            start,
            end,
            cycle,
            cycle - self._sentry_retention,
            cycle - self.config.retention_cycles,
            kind,
            self._include_invalid,
            self._dirty_budget if kind == "wb" else 0,
            self._clean_budget if kind == "wb" else 0,
        )
        processed = refreshed
        if slow:
            cache = self.cache
            assoc = cache.geometry.associativity
            for i in slow:
                action = self.apply_policy(i // assoc, cache.view(i), cycle)
                if action is not PolicyAction.SKIP:
                    processed += 1
        stat_counts = self._raw_counts
        if refreshed:
            stat_counts[self._refresh_counter] += refreshed
        if violations:
            stat_counts["decay_violations"] += violations
        if processed:
            self.block_array(cycle, processed)
            stat_counts[self._interrupt_counter] += 1
        sentry_retention = self._sentry_retention
        horizon = cycle + sentry_retention
        if min_not_due is None:
            next_time = horizon
        else:
            next_time = min_not_due + sentry_retention
            if next_time > horizon:
                next_time = horizon
            elif next_time <= cycle:
                next_time = cycle + 1
        self.wheel.schedule(
            next_time, next_time + self._slack,
            self._on_group_interrupt_vector, payload=payload,
            probe=self._group_probe,
        )

    def _reschedule(
        self, group: Tuple[int, int], cycle: int, include_invalid: bool
    ) -> None:
        """Arm the group's next event: its earliest future decay, capped at
        one sentry retention from now (so newly filled lines are never
        missed)."""
        horizon = cycle + self._sentry_retention
        earliest_refresh = self.cache.min_last_refresh(
            group[0], group[1], include_invalid
        )
        if earliest_refresh is None:
            earliest = horizon
        else:
            earliest = min(earliest_refresh + self._sentry_retention, horizon)
        next_time = max(cycle + 1, earliest)
        self.wheel.schedule(
            next_time, next_time + self._slack,
            self._on_group_interrupt, payload=group,
            probe=self._group_probe,
        )

    def _refreshes_invalid_lines(self) -> bool:
        """True when the data policy acts on invalid lines too (All only)."""
        return isinstance(self.policy, AllPolicy)
