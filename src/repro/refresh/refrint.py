"""Refrint (Sentry-bit, interrupt-driven) refresh controller.

Each cache line carries a Sentry bit that decays ``sentry_margin`` cycles
before the line itself; its decay raises an interrupt through a priority
encoder, and the cache controller then refreshes, writes back or
invalidates the line according to the data policy (Sections 3.1, 4.1, 4.2).
Because a line is only touched when its Sentry bit says it is about to
decay, Refrint performs the minimum number of refreshes needed to keep a
line alive, and the work is naturally spread out in time instead of
arriving in bulk passes.

Sentry bits are grouped onto shared interrupt lines (group size 1 for the
L1s, 4 for the L2 and 16 for the L3 in the paper's configuration); when a
group's interrupt fires the controller processes the group's due lines one
per cycle, with interrupt requests taking priority over plain reads and
writes.

Simulation strategy: one *lazy* event per sentry group.  The event is always
scheduled no later than ``now + sentry retention``; when it fires, lines
whose Sentry bit has actually decayed are processed and the event is
rescheduled for the group's next earliest decay.  A line that was accessed
(and therefore recharged) after the event was scheduled is simply not due
yet and is picked up by a later event, so no per-access event cancellation
is needed.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.mem.line import CacheLine
from repro.refresh.controller import RefreshController
from repro.refresh.policies import AllPolicy, PolicyAction
from repro.refresh.sentry import SentryBit, SentryGroup, build_sentry_groups


class RefrintRefreshController(RefreshController):
    """Sentry-bit-driven refresh of one cache array."""

    def start(self, cycle: int) -> None:
        """Build the sentry groups and arm one lazy event per group."""
        self._interrupt_counter = f"{self.level}_sentry_interrupts"
        self.sentry = SentryBit(
            retention_cycles=self.config.retention_cycles,
            margin_cycles=self.config.sentry_margin_cycles,
        )
        lines: List[Tuple[int, CacheLine]] = list(self.cache.iter_lines())
        self.groups = build_sentry_groups(
            lines, self.cache.geometry.sentry_group_size, self.sentry
        )
        # An empty cache has nothing due before one full sentry retention.
        for group in self.groups:
            self.events.schedule(
                cycle + self.sentry.sentry_retention_cycles,
                self._on_group_interrupt,
                payload=group,
            )

    # -- event handling --------------------------------------------------------

    def _on_group_interrupt(self, cycle: int, payload: Any) -> None:
        group: SentryGroup = payload
        include_invalid = self._refreshes_invalid_lines()
        # The controller walks the group's lines (one per cycle through the
        # priority encoder), but only lines whose Sentry bit has actually
        # decayed need action -- a line accessed since the event was armed
        # had its Sentry bit recharged and is simply not due yet.  This is
        # what makes Refrint cheaper than the eager periodic walk.
        processed = 0
        for set_idx, line in group.members:
            if not line.valid and not include_invalid:
                continue
            if not self.sentry.has_fired(line, cycle):
                continue
            action = self.apply_policy(set_idx, line, cycle)
            if action is not PolicyAction.SKIP:
                processed += 1
        if processed:
            self.block_array(cycle, processed)
            self.counters.add(self._interrupt_counter)
        self._reschedule(group, cycle, include_invalid)

    def _reschedule(
        self, group: SentryGroup, cycle: int, include_invalid: bool
    ) -> None:
        """Arm the group's next event: its earliest future decay, capped at
        one sentry retention from now (so newly filled lines are never
        missed)."""
        horizon = cycle + self.sentry.sentry_retention_cycles
        earliest = horizon
        for _, line in group.members:
            if not line.valid and not include_invalid:
                continue
            fire = self.sentry.fire_time(line)
            if fire < earliest:
                earliest = fire
        next_time = max(cycle + 1, min(earliest, horizon))
        self.events.schedule(next_time, self._on_group_interrupt, payload=group)

    def _refreshes_invalid_lines(self) -> bool:
        """True when the data policy acts on invalid lines too (All only)."""
        return isinstance(self.policy, AllPolicy)
