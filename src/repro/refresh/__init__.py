"""The Refrint refresh architecture: policies, Sentry bits, controllers."""

from repro.refresh.controller import RefreshController, build_refresh_controllers
from repro.refresh.periodic import PeriodicRefreshController
from repro.refresh.policies import (
    DataPolicy,
    PolicyAction,
    PolicyDecision,
    make_data_policy,
)
from repro.refresh.refrint import RefrintRefreshController
from repro.refresh.sentry import SentryBit, SentryGroup

__all__ = [
    "DataPolicy",
    "PeriodicRefreshController",
    "PolicyAction",
    "PolicyDecision",
    "RefreshController",
    "RefrintRefreshController",
    "SentryBit",
    "SentryGroup",
    "build_refresh_controllers",
    "make_data_policy",
]
