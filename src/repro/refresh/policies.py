"""Data-based refresh policies: All, Valid, Dirty and WB(n, m).

A data policy answers one question at refresh time: *given this line's
state, should it be refreshed, written back, or invalidated?*  (Table 3.1).
The decision procedure for WB(n, m) follows Fig. 4.1: a per-line ``Count``
is decremented every time the Sentry bit fires and the line is refreshed;
when it reaches zero a dirty line is written back (and its Count reset to m
for its new valid-clean life), and a valid-clean line is invalidated.  Any
normal access resets Count to the state-appropriate reference value.

Policies are deliberately simple -- they look only at the line's state, not
at reuse predictors or software hints -- exactly as the paper proposes.  The
:class:`DataPolicy` interface is small so that downstream users can plug in
smarter policies without touching the controllers.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Optional

from repro.config.parameters import DataPolicyKind, DataPolicySpec
from repro.mem.line import CacheLine


class PolicyAction(enum.Enum):
    """What the controller should do with a line at refresh time."""

    #: Recharge the line's cells (and its Sentry bit).
    REFRESH = "refresh"
    #: Write the dirty line back one level, leave it valid-clean.
    #: The write-back itself recharges the cells.
    WRITEBACK = "writeback"
    #: Drop the line (write back first if dirty); do not refresh.
    INVALIDATE = "invalidate"
    #: Leave the line alone (it holds no useful data and is not refreshed).
    SKIP = "skip"


@dataclass(frozen=True)
class PolicyDecision:
    """A policy's verdict for one line at one refresh opportunity."""

    action: PolicyAction
    #: Value to store in the line's Count field afterwards (None = leave).
    new_count: Optional[int] = None


class DataPolicy(abc.ABC):
    """Interface of a data-based refresh policy."""

    #: Label used in figures and tables (e.g. ``WB(32,32)``).
    label: str

    @abc.abstractmethod
    def decide(self, line: CacheLine) -> PolicyDecision:
        """Decide what to do with ``line`` when its refresh moment arrives."""

    def on_access(self, line: CacheLine) -> None:
        """Reset per-line policy state after a normal (non-refresh) access.

        The default resets nothing; WB(n, m) resets the Count field.
        """

    def uses_count(self) -> bool:
        """True if the policy maintains the per-line Count field."""
        return False


class AllPolicy(DataPolicy):
    """Refresh every line, valid or not (reference policy only)."""

    label = "all"

    def decide(self, line: CacheLine) -> PolicyDecision:
        return PolicyDecision(PolicyAction.REFRESH)


class ValidPolicy(DataPolicy):
    """Refresh valid lines; invalid lines are left to decay (skipped)."""

    label = "valid"

    def decide(self, line: CacheLine) -> PolicyDecision:
        if line.valid:
            return PolicyDecision(PolicyAction.REFRESH)
        return PolicyDecision(PolicyAction.SKIP)


class DirtyPolicy(DataPolicy):
    """Refresh dirty lines only; valid-clean lines are invalidated."""

    label = "dirty"

    def decide(self, line: CacheLine) -> PolicyDecision:
        if not line.valid:
            return PolicyDecision(PolicyAction.SKIP)
        if line.dirty:
            return PolicyDecision(PolicyAction.REFRESH)
        return PolicyDecision(PolicyAction.INVALIDATE)


class WritebackPolicy(DataPolicy):
    """WB(n, m): bounded refreshes before write-back / invalidation.

    A dirty line is refreshed ``n`` times before being written back and
    becoming valid-clean; a valid-clean line is refreshed ``m`` times before
    being invalidated.  Keeping dirty lines longer reflects the double cost
    of evicting them (write back now, read again later) -- Section 3.1.
    """

    def __init__(self, dirty_refreshes: int, clean_refreshes: int) -> None:
        if dirty_refreshes < 0 or clean_refreshes < 0:
            raise ValueError("WB(n, m) parameters must be non-negative")
        self.dirty_refreshes = dirty_refreshes
        self.clean_refreshes = clean_refreshes
        self.label = f"WB({dirty_refreshes},{clean_refreshes})"

    def uses_count(self) -> bool:
        return True

    def reference_count(self, line: CacheLine) -> int:
        """The Count reference value for a line in its current state."""
        return self.dirty_refreshes if line.dirty else self.clean_refreshes

    def on_access(self, line: CacheLine) -> None:
        """A normal access resets Count to the state's reference value."""
        line.refresh_count = self.reference_count(line)

    def decide(self, line: CacheLine) -> PolicyDecision:
        if not line.valid:
            return PolicyDecision(PolicyAction.SKIP)
        count = line.refresh_count
        if count is None:
            count = self.reference_count(line)
        if count >= 1:
            return PolicyDecision(PolicyAction.REFRESH, new_count=count - 1)
        if line.dirty:
            # Count exhausted on a dirty line: write it back; it becomes
            # valid-clean and gets a fresh budget of m refreshes.
            return PolicyDecision(
                PolicyAction.WRITEBACK, new_count=self.clean_refreshes
            )
        return PolicyDecision(PolicyAction.INVALIDATE)


def make_data_policy(spec: DataPolicySpec) -> DataPolicy:
    """Instantiate the policy object described by a :class:`DataPolicySpec`."""
    if spec.kind is DataPolicyKind.ALL:
        return AllPolicy()
    if spec.kind is DataPolicyKind.VALID:
        return ValidPolicy()
    if spec.kind is DataPolicyKind.DIRTY:
        return DirtyPolicy()
    if spec.kind is DataPolicyKind.WRITEBACK:
        assert spec.dirty_refreshes is not None and spec.clean_refreshes is not None
        return WritebackPolicy(spec.dirty_refreshes, spec.clean_refreshes)
    raise ValueError(f"unknown data policy kind {spec.kind!r}")
