"""Counter-based validation of simulation results.

The simulator's CI currency is exact counters (events popped, protocol
calls, kernel coverage); this package validates those counters against what
the WB(n, m) model says they *must* satisfy:

* :mod:`repro.validate.invariants` -- closed-form per-run invariants
  (energy ledgers, refresh cadence bounds, counter conservation laws)
  evaluated against one :class:`~repro.core.results.SimulationResult`;
* :mod:`repro.validate.anomaly` -- a streaming campaign scan that walks a
  :class:`~repro.campaign.view.StoreSweep` in bounded memory and flags grid
  points whose counter ratios break the expected monotone pattern across
  the Table 5.4 retention grid;
* :mod:`repro.validate.report` -- orchestration plus Markdown / JSON
  rendering for the ``validate`` CLI subcommand and the sweep report;
* :mod:`repro.validate.service` -- served-answer checks for the query
  service (exact/surrogate flag consistency, run invariants on exact
  payloads, surrogate metrics inside their corner envelope).
"""

from repro.validate.anomaly import Anomaly, AnomalyReport, scan_sweep
from repro.validate.invariants import (
    InvariantCheck,
    RunValidation,
    check_replay_stats,
    check_result,
)
from repro.validate.report import (
    CampaignValidation,
    as_json_dict,
    render_markdown,
    validate_sweep,
)
from repro.validate.service import check_response

__all__ = [
    "Anomaly",
    "AnomalyReport",
    "CampaignValidation",
    "InvariantCheck",
    "RunValidation",
    "as_json_dict",
    "check_replay_stats",
    "check_response",
    "check_result",
    "render_markdown",
    "scan_sweep",
    "validate_sweep",
]
