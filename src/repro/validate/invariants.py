"""Analytic per-run invariants: closed-form bounds every run must satisfy.

Each invariant is an exact consequence of the model -- not a regression
snapshot.  A violation therefore means a *modelling or accounting bug*, not
a perturbed workload: refresh energy must equal refresh operations times the
per-op energy of :mod:`repro.energy.tables`; the number of refreshes a level
can perform is bounded by its (level-scaled) retention period and the run
length; counter conservation laws (DRAM reads + writes == DRAM accesses,
router hops == link hops, hits + misses never exceeding accesses) must hold
on every backend and replay mode.

The engine works on any :class:`~repro.core.results.SimulationResult`:

* a *fresh* result carries its :class:`~repro.config.parameters.SimulationConfig`,
  so every invariant (including the config-dependent refresh-cadence bounds)
  is evaluated;
* a *restored* result (loaded from a store or JSON summary) has
  ``config=None``; callers that know the campaign's architecture pass a
  reconstructed config (see :func:`repro.validate.report.validate_sweep`),
  otherwise the config-dependent checks are skipped and only the structural
  ledgers run.

``check_replay_stats`` validates the event-loop side
(:class:`~repro.core.simulator.ReplayStats`): kernel coverage conservation
and the refresh wheel's ``skips <= scans`` law.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config.parameters import (
    CellTechnology,
    DataPolicyKind,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.core.results import SimulationResult
from repro.core.simulator import ReplayStats
from repro.energy.accounting import COMPONENTS, MEMORY_LEVELS
from repro.energy.tables import (
    NANOJOULE,
    TechnologyTables,
    default_tables,
    geometry_for_level,
    instances_for_level,
)
from repro.refresh.controller import level_refresh_config

#: Cache levels carrying their own activity counters.
CACHE_LEVELS = ("l1i", "l1d", "l2", "l3")

#: Relative tolerance for closed-form energy comparisons.  The model and the
#: engine sum identical float terms in different orders, so agreement is
#: expected to a few ulps; 1e-9 relative leaves ~7 decimal digits of margin.
REL_TOL = 1e-9

#: Absolute floor for near-zero energy comparisons (joule scale).
ABS_TOL = 1e-18


@dataclass(frozen=True)
class InvariantCheck:
    """Outcome of one invariant evaluated against one run."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class RunValidation:
    """All invariant outcomes for one (application, configuration) run."""

    application: str
    label: str
    checks: List[InvariantCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return all(check.ok for check in self.checks)

    @property
    def violations(self) -> List[InvariantCheck]:
        """The failed checks only."""
        return [check for check in self.checks if not check.ok]


def _close(measured: float, expected: float) -> bool:
    return math.isclose(measured, expected, rel_tol=REL_TOL, abs_tol=ABS_TOL)


class _Collector:
    """Tiny helper: append pass/fail checks with uniform detail strings."""

    def __init__(self) -> None:
        self.checks: List[InvariantCheck] = []

    def equal(self, name: str, measured: float, expected: float) -> None:
        ok = _close(measured, expected)
        detail = "" if ok else f"measured {measured!r}, expected {expected!r}"
        self.checks.append(InvariantCheck(name, ok, detail))

    def bounded(self, name: str, value: float, bound: float) -> None:
        ok = value <= bound
        detail = "" if ok else f"{value!r} exceeds bound {bound!r}"
        self.checks.append(InvariantCheck(name, ok, detail))

    def require(self, name: str, ok: bool, detail: str) -> None:
        self.checks.append(InvariantCheck(name, ok, "" if ok else detail))


def check_result(
    result: SimulationResult,
    config: Optional[SimulationConfig] = None,
    tables: Optional[TechnologyTables] = None,
    replay_stats: Optional[ReplayStats] = None,
) -> RunValidation:
    """Evaluate every applicable invariant against one run.

    Args:
        result: the run to validate (fresh or restored).
        config: configuration override for restored results whose campaign
            context is known; defaults to ``result.config``.
        tables: energy tables the run was accounted with; defaults to the
            technology's standard tables.
        replay_stats: when given (live runs only -- replay stats are not
            serialised), the event-loop invariants are appended too.
    """
    cfg = config if config is not None else result.config
    label = result.label
    is_edram = cfg.is_edram if cfg is not None else label != "SRAM"
    technology = CellTechnology.EDRAM if is_edram else CellTechnology.SRAM
    tables = tables if tables is not None else default_tables(technology)
    counters = result.counters
    collect = _Collector()

    _check_counter_conservation(collect, counters)
    _check_energy_ledger(collect, result, tables, is_edram)
    if cfg is not None:
        _check_leakage(collect, result, cfg, tables)
        if is_edram:
            _check_refresh_cadence(collect, result, cfg)
    if not is_edram:
        _check_sram_is_refresh_free(collect, counters, result)
    _check_timing(collect, result)
    if replay_stats is not None:
        collect.checks.extend(check_replay_stats(replay_stats))
    return RunValidation(
        application=result.application, label=label, checks=collect.checks
    )


# -- invariant groups ---------------------------------------------------------


def _check_counter_conservation(
    collect: _Collector, counters: Dict[str, int]
) -> None:
    """Conservation laws between raw counters (config-independent)."""
    get = lambda name: counters.get(name, 0)  # noqa: E731 - local shorthand
    for level in CACHE_LEVELS:
        hits = get(f"{level}_hits")
        misses = get(f"{level}_misses")
        accesses = get(f"{level}_reads") + get(f"{level}_writes")
        collect.bounded(
            f"{level}-hits-misses-within-accesses", hits + misses, accesses
        )
    collect.equal(
        "dram-access-split",
        get("dram_reads") + get("dram_writes"),
        get("dram_accesses"),
    )
    collect.equal(
        "network-hop-symmetry",
        get("network_router_hops"),
        get("network_link_hops"),
    )
    zeros = sorted(name for name, value in counters.items() if value == 0)
    collect.require(
        "no-phantom-zero-counters",
        not zeros,
        f"zero-valued counters materialised: {', '.join(zeros)}",
    )
    collect.require(
        "no-negative-counters",
        all(value >= 0 for value in counters.values()),
        "a counter went negative",
    )
    collect.equal("decay-free", get("decay_violations"), 0)


def _check_energy_ledger(
    collect: _Collector,
    result: SimulationResult,
    tables: TechnologyTables,
    is_edram: bool,
) -> None:
    """Closed-form energy recomputation from counters and tables."""
    counters = result.counters
    energy = result.energy
    dynamic = 0.0
    refresh = 0.0
    for level in CACHE_LEVELS:
        table = tables.cache(level)
        reads = counters.get(f"{level}_reads", 0)
        writes = counters.get(f"{level}_writes", 0)
        dynamic += (
            reads * table.read_energy_nj + writes * table.write_energy_nj
        ) * NANOJOULE
        refresh += (
            counters.get(f"{level}_refreshes", 0)
            * table.refresh_energy_nj
            * NANOJOULE
        )
    collect.equal(
        "dynamic-energy-closed-form",
        energy.by_component.get("dynamic", 0.0),
        dynamic,
    )
    collect.equal(
        "refresh-energy-closed-form",
        energy.by_component.get("refresh", 0.0),
        refresh if is_edram else 0.0,
    )
    dram = (
        counters.get("dram_accesses", 0) * tables.dram_access_energy_nj * NANOJOULE
    )
    collect.equal("dram-energy-closed-form", energy.by_component.get("dram", 0.0), dram)
    collect.equal("dram-level-equals-component", energy.by_level.get("dram", 0.0), dram)
    by_level = sum(energy.by_level.get(level, 0.0) for level in MEMORY_LEVELS)
    by_component = sum(
        energy.by_component.get(component, 0.0) for component in COMPONENTS
    )
    collect.equal("energy-ledger-balance", by_level, by_component)
    collect.equal("energy-ledger-total", energy.memory_total(), by_level)
    network = (
        counters.get("network_router_hops", 0) * tables.router_hop_energy_nj
        + counters.get("network_link_hops", 0) * tables.link_hop_energy_nj
    ) * NANOJOULE
    collect.equal(
        "network-energy-closed-form", energy.system.get("network", 0.0), network
    )


def _check_leakage(
    collect: _Collector,
    result: SimulationResult,
    cfg: SimulationConfig,
    tables: TechnologyTables,
) -> None:
    """Leakage = per-instance static power x instances x run seconds."""
    architecture = cfg.architecture
    seconds = architecture.seconds_from_cycles(result.execution_cycles)
    leakage = sum(
        tables.cache(level).leakage_power_w
        * instances_for_level(architecture, level)
        * seconds
        for level in CACHE_LEVELS
    )
    collect.equal(
        "leakage-energy-closed-form",
        result.energy.by_component.get("leakage", 0.0),
        leakage,
    )


def _check_refresh_cadence(
    collect: _Collector, result: SimulationResult, cfg: SimulationConfig
) -> None:
    """Refresh counts against the retention-derived cadence bounds.

    A periodic group is walked at most once per (level-scaled) retention
    period; a Refrint line is served at most once per *sentry* retention
    (the margin-shortened period).  Either way the per-level refresh count
    is bounded by ``instances x lines x (passes possible in the run)`` --
    an exact ceiling, independent of the workload.
    """
    assert cfg.refresh is not None
    refresh = cfg.refresh
    architecture = cfg.architecture
    counters = result.counters
    cycles = result.execution_cycles
    periodic = refresh.timing_policy is TimingPolicyKind.PERIODIC
    for level in CACHE_LEVELS:
        geometry = geometry_for_level(architecture, level)
        level_cfg = level_refresh_config(cfg, level, geometry.num_lines)
        period = (
            level_cfg.retention_cycles
            if periodic
            else level_cfg.sentry_retention_cycles
        )
        passes = cycles // period + 1
        instances = instances_for_level(architecture, level)
        collect.bounded(
            f"{level}-refresh-cadence",
            counters.get(f"{level}_refreshes", 0),
            instances * geometry.num_lines * passes,
        )
        policy_level = "l1" if level in ("l1i", "l1d") else level
        policy = refresh.data_policy_for_level(policy_level)
        if periodic:
            groups = geometry.num_refresh_groups
            collect.bounded(
                f"{level}-periodic-pass-cadence",
                counters.get(f"{level}_periodic_passes", 0),
                instances * groups * passes,
            )
            # Under All the bulk pass stamps every line of the group, so
            # with uniform groups the refresh count is *exactly* passes
            # times the group size -- the idle-line cadence equality.
            if (
                policy.kind is DataPolicyKind.ALL
                and geometry.num_lines % geometry.num_refresh_groups == 0
            ):
                collect.equal(
                    f"{level}-periodic-all-exact",
                    counters.get(f"{level}_refreshes", 0),
                    counters.get(f"{level}_periodic_passes", 0)
                    * geometry.lines_per_refresh_group,
                )
        else:
            # Lines of one sentry group recharge (and hence decay) at
            # staggered times, so a group may be scanned once per *due
            # line*, not once per period: each served scan handles at
            # least one due line, and a given line comes due at most once
            # per sentry retention.  The per-line ceiling is therefore
            # the tightest workload-independent bound.
            interrupts = counters.get(f"{level}_sentry_interrupts", 0)
            collect.bounded(
                f"{level}-sentry-interrupt-cadence",
                interrupts,
                instances * geometry.num_lines * passes,
            )
            # A served interrupt scan processes at least one due line, and
            # every processed line is refreshed, written back or
            # invalidated.
            handled = (
                counters.get(f"{level}_refreshes", 0)
                + counters.get(f"{level}_policy_writebacks_total", 0)
                + counters.get(f"{level}_policy_invalidations_total", 0)
            )
            collect.bounded(
                f"{level}-sentry-interrupts-productive", interrupts, handled
            )


def _check_sram_is_refresh_free(
    collect: _Collector, counters: Dict[str, int], result: SimulationResult
) -> None:
    """The SRAM baseline must carry zero refresh machinery activity."""
    refresh_keys = sorted(
        name
        for name in counters
        if name.endswith(
            (
                "_refreshes",
                "_sentry_interrupts",
                "_periodic_passes",
                "_policy_writebacks_total",
                "_policy_invalidations_total",
                "_refresh_stall_cycles",
            )
        )
    )
    collect.require(
        "sram-no-refresh-activity",
        not refresh_keys,
        f"SRAM run reports refresh counters: {', '.join(refresh_keys)}",
    )
    collect.equal(
        "sram-no-refresh-energy", result.energy.by_component.get("refresh", 0.0), 0.0
    )


def _check_timing(collect: _Collector, result: SimulationResult) -> None:
    """Execution-time bookkeeping between the cores and the headline number."""
    finishes = result.per_core_finish_cycles
    if finishes:
        collect.equal(
            "slowest-core-defines-execution",
            max(finishes),
            result.execution_cycles,
        )
        collect.bounded(
            "busy-cycles-within-envelope",
            result.busy_core_cycles,
            len(finishes) * result.execution_cycles,
        )
    collect.bounded("execution-cycles-positive", 1, result.execution_cycles)


def check_replay_stats(stats: ReplayStats) -> List[InvariantCheck]:
    """Event-loop invariants for one live run's :class:`ReplayStats`.

    Covers the reference-stream conservation law (every data reference is
    either a slow protocol walk or a private hit, and the kernel can only
    retire private hits) and the refresh wheel's scan accounting
    (``skips <= scans``: a probe can only skip an entry the drain actually
    examined; every drain is one popped queue event).
    """
    collect = _Collector()
    collect.bounded(
        "slow-references-within-references", stats.slow_references, stats.references
    )
    collect.bounded(
        "kernel-accesses-within-private-hits",
        stats.kernel_accesses,
        stats.private_hit_references,
    )
    collect.bounded(
        "kernel-batches-within-accesses", stats.kernel_batches, stats.kernel_accesses
    )
    collect.bounded(
        "references-conservation",
        stats.slow_references + stats.kernel_accesses,
        stats.references,
    )
    collect.bounded("wheel-skips-within-scans", stats.wheel_skips, stats.wheel_scans)
    collect.bounded(
        "wheel-drains-within-events", stats.wheel_drains, stats.events_popped
    )
    return collect.checks
