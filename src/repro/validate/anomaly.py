"""Streaming campaign anomaly scan over the Table 5.4 retention grid.

The retention grid has a shape the counters must respect: lengthening the
retention period can only *reduce* refresh work (fewer sentry decays, fewer
periodic passes), so for a fixed (application, timing policy, data policy)
series the refresh operation count and refresh energy must be monotone
non-increasing in retention time.  The workload trace, meanwhile, is
content-addressed per application -- every configuration replays the same
references -- so the ``instructions`` counter must be *identical* across
every cell of one application, baseline included.

:func:`scan_sweep` walks a sweep view cell by cell and keeps only scalar
per-series state (the previous cell's refresh metrics), so a
:class:`~repro.campaign.view.StoreSweep` over a 100k-point store is scanned
with its small LRU as the only resident set -- the scan never calls
``materialise()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.results import SimulationResult
from repro.core.sweep import PolicyPoint, SweepResult

#: Cache levels whose refresh counters feed the per-cell refresh-op total.
CACHE_LEVELS = ("l1i", "l1d", "l2", "l3")

#: Default relative slack for the monotone comparisons.  Refresh work is
#: dominated by idle-line cadence and strictly shrinks with retention; the
#: slack only absorbs boundary effects (one extra staggered pass at the end
#: of a short run), not genuine inversions.
DEFAULT_RTOL = 0.05


@dataclass(frozen=True)
class Anomaly:
    """One grid point whose counters break an expected campaign pattern."""

    application: str
    label: str
    rule: str
    detail: str


@dataclass
class AnomalyReport:
    """Everything the streaming scan found (and could not find)."""

    anomalies: List[Anomaly] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    cells_scanned: int = 0

    @property
    def ok(self) -> bool:
        """True when no cell broke an expected pattern."""
        return not self.anomalies


def _refresh_metrics(result: SimulationResult) -> Tuple[float, int]:
    """(refresh energy in joules, total refresh operations) of one cell."""
    energy = result.energy.by_component.get("refresh", 0.0)
    ops = sum(result.counter(f"{level}_refreshes") for level in CACHE_LEVELS)
    return energy, ops


def _series(points: List[PolicyPoint]) -> List[List[PolicyPoint]]:
    """Group the grid into fixed-policy series ordered by retention time."""
    by_policy: Dict[Tuple[str, str], List[PolicyPoint]] = {}
    for point in points:
        key = (point.timing_policy.value, point.data_policy.label)
        by_policy.setdefault(key, []).append(point)
    return [
        sorted(series, key=lambda p: p.retention_us)
        for series in by_policy.values()
    ]


def scan_sweep(sweep: SweepResult, rtol: float = DEFAULT_RTOL) -> AnomalyReport:
    """Scan a sweep (in-memory or store-backed) for counter-ratio anomalies.

    Works on any :class:`~repro.core.sweep.SweepResult`; on a
    :class:`~repro.campaign.view.StoreSweep` each cell is loaded once and
    only scalars are retained, so memory stays bounded by the view's LRU.
    Missing cells (incomplete campaigns) are recorded, never fatal: a gap
    simply restarts the monotone comparison on the far side.
    """
    report = AnomalyReport()
    series_list = _series(list(sweep.points))
    for application in sweep.applications:
        baseline_instructions: Optional[int] = None
        try:
            baseline = sweep.baseline(application)
        except KeyError:
            report.missing.append(f"{application}/SRAM")
        else:
            report.cells_scanned += 1
            baseline_instructions = baseline.counter("instructions")
        for series in series_list:
            previous: Optional[Tuple[str, float, int]] = None
            for point in series:
                try:
                    result = sweep.result(application, point)
                except KeyError:
                    report.missing.append(f"{application}/{point.label}")
                    previous = None
                    continue
                report.cells_scanned += 1
                energy, ops = _refresh_metrics(result)
                instructions = result.counter("instructions")
                if (
                    baseline_instructions is not None
                    and instructions != baseline_instructions
                ):
                    report.anomalies.append(
                        Anomaly(
                            application,
                            point.label,
                            "trace-invariance",
                            f"instructions={instructions} but the SRAM "
                            f"baseline executed {baseline_instructions}",
                        )
                    )
                if previous is not None:
                    prev_label, prev_energy, prev_ops = previous
                    if energy > prev_energy * (1.0 + rtol):
                        report.anomalies.append(
                            Anomaly(
                                application,
                                point.label,
                                "refresh-energy-monotone",
                                f"refresh energy {energy:.6e} J rose above "
                                f"{prev_energy:.6e} J at the shorter "
                                f"retention {prev_label}",
                            )
                        )
                    if ops > prev_ops * (1.0 + rtol):
                        report.anomalies.append(
                            Anomaly(
                                application,
                                point.label,
                                "refresh-ops-monotone",
                                f"{ops} refresh ops exceed {prev_ops} at the "
                                f"shorter retention {prev_label}",
                            )
                        )
                previous = (point.label, energy, ops)
    return report
