"""Served-answer invariants: nothing leaves the service unchecked.

The per-run invariant engine (:mod:`repro.validate.invariants`) refutes bad
*simulations*; this module refutes bad *answers* -- the things the service
layer itself could get wrong while assembling a response:

- **flag/source consistency**: ``exact=True`` answers must come from the
  store or a fresh simulation, ``exact=False`` answers must be surrogates
  with non-empty interpolation bounds and corner keys.  An approximation
  can never masquerade as ground truth past this check.
- **exact answers satisfy the run invariants**: the full result payload of
  every exact answer is rebuilt and passed through
  :func:`~repro.validate.invariants.check_result` under the configuration
  the query normalised to (the served payload is what clients will trust,
  so it is what gets validated).
- **surrogate convexity**: interpolated metrics are convex combinations of
  their corners, so each must lie within the corner envelope (min/max of
  the corner values, with float tolerance); the corners are re-read from
  the store by the hashes stamped into the answer's provenance.

:func:`check_response` returns human-readable violation strings (empty ==
clean); the service counts them in ``ServiceStats.validation_failures`` and
``repro.cli serve --validate-answers`` turns the check on in production.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api.query import (
    ANSWER_METRICS,
    EXACT_SOURCES,
    NormalisedQuery,
    PointAnswer,
    QueryResponse,
    metrics_from_result,
)
from repro.campaign.store import BaseResultStore
from repro.core.results import SimulationResult
from repro.validate.invariants import check_result

#: Relative tolerance of the surrogate envelope check (float summation).
ENVELOPE_RTOL = 1e-9


def _check_flags(answer: PointAnswer, where: str, violations: List[str]) -> None:
    source = answer.provenance.source
    if answer.exact:
        if source not in EXACT_SOURCES:
            violations.append(
                f"{where}: exact answer has non-exact source {source!r}"
            )
        if answer.bounds is not None:
            violations.append(f"{where}: exact answer carries interpolation bounds")
        if answer.result is None:
            violations.append(f"{where}: exact answer carries no result payload")
    else:
        if source != "surrogate":
            violations.append(
                f"{where}: inexact answer has source {source!r}, not 'surrogate'"
            )
        if not answer.bounds:
            violations.append(f"{where}: surrogate answer has no bounds")
        if not answer.provenance.corner_keys:
            violations.append(f"{where}: surrogate answer names no corner results")


def _check_exact_invariants(
    answer: PointAnswer, config, where: str, violations: List[str]
) -> None:
    try:
        result = SimulationResult.from_dict(answer.result)
    except Exception as exc:
        violations.append(f"{where}: result payload does not restore: {exc}")
        return
    serve_metrics = metrics_from_result(result)
    for name in ANSWER_METRICS:
        if answer.metrics.get(name) != serve_metrics[name]:
            violations.append(
                f"{where}: served metric {name} ({answer.metrics.get(name)!r}) "
                f"disagrees with the result payload ({serve_metrics[name]!r})"
            )
    validation = check_result(result, config=config)
    for check in validation.violations:
        violations.append(f"{where}: invariant {check.name}: {check.detail}")


def _check_surrogate_envelope(
    answer: PointAnswer,
    store: Optional[BaseResultStore],
    where: str,
    violations: List[str],
) -> None:
    if store is None or not answer.provenance.corner_keys:
        return  # no corners to check against (already flagged by _check_flags)
    corners: List[Dict[str, float]] = []
    for key in answer.provenance.corner_keys:
        result = store.get(key)
        if result is None:
            violations.append(f"{where}: surrogate corner {key[:16]} not in store")
            return
        corners.append(metrics_from_result(result))
    for name in ANSWER_METRICS:
        values = [corner[name] for corner in corners]
        lo, hi = min(values), max(values)
        slack = ENVELOPE_RTOL * max(abs(lo), abs(hi), 1.0)
        served = answer.metrics.get(name)
        if served is None or served < lo - slack or served > hi + slack:
            violations.append(
                f"{where}: surrogate metric {name} = {served!r} outside its "
                f"corner envelope [{lo!r}, {hi!r}]"
            )


def check_response(
    response: QueryResponse,
    normalised: Optional[NormalisedQuery] = None,
    store: Optional[BaseResultStore] = None,
) -> List[str]:
    """Validate a served response; returns violation strings (empty == ok).

    Args:
        response: the response about to be served.
        normalised: the normalisation the service answered from; supplies
            the per-point configurations for the run-invariant engine
            (recomputed from the request when omitted).
        store: the store surrogate corners are re-read from (skips the
            envelope check when None).
    """
    if normalised is None:
        normalised = response.request.normalise()
    configs_by_key = {point.key: point.job.config for point in normalised.points}
    violations: List[str] = []
    for answer in response.answers:
        where = f"{answer.application}/{answer.label}"
        _check_flags(answer, where, violations)
        key = answer.provenance.job_key
        if key not in configs_by_key:
            violations.append(
                f"{where}: answer's job hash is not one the query normalises to"
            )
            continue
        if answer.exact and answer.result is not None:
            _check_exact_invariants(
                answer, configs_by_key[key], where, violations
            )
        elif not answer.exact:
            _check_surrogate_envelope(answer, store, where, violations)
    return violations
