"""Campaign-level validation: orchestrate the checks and render the report.

:func:`validate_sweep` runs the per-run invariant engine over every cell of
a sweep (baseline plus each grid point) and the streaming anomaly scan over
the whole campaign, returning one :class:`CampaignValidation`.
:func:`render_markdown` turns it into the perf-pattern report section the
``validate`` CLI subcommand and :func:`repro.experiments.report.sweep_report`
print; :func:`as_json_dict` is the machine-readable artifact CI gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config.parameters import ArchitectureConfig, SimulationConfig
from repro.core.sweep import SweepResult
from repro.energy.tables import TechnologyTables
from repro.validate.anomaly import AnomalyReport, DEFAULT_RTOL, scan_sweep
from repro.validate.invariants import RunValidation, check_result


@dataclass
class CampaignValidation:
    """Invariant outcomes for every run plus the campaign anomaly scan."""

    runs: List[RunValidation] = field(default_factory=list)
    anomalies: AnomalyReport = field(default_factory=AnomalyReport)

    @property
    def ok(self) -> bool:
        """True when every run held every invariant and no cell is anomalous."""
        return all(run.ok for run in self.runs) and self.anomalies.ok

    @property
    def violation_count(self) -> int:
        """Total invariant violations across all runs."""
        return sum(len(run.violations) for run in self.runs)


def validate_sweep(
    sweep: SweepResult,
    architecture: Optional[ArchitectureConfig] = None,
    tables: Optional[TechnologyTables] = None,
    rtol: float = DEFAULT_RTOL,
) -> CampaignValidation:
    """Validate every cell of a sweep and scan the campaign for anomalies.

    Args:
        sweep: an in-memory :class:`~repro.core.sweep.SweepResult` or a
            store-backed :class:`~repro.campaign.view.StoreSweep`.
        architecture: the chip geometry the campaign was run with.  When
            given, restored results (which carry no config) get their
            configuration reconstructed from their grid point, enabling the
            refresh-cadence and leakage invariants; when None, those checks
            run only for results still carrying a live config.
        tables: energy-table override matching a non-default campaign.
        rtol: relative slack for the anomaly scan's monotone comparisons.
    """
    validation = CampaignValidation()
    baseline_config = (
        SimulationConfig.sram(architecture) if architecture is not None else None
    )
    for application in sweep.applications:
        try:
            baseline = sweep.baseline(application)
        except KeyError:
            pass  # recorded by the anomaly scan's missing list
        else:
            validation.runs.append(
                check_result(baseline, config=baseline_config, tables=tables)
            )
        for point in sweep.points:
            try:
                result = sweep.result(application, point)
            except KeyError:
                continue
            config = (
                point.simulation_config(architecture)
                if architecture is not None
                else None
            )
            validation.runs.append(
                check_result(result, config=config, tables=tables)
            )
    validation.anomalies = scan_sweep(sweep, rtol=rtol)
    return validation


def render_markdown(
    validation: CampaignValidation, title: str = "Counter validation"
) -> str:
    """Render a validation as the Markdown perf-pattern report section."""
    anomalies = validation.anomalies
    lines = [f"## {title}", ""]
    lines.append(
        f"{len(validation.runs)} runs validated: "
        f"{validation.violation_count} invariant violations, "
        f"{len(anomalies.anomalies)} campaign anomalies, "
        f"{len(anomalies.missing)} missing cells "
        f"({anomalies.cells_scanned} cells scanned)."
    )
    lines.append("")
    failing = [run for run in validation.runs if not run.ok]
    if failing:
        lines.append("### Invariant violations")
        lines.append("")
        lines.append("| application | configuration | invariant | detail |")
        lines.append("|---|---|---|---|")
        for run in failing:
            for check in run.violations:
                lines.append(
                    f"| {run.application} | {run.label} | {check.name} | "
                    f"{check.detail} |"
                )
        lines.append("")
    if anomalies.anomalies:
        lines.append("### Campaign anomalies")
        lines.append("")
        lines.append("| application | configuration | rule | detail |")
        lines.append("|---|---|---|---|")
        for anomaly in anomalies.anomalies:
            lines.append(
                f"| {anomaly.application} | {anomaly.label} | {anomaly.rule} | "
                f"{anomaly.detail} |"
            )
        lines.append("")
    if anomalies.missing:
        lines.append(
            "Missing cells: " + ", ".join(anomalies.missing[:20])
            + (" ..." if len(anomalies.missing) > 20 else "")
        )
        lines.append("")
    if validation.ok and not anomalies.missing:
        lines.append("All invariants held; no anomalies flagged.")
        lines.append("")
    return "\n".join(lines)


def as_json_dict(validation: CampaignValidation) -> dict:
    """The machine-readable artifact CI gates on (zero violations)."""
    anomalies = validation.anomalies
    return {
        "ok": validation.ok,
        "summary": {
            "runs": len(validation.runs),
            "violations": validation.violation_count,
            "anomalies": len(anomalies.anomalies),
            "missing": len(anomalies.missing),
            "cells_scanned": anomalies.cells_scanned,
        },
        "runs": [
            {
                "application": run.application,
                "label": run.label,
                "ok": run.ok,
                "checks_run": len(run.checks),
                "violations": [
                    {"name": check.name, "detail": check.detail}
                    for check in run.violations
                ],
            }
            for run in validation.runs
        ],
        "anomalies": [
            {
                "application": anomaly.application,
                "label": anomaly.label,
                "rule": anomaly.rule,
                "detail": anomaly.detail,
            }
            for anomaly in anomalies.anomalies
        ],
        "missing": list(anomalies.missing),
    }
