"""Refrint reproduction library.

This package reproduces the system described in *Refrint: Intelligent
refresh to minimize power in on-chip multiprocessor cache hierarchies*
(Jain, UIUC / HPCA 2013 work with Josep Torrellas).

The library is organised in layers:

* substrates -- a trace-driven 16-core chip-multiprocessor simulator with a
  three-level inclusive cache hierarchy, a directory MESI coherence protocol,
  a 4x4 torus on-chip network, and a flat-latency DRAM model
  (:mod:`repro.mem`, :mod:`repro.coherence`, :mod:`repro.hierarchy`,
  :mod:`repro.noc`, :mod:`repro.cpu`);
* the paper's contribution -- the eDRAM refresh architecture with Sentry
  bits, Periodic and Refrint timing policies, and All / Valid / Dirty /
  WB(n, m) data policies (:mod:`repro.refresh`);
* measurement -- the energy model and accounting (:mod:`repro.energy`);
* experiments -- workload generators, the parameter sweep of Table 5.4 and
  the regeneration of every evaluation table and figure
  (:mod:`repro.workloads`, :mod:`repro.core`, :mod:`repro.experiments`);
* campaign -- parallel, resumable sweep execution with a persistent
  content-addressed result store (:mod:`repro.campaign`);
* serving -- the typed query API and the asyncio HTTP service answering
  (workload, config-grid) queries from any store, with coalescing and
  surrogate interpolation (:mod:`repro.api`, :mod:`repro.service`).

Quickstart
----------

>>> from repro import RefrintSimulator, SimulationConfig
>>> from repro.workloads import build_application
>>> config = SimulationConfig.scaled()
>>> app = build_application("fft", config)
>>> result = RefrintSimulator(config).run(app)
>>> result.energy.memory_total() > 0
True
"""

from repro.api import (
    PointAnswer,
    Provenance,
    Query,
    QueryRequest,
    QueryResponse,
    QueryValidationError,
    SurrogateLattice,
    answer_query,
)
from repro.campaign import (
    CampaignStats,
    ParallelExecutor,
    ResultStore,
    SegmentResultStore,
    SerialExecutor,
    StoreSweep,
    open_store,
    run_campaign,
    stream_campaign,
)
from repro.config.parameters import (
    ArchitectureConfig,
    CacheGeometry,
    CellTechnology,
    DataPolicyKind,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.core.results import SimulationResult
from repro.core.simulator import RefrintSimulator
from repro.core.sweep import PolicyPoint, SweepResult, run_sweep
from repro.service import SweepService, make_service, run_service, serve
from repro.workloads.suite import WorkloadRequest

__version__ = "1.2.0"

__all__ = [
    "ArchitectureConfig",
    "CacheGeometry",
    "CampaignStats",
    "CellTechnology",
    "DataPolicyKind",
    "ParallelExecutor",
    "PointAnswer",
    "PolicyPoint",
    "Provenance",
    "Query",
    "QueryRequest",
    "QueryResponse",
    "QueryValidationError",
    "RefreshConfig",
    "RefrintSimulator",
    "ResultStore",
    "SegmentResultStore",
    "SerialExecutor",
    "SimulationConfig",
    "SimulationResult",
    "StoreSweep",
    "SurrogateLattice",
    "SweepResult",
    "SweepService",
    "TimingPolicyKind",
    "WorkloadRequest",
    "answer_query",
    "make_service",
    "open_store",
    "run_campaign",
    "run_service",
    "run_sweep",
    "serve",
    "stream_campaign",
    "__version__",
]
