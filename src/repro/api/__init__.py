"""The typed query API: the single request surface over the campaign engine.

Everything that asks this codebase a question -- the CLI, the HTTP service,
the Python facade -- speaks :class:`QueryRequest`/:class:`QueryResponse`
from :mod:`repro.api.query`, answered by :func:`answer_query`
(:mod:`repro.api.answer`) with optional surrogate interpolation
(:mod:`repro.api.surrogate`).

``Query`` is the short public alias of :class:`QueryRequest`, re-exported
at package top level (``repro.Query``).
"""

from repro.api.answer import answer_query, default_run_jobs, exact_answer, surrogate_answer_for
from repro.api.query import (
    ANSWER_METRICS,
    API_VERSION,
    NormalisedQuery,
    PointAnswer,
    Provenance,
    QueryPoint,
    QueryRequest,
    QueryResponse,
    QueryValidationError,
    metrics_from_result,
)
from repro.api.surrogate import AxisBracket, SurrogateAnswer, SurrogateLattice, bracket_axis

#: Short public alias: ``repro.Query(applications="fft", ...)``.
Query = QueryRequest

__all__ = [
    "ANSWER_METRICS",
    "API_VERSION",
    "AxisBracket",
    "NormalisedQuery",
    "PointAnswer",
    "Provenance",
    "Query",
    "QueryPoint",
    "QueryRequest",
    "QueryResponse",
    "QueryValidationError",
    "SurrogateAnswer",
    "SurrogateLattice",
    "answer_query",
    "bracket_axis",
    "default_run_jobs",
    "exact_answer",
    "metrics_from_result",
    "surrogate_answer_for",
]
