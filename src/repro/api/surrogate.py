"""Surrogate answers: multilinear interpolation over the stored sweep surface.

The Table 5.4 campaign samples the retention axis at a handful of grid
points (50/100/200 us by default).  A "what-if" query between those points
does not need a fresh simulation to be *useful*: the energy/time surface is
smooth in retention (refresh energy scales with refresh cadence), so a
multilinear interpolation over already-stored exact results answers in
microseconds instead of minutes.

The contract is strict, in the CounterPoint spirit of never letting an
approximation masquerade as measurement:

- A surrogate is only offered *between* stored grid points (inside the
  convex hull, every corner result present in the store).  Outside the
  hull, or with any corner missing, the lattice declines and the service
  falls back to a real simulation.
- Every surrogate answer is stamped ``exact=False``, carries the
  interpolation interval per off-grid axis (``bounds``) and the job hashes
  of the exact corner results it was built from (``corner_keys``).
- Interpolated metrics are convex combinations of the corner metrics, so
  each lies within the corner envelope -- an invariant
  :mod:`repro.validate.service` re-checks on served answers.

:class:`SurrogateLattice` is deliberately store-backed and stateless
between calls: it re-reads corners through the store's own cache layers, so
a backfilled exact result is picked up without invalidation logic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.query import ANSWER_METRICS, QueryPoint, metrics_from_result
from repro.campaign.jobs import Job
from repro.campaign.store import BaseResultStore
from repro.config.parameters import ArchitectureConfig
from repro.config.presets import scaled_architecture
from repro.core.sweep import DEFAULT_RETENTION_TIMES_US, PolicyPoint


@dataclass(frozen=True)
class AxisBracket:
    """One axis of an interpolation: the value sits in [lo, hi].

    ``weight`` is the fractional position of the query value between the
    bracketing grid points (0 at ``lo``, 1 at ``hi``); on-grid axes are
    represented by lo == hi and weight 0.
    """

    name: str
    value: float
    lo: float
    hi: float

    @property
    def weight(self) -> float:
        """Fractional position of ``value`` in [lo, hi] (0 when on-grid)."""
        if self.hi == self.lo:
            return 0.0
        return (self.value - self.lo) / (self.hi - self.lo)

    @property
    def on_grid(self) -> bool:
        """True when the value coincides with a grid point."""
        return self.hi == self.lo


@dataclass
class SurrogateAnswer:
    """An interpolated answer: metrics, the interval per off-grid axis and
    the exact corner results it was combined from."""

    metrics: Dict[str, float]
    bounds: Dict[str, List[float]]
    corner_keys: Tuple[str, ...]


def bracket_axis(name: str, value: float, grid: Sequence[float]) -> Optional[AxisBracket]:
    """Bracket ``value`` inside a sorted ``grid``; None outside the hull.

    An on-grid value returns a degenerate (lo == hi) bracket, so callers
    can distinguish "no interpolation needed on this axis" from "outside
    the lattice entirely".
    """
    points = sorted(grid)
    if not points or value < points[0] or value > points[-1]:
        return None
    for point in points:
        if value == point:
            return AxisBracket(name=name, value=value, lo=point, hi=point)
    for lo, hi in zip(points, points[1:]):
        if lo < value < hi:
            return AxisBracket(name=name, value=value, lo=lo, hi=hi)
    return None


class SurrogateLattice:
    """Multilinear interpolator over the stored retention/energy surface.

    Args:
        store: any :func:`~repro.campaign.store.open_store` backend holding
            the exact corner results.
        architecture: the machine model queries are normalised against
            (must match the one the corners were simulated on, or the
            corner job hashes will not resolve).
        retentions_us: the retention grid the lattice interpolates over.
        length_scales: optional second axis -- when given, off-grid trace
            lengths are interpolated too; when None (the default) the
            query's length scale must match the stored runs exactly.
    """

    def __init__(
        self,
        store: BaseResultStore,
        architecture: Optional[ArchitectureConfig] = None,
        retentions_us: Sequence[float] = DEFAULT_RETENTION_TIMES_US,
        length_scales: Optional[Sequence[float]] = None,
    ) -> None:
        self.store = store
        self.architecture = (
            architecture if architecture is not None else scaled_architecture()
        )
        self.retentions_us = tuple(sorted(retentions_us))
        self.length_scales = (
            tuple(sorted(length_scales)) if length_scales is not None else None
        )

    # -- corner construction ------------------------------------------------------

    def corner_job(
        self, query_point: QueryPoint, retention_us: float, length_scale: float
    ) -> Job:
        """The exact job at one lattice corner of a query point."""
        workload = replace(query_point.job.workload, length_scale=length_scale)
        point = query_point.point
        assert point is not None  # baselines are never interpolated
        corner_point = PolicyPoint(
            retention_us=retention_us,
            timing_policy=point.timing_policy,
            data_policy=point.data_policy,
        )
        return Job(
            workload=workload,
            config=corner_point.simulation_config(self.architecture),
            point_label=corner_point.label,
        )

    def brackets_for(self, query_point: QueryPoint) -> Optional[List[AxisBracket]]:
        """Bracket every lattice axis for a query point; None when the point
        lies outside the hull or is not interpolable (baseline, or an
        off-grid axis the lattice does not span)."""
        point = query_point.point
        if point is None:
            return None  # the SRAM baseline has no retention axis
        retention = bracket_axis(
            "retention_us", point.retention_us, self.retentions_us
        )
        if retention is None:
            return None
        brackets = [retention]
        if self.length_scales is not None:
            scale = bracket_axis(
                "length_scale",
                query_point.job.workload.length_scale,
                self.length_scales,
            )
            if scale is None:
                return None
            brackets.append(scale)
        return brackets

    # -- interpolation ------------------------------------------------------------

    def interpolate(self, query_point: QueryPoint) -> Optional[SurrogateAnswer]:
        """Interpolate one off-grid query point from stored exact corners.

        Returns None -- meaning "no surrogate available, simulate instead"
        -- when the point is a baseline, lies on the lattice grid exactly
        (an exact answer should be produced instead), falls outside the
        hull, or any corner result is missing from the store.
        """
        brackets = self.brackets_for(query_point)
        if brackets is None:
            return None
        off_grid = [b for b in brackets if not b.on_grid]
        if not off_grid:
            return None  # on-grid everywhere: this is a plain store miss/hit
        # Cartesian corners over the off-grid axes (on-grid axes are pinned).
        corner_values: List[Tuple[float, ...]] = list(
            product(*[(b.lo, b.hi) if not b.on_grid else (b.lo,) for b in brackets])
        )
        axis_names = [b.name for b in brackets]
        corner_results: List[Tuple[float, Dict[str, float], str]] = []
        for values in corner_values:
            coords = dict(zip(axis_names, values))
            weight = 1.0
            for bracket in brackets:
                position = coords[bracket.name]
                w = bracket.weight
                weight *= (w if position == bracket.hi else 1.0 - w) if not bracket.on_grid else 1.0
            retention = coords["retention_us"]
            length_scale = coords.get(
                "length_scale", query_point.job.workload.length_scale
            )
            job = self.corner_job(query_point, retention, length_scale)
            result = self.store.get(job.key())
            if result is None:
                return None  # a missing corner disqualifies the surrogate
            corner_results.append((weight, metrics_from_result(result), job.key()))
        metrics = {
            name: sum(
                weight * corner_metrics[name]
                for weight, corner_metrics, _ in corner_results
            )
            for name in ANSWER_METRICS
        }
        bounds = {b.name: [b.lo, b.hi] for b in off_grid}
        return SurrogateAnswer(
            metrics=metrics,
            bounds=bounds,
            corner_keys=tuple(key for _, _, key in corner_results),
        )
