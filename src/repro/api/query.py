"""The versioned, typed query layer: one request surface for every front end.

A :class:`QueryRequest` describes a (workload, config-grid) question --
which applications, which retention times, which timing and data policies,
at what trace length and seed -- exactly once, in one canonical form.  The
CLI, the HTTP service (:mod:`repro.service`) and the Python facade
(:func:`repro.api.answer_query`) all parse into this class, so their
argument handling cannot drift: the same text is accepted, the same
mistakes are rejected with the same message, and -- crucially -- the same
logical question always normalises to the same content-addressed
:class:`~repro.campaign.jobs.Job` hashes, which is what makes memoisation
across front ends sound.

The JSON form round-trips exactly (``QueryRequest.from_dict(r.to_dict())
== r``) and is described by :func:`QueryRequest.json_schema`; malformed
payloads raise :class:`QueryValidationError` with a message naming the
offending field, which the HTTP layer maps to a 4xx response.

A :class:`QueryResponse` carries one :class:`PointAnswer` per normalised
job.  Every answer is stamped ``exact=True`` (a simulator result, from the
store or freshly computed) or ``exact=False`` (a surrogate interpolation,
with its bounds), plus a :class:`Provenance` record naming the job hash,
the source, the trace generator and -- for surrogates -- the corner
results it was interpolated from.  An approximation can therefore never
masquerade as simulator ground truth.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.campaign.jobs import Job
from repro.config.parameters import (
    ArchitectureConfig,
    DataPolicySpec,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.config.presets import scaled_architecture
from repro.core.sweep import PolicyPoint, default_policy_points
from repro.workloads.suite import APPLICATION_NAMES, DEFAULT_SEED, WorkloadRequest
from repro.workloads.synthetic import TRACE_GENERATOR_PROVENANCE

#: The one request-schema version this release understands.
API_VERSION = 1

#: Answer sources an exact answer may carry.
EXACT_SOURCES = ("store", "simulated")

#: The scalar metrics every answer carries (the Table 5.4 energy/time
#: surface); surrogate answers interpolate exactly these.
ANSWER_METRICS = (
    "execution_cycles",
    "busy_core_cycles",
    "memory_energy_j",
    "system_energy_j",
)


def metrics_from_result(result) -> Dict[str, float]:
    """Extract the served metric surface from a simulation result.

    This is the one mapping between :class:`SimulationResult` and the
    :data:`ANSWER_METRICS` every answer (exact or surrogate) carries; the
    surrogate layer interpolates exactly these values.
    """
    return {
        "execution_cycles": float(result.execution_cycles),
        "busy_core_cycles": float(result.busy_core_cycles),
        "memory_energy_j": float(result.memory_energy()),
        "system_energy_j": float(result.system_energy()),
    }


class QueryValidationError(ValueError):
    """A request (or one of its fields) failed validation.

    Raised by the parsers and by :meth:`QueryRequest.from_dict`; the HTTP
    layer maps it to a 400 response carrying the message verbatim.
    """


def _text_items(value: Union[str, Sequence], what: str) -> List[str]:
    """Split a comma-separated string (or pass a sequence through) to items."""
    if isinstance(value, str):
        return [item.strip() for item in value.split(",") if item.strip()]
    if isinstance(value, (list, tuple)):
        return [str(item).strip() for item in value]
    raise QueryValidationError(
        f"{what} must be a comma-separated string or a list, "
        f"got {type(value).__name__}"
    )


@dataclass(frozen=True)
class QueryRequest:
    """One typed sweep query: a workload set times a configuration grid.

    Attributes:
        applications: application names (validated, duplicate-free).
        retentions_us: eDRAM retention times in microseconds.
        timing_policies: Periodic / Refrint (any subset).
        data_policies: All / Valid / Dirty / WB(n, m) (any subset).
        length_scale: trace-length multiplier of the workload recipes.
        seed: base RNG seed of the synthetic traces.
        include_baseline: also answer the full-SRAM baseline per application
            (needed for the paper's normalised metrics).
        allow_surrogate: permit interpolated (``exact=False``) answers for
            configurations whose exact result is not yet stored.
        api_version: request-schema version (this release: 1).
    """

    applications: Tuple[str, ...]
    retentions_us: Tuple[float, ...] = (50.0,)
    timing_policies: Tuple[TimingPolicyKind, ...] = (TimingPolicyKind.REFRINT,)
    data_policies: Tuple[DataPolicySpec, ...] = field(
        default_factory=lambda: (DataPolicySpec.writeback(32, 32),)
    )
    length_scale: float = 0.5
    seed: int = DEFAULT_SEED
    include_baseline: bool = True
    allow_surrogate: bool = True
    api_version: int = API_VERSION

    def __post_init__(self) -> None:
        # Canonicalise sequences to tuples so requests built with lists
        # compare and hash like requests parsed from JSON.
        object.__setattr__(
            self, "applications", self.parse_applications(self.applications)
        )
        object.__setattr__(
            self, "retentions_us", self.parse_retentions(self.retentions_us)
        )
        timings = tuple(
            self.parse_timing_policy(t) if not isinstance(t, TimingPolicyKind) else t
            for t in _as_sequence(self.timing_policies, "timing_policies")
        )
        if not timings:
            raise QueryValidationError("timing_policies must not be empty")
        if len(set(timings)) != len(timings):
            raise QueryValidationError("duplicate timing policies in query")
        object.__setattr__(self, "timing_policies", timings)
        datas = tuple(
            self.parse_data_policy(d) if not isinstance(d, DataPolicySpec) else d
            for d in _as_sequence(self.data_policies, "data_policies")
        )
        if not datas:
            raise QueryValidationError("data_policies must not be empty")
        if len(set(datas)) != len(datas):
            raise QueryValidationError("duplicate data policies in query")
        object.__setattr__(self, "data_policies", datas)
        if not isinstance(self.length_scale, (int, float)) or isinstance(
            self.length_scale, bool
        ):
            raise QueryValidationError("length_scale must be a number")
        if self.length_scale <= 0:
            raise QueryValidationError("length_scale must be positive")
        object.__setattr__(self, "length_scale", float(self.length_scale))
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise QueryValidationError("seed must be an integer")
        if not isinstance(self.include_baseline, bool):
            raise QueryValidationError("include_baseline must be a boolean")
        if not isinstance(self.allow_surrogate, bool):
            raise QueryValidationError("allow_surrogate must be a boolean")
        if self.api_version != API_VERSION:
            raise QueryValidationError(
                f"unsupported api_version {self.api_version!r}; this release "
                f"speaks version {API_VERSION}"
            )

    # -- field parsers (the single source of argument-handling truth) ------------

    @staticmethod
    def parse_applications(value: Union[str, Sequence[str]]) -> Tuple[str, ...]:
        """Parse an application list: ``all``, a comma string or a sequence.

        Unknown names are rejected, and so are duplicates: a duplicated name
        would silently double-run (and double-weight) that application in
        every averaged metric.
        """
        if isinstance(value, str) and value.strip().lower() == "all":
            return tuple(APPLICATION_NAMES)
        names = _text_items(value, "applications")
        if not names:
            raise QueryValidationError("applications must not be empty")
        unknown = [name for name in names if name not in APPLICATION_NAMES]
        if unknown:
            raise QueryValidationError(
                f"unknown applications: {', '.join(unknown)} "
                f"(known: {', '.join(APPLICATION_NAMES)})"
            )
        seen = set()
        duplicates = []
        for name in names:
            if name in seen and name not in duplicates:
                duplicates.append(name)
            seen.add(name)
        if duplicates:
            raise QueryValidationError(
                f"duplicate applications: {', '.join(duplicates)}; each "
                f"application is answered once per query -- list each name once"
            )
        return tuple(names)

    @staticmethod
    def parse_timing_policy(value: Union[str, TimingPolicyKind]) -> TimingPolicyKind:
        """Parse one timing-policy name: periodic/p or refrint/r."""
        if isinstance(value, TimingPolicyKind):
            return value
        label = str(value).strip().lower()
        if label in ("periodic", "p"):
            return TimingPolicyKind.PERIODIC
        if label in ("refrint", "r"):
            return TimingPolicyKind.REFRINT
        raise QueryValidationError(
            f"unknown timing policy {value!r}; expected periodic or refrint"
        )

    @staticmethod
    def parse_data_policy(value: Union[str, DataPolicySpec]) -> DataPolicySpec:
        """Parse one data-policy label: all, valid, dirty or WB(n,m)."""
        if isinstance(value, DataPolicySpec):
            return value
        label = str(value).strip().lower()
        if label == "all":
            return DataPolicySpec.all_lines()
        if label == "valid":
            return DataPolicySpec.valid()
        if label == "dirty":
            return DataPolicySpec.dirty()
        match = re.fullmatch(r"wb\((\d+),\s*(\d+)\)", label)
        if match:
            return DataPolicySpec.writeback(int(match.group(1)), int(match.group(2)))
        raise QueryValidationError(
            f"unknown data policy {value!r}; expected all, valid, dirty or WB(n,m)"
        )

    @staticmethod
    def parse_retentions(
        value: Union[str, float, Sequence]
    ) -> Tuple[float, ...]:
        """Parse retention times: a number, comma string or sequence of us."""
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            value = (value,)
        items = _text_items(value, "retentions_us")
        if not items:
            raise QueryValidationError("retentions_us must not be empty")
        retentions: List[float] = []
        for item in items:
            try:
                retention = float(item)
            except (TypeError, ValueError):
                raise QueryValidationError(
                    f"retention {item!r} is not a number of microseconds"
                ) from None
            if retention <= 0:
                raise QueryValidationError(
                    f"retention must be positive, got {retention!r}"
                )
            retentions.append(retention)
        if len(set(retentions)) != len(retentions):
            raise QueryValidationError("duplicate retention times in query")
        return tuple(retentions)

    # -- JSON round-trip ----------------------------------------------------------

    #: Every key :meth:`from_dict` accepts (anything else is rejected loudly).
    _FIELDS = (
        "applications",
        "retentions_us",
        "timing_policies",
        "data_policies",
        "length_scale",
        "seed",
        "include_baseline",
        "allow_surrogate",
        "api_version",
    )

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON form; inverse of :meth:`from_dict`."""
        return {
            "api_version": self.api_version,
            "applications": list(self.applications),
            "retentions_us": list(self.retentions_us),
            "timing_policies": [t.value for t in self.timing_policies],
            "data_policies": [d.label for d in self.data_policies],
            "length_scale": self.length_scale,
            "seed": self.seed,
            "include_baseline": self.include_baseline,
            "allow_surrogate": self.allow_surrogate,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "QueryRequest":
        """Parse (and fully validate) a JSON request payload.

        Raises:
            QueryValidationError: on a non-mapping payload, unknown keys,
                missing ``applications`` or any field that fails parsing.
        """
        if not isinstance(data, Mapping):
            raise QueryValidationError(
                f"query must be a JSON object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - set(cls._FIELDS))
        if unknown:
            raise QueryValidationError(
                f"unknown query fields: {', '.join(unknown)} "
                f"(accepted: {', '.join(cls._FIELDS)})"
            )
        if "applications" not in data:
            raise QueryValidationError("query is missing 'applications'")
        kwargs: Dict[str, object] = {"applications": data["applications"]}
        for name in cls._FIELDS:
            if name != "applications" and name in data:
                kwargs[name] = data[name]
        return cls(**kwargs)

    @staticmethod
    def json_schema() -> Dict[str, object]:
        """JSON Schema of the v1 request payload (served at ``/v1/schema``)."""
        return {
            "$schema": "http://json-schema.org/draft-07/schema#",
            "title": "QueryRequest",
            "description": (
                "A sweep query: applications x (retention, timing policy, "
                "data policy) grid, normalised into content-addressed jobs."
            ),
            "type": "object",
            "required": ["applications"],
            "additionalProperties": False,
            "properties": {
                "api_version": {"type": "integer", "const": API_VERSION},
                "applications": {
                    "description": "'all', a comma-separated string, or a list "
                                   "of application names (duplicates rejected)",
                    "oneOf": [
                        {"type": "string"},
                        {
                            "type": "array",
                            "items": {"enum": list(APPLICATION_NAMES)},
                            "minItems": 1,
                            "uniqueItems": True,
                        },
                    ],
                },
                "retentions_us": {
                    "description": "retention times in microseconds",
                    "oneOf": [
                        {"type": "number", "exclusiveMinimum": 0},
                        {"type": "string"},
                        {
                            "type": "array",
                            "items": {"type": "number", "exclusiveMinimum": 0},
                            "minItems": 1,
                            "uniqueItems": True,
                        },
                    ],
                },
                "timing_policies": {
                    "type": "array",
                    "items": {"enum": ["periodic", "refrint"]},
                    "minItems": 1,
                    "uniqueItems": True,
                },
                "data_policies": {
                    "description": "all, valid, dirty or WB(n,m) labels",
                    "type": "array",
                    "items": {"type": "string"},
                    "minItems": 1,
                    "uniqueItems": True,
                },
                "length_scale": {"type": "number", "exclusiveMinimum": 0},
                "seed": {"type": "integer"},
                "include_baseline": {"type": "boolean"},
                "allow_surrogate": {"type": "boolean"},
            },
        }

    # -- normalisation into content-addressed jobs --------------------------------

    def policy_points(self) -> List[PolicyPoint]:
        """The eDRAM grid this request spans, in canonical sweep order."""
        return default_policy_points(
            retention_times_us=self.retentions_us,
            timing_policies=self.timing_policies,
            data_policies=self.data_policies,
        )

    def workload_requests(self) -> List[WorkloadRequest]:
        """The seeded workload recipes, one per application."""
        return [
            WorkloadRequest(name, length_scale=self.length_scale, seed=self.seed)
            for name in self.applications
        ]

    def normalise(
        self, architecture: Optional[ArchitectureConfig] = None
    ) -> "NormalisedQuery":
        """Canonicalise into content-addressed jobs (the *only* request form
        the answering layers see).

        Per application: the full-SRAM baseline (when ``include_baseline``),
        then every grid point in retention x timing x data order -- the same
        enumeration order as a campaign, so a query and a sweep of the same
        grid produce identical job hashes and share the store.
        """
        arch = architecture if architecture is not None else scaled_architecture()
        points = self.policy_points()
        baseline_config = SimulationConfig.sram(arch)
        query_points: List[QueryPoint] = []
        for request in self.workload_requests():
            if self.include_baseline:
                query_points.append(
                    QueryPoint(
                        application=request.name,
                        point=None,
                        job=Job(workload=request, config=baseline_config),
                    )
                )
            for point in points:
                query_points.append(
                    QueryPoint(
                        application=request.name,
                        point=point,
                        job=Job(
                            workload=request,
                            config=point.simulation_config(arch),
                            point_label=point.label,
                        ),
                    )
                )
        return NormalisedQuery(
            request=self, architecture=arch, points=query_points,
            policy_points=points,
        )

    def with_options(self, **changes) -> "QueryRequest":
        """A copy of this request with some fields replaced."""
        return replace(self, **changes)


def _as_sequence(value, what: str) -> Sequence:
    """Accept a bare item, comma string or sequence; return a sequence."""
    if isinstance(value, str):
        return _text_items(value, what)
    if isinstance(value, (list, tuple)):
        return value
    return (value,)


@dataclass(frozen=True)
class QueryPoint:
    """One normalised cell of a query: an application at one configuration.

    ``point`` is None for the full-SRAM baseline; ``job`` is the
    content-addressed unit of work whose hash keys memoisation, coalescing
    and the result store alike.
    """

    application: str
    point: Optional[PolicyPoint]
    job: Job

    @property
    def key(self) -> str:
        """The job's content hash."""
        return self.job.key()

    @property
    def label(self) -> str:
        """Human-readable cell label (``SRAM baseline`` or the point label)."""
        return self.job.label

    @property
    def is_baseline(self) -> bool:
        """True for the full-SRAM baseline cell."""
        return self.point is None

    @property
    def retention_us(self) -> Optional[float]:
        """Retention time of the cell (None for the baseline)."""
        return None if self.point is None else self.point.retention_us


@dataclass(frozen=True)
class NormalisedQuery:
    """A request reduced to its canonical job list (duplicates collapsed)."""

    request: QueryRequest
    architecture: ArchitectureConfig
    points: List[QueryPoint]
    policy_points: List[PolicyPoint]

    def unique_points(self) -> List[QueryPoint]:
        """The points with duplicate job hashes collapsed (first wins)."""
        seen = set()
        unique: List[QueryPoint] = []
        for query_point in self.points:
            key = query_point.key
            if key not in seen:
                seen.add(key)
                unique.append(query_point)
        return unique


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Provenance:
    """Where an answer came from, stamped onto every served value.

    Attributes:
        job_key: the content hash of the (workload, config) the answer is
            about -- exact answers are stored under it; surrogate answers
            will be, once backfilled.
        source: ``store`` (memoised), ``simulated`` (computed for this
            query) or ``surrogate`` (interpolated, never exact).
        trace_generator: the trace-generator environment of the answering
            process (results from different environments never mix).
        store_backend / store_root: the result store the answer was read
            from or committed to (None when serving storeless).
        corner_keys: for surrogates, the job hashes of the exact results
            the interpolation used.
    """

    job_key: str
    source: str
    trace_generator: str = TRACE_GENERATOR_PROVENANCE
    store_backend: Optional[str] = None
    store_root: Optional[str] = None
    corner_keys: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """JSON form."""
        data: Dict[str, object] = {
            "job_key": self.job_key,
            "source": self.source,
            "trace_generator": self.trace_generator,
        }
        if self.store_backend is not None:
            data["store_backend"] = self.store_backend
        if self.store_root is not None:
            data["store_root"] = self.store_root
        if self.corner_keys:
            data["corner_keys"] = list(self.corner_keys)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Provenance":
        """Rebuild from the JSON form."""
        return cls(
            job_key=str(data["job_key"]),
            source=str(data["source"]),
            trace_generator=str(data.get("trace_generator", "")),
            store_backend=data.get("store_backend"),
            store_root=data.get("store_root"),
            corner_keys=tuple(data.get("corner_keys", ())),
        )


@dataclass
class PointAnswer:
    """The served answer for one normalised query point.

    Attributes:
        application / label / retention_us: which cell this answers.
        exact: True for simulator ground truth (store or fresh run); False
            for a surrogate interpolation.
        metrics: the energy/time surface values (:data:`ANSWER_METRICS`).
        provenance: where the values came from.
        bounds: for surrogates, the interpolation interval per axis, e.g.
            ``{"retention_us": [50.0, 200.0]}``; None for exact answers.
        normalised: memory/system/time relative to the application's SRAM
            baseline, when the query included the baseline.
        result: the full result payload for exact answers (everything
            :meth:`SimulationResult.to_dict` records); None for surrogates.
    """

    application: str
    label: str
    retention_us: Optional[float]
    exact: bool
    metrics: Dict[str, float]
    provenance: Provenance
    bounds: Optional[Dict[str, List[float]]] = None
    normalised: Optional[Dict[str, float]] = None
    result: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON form."""
        data: Dict[str, object] = {
            "application": self.application,
            "label": self.label,
            "retention_us": self.retention_us,
            "exact": self.exact,
            "metrics": dict(self.metrics),
            "provenance": self.provenance.to_dict(),
        }
        if self.bounds is not None:
            data["bounds"] = {k: list(v) for k, v in self.bounds.items()}
        if self.normalised is not None:
            data["normalised"] = dict(self.normalised)
        if self.result is not None:
            data["result"] = self.result
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PointAnswer":
        """Rebuild from the JSON form."""
        retention = data.get("retention_us")
        return cls(
            application=str(data["application"]),
            label=str(data["label"]),
            retention_us=None if retention is None else float(retention),
            exact=bool(data["exact"]),
            metrics={k: float(v) for k, v in dict(data["metrics"]).items()},
            provenance=Provenance.from_dict(data["provenance"]),
            bounds=(
                {k: [float(x) for x in v] for k, v in dict(data["bounds"]).items()}
                if data.get("bounds") is not None
                else None
            ),
            normalised=(
                {k: float(v) for k, v in dict(data["normalised"]).items()}
                if data.get("normalised") is not None
                else None
            ),
            result=data.get("result"),
        )


@dataclass
class QueryResponse:
    """Everything served back for one query.

    Attributes:
        request: the (validated) request being answered.
        answers: one :class:`PointAnswer` per unique normalised job, in
            normalisation order.
        aggregates: per-point-label averages of the normalised metrics
            across the requested applications (the Table 5.4 grid view),
            present when every answer is exact and baselines were included.
    """

    request: QueryRequest
    answers: List[PointAnswer] = field(default_factory=list)
    aggregates: Optional[Dict[str, Dict[str, float]]] = None
    api_version: int = API_VERSION

    @property
    def exact(self) -> bool:
        """True when every served answer is simulator ground truth."""
        return all(answer.exact for answer in self.answers)

    def answer_for(
        self, application: str, label: str
    ) -> Optional[PointAnswer]:
        """The answer of one (application, cell-label) pair, if present."""
        for answer in self.answers:
            if answer.application == application and answer.label == label:
                return answer
        return None

    def to_dict(self) -> Dict[str, object]:
        """JSON form; inverse of :meth:`from_dict`."""
        data: Dict[str, object] = {
            "api_version": self.api_version,
            "exact": self.exact,
            "request": self.request.to_dict(),
            "answers": [answer.to_dict() for answer in self.answers],
        }
        if self.aggregates is not None:
            data["aggregates"] = {
                label: dict(values) for label, values in self.aggregates.items()
            }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "QueryResponse":
        """Rebuild from the JSON form (used by clients and tests)."""
        return cls(
            request=QueryRequest.from_dict(data["request"]),
            answers=[PointAnswer.from_dict(a) for a in data.get("answers", [])],
            aggregates=data.get("aggregates"),
            api_version=int(data.get("api_version", API_VERSION)),
        )
