"""Synchronous query answering: the policy shared by every front end.

Given a normalised query and a result store, each unique job resolves by a
fixed preference order:

1. **store hit** -- the exact result is already memoised; answer instantly.
2. **surrogate** -- the point is off the lattice grid but inside its hull
   with every corner stored; answer with an ``exact=False`` interpolation
   (the async service additionally backfills the exact result).
3. **simulate** -- run the job on a campaign executor, commit the result to
   the store, answer exactly.

:func:`answer_query` is the blocking one-shot used by the Python facade
(``repro.answer_query``) and by tests; :mod:`repro.service` wraps the same
building blocks (:func:`exact_answer`, :func:`surrogate_answer_for`,
:func:`response_for`) in an asyncio core that adds per-job coalescing,
backpressure and asynchronous backfill.

Aggregation of exact grid answers (the per-point all-application averages
of Table 5.4) is delegated to the store-backed
:class:`~repro.campaign.view.StoreSweep` +
:func:`~repro.experiments.runner.point_averages` -- the same code path the
figure/report layer uses, so a served aggregate can never disagree with a
rendered table.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.api.query import (
    NormalisedQuery,
    PointAnswer,
    Provenance,
    QueryPoint,
    QueryRequest,
    QueryResponse,
    metrics_from_result,
)
from repro.api.surrogate import SurrogateAnswer, SurrogateLattice
from repro.campaign.jobs import Job
from repro.campaign.store import BaseResultStore
from repro.campaign.view import StoreSweep
from repro.config.parameters import ArchitectureConfig
from repro.core.results import SimulationResult

#: A runner takes jobs and returns their results, in order.  Injectable so
#: tests (and the service's stats layer) can count simulator invocations
#: exactly; the default builds a serial in-process executor.
RunJobs = Callable[[Sequence[Job]], List[SimulationResult]]


def default_run_jobs(jobs: Sequence[Job]) -> List[SimulationResult]:
    """Run jobs on a serial in-process executor, preserving order."""
    from repro.campaign.executors import SerialExecutor

    results_by_key: Dict[str, SimulationResult] = {}
    for job, result in SerialExecutor().run(jobs):
        results_by_key[job.key()] = result
    return [results_by_key[job.key()] for job in jobs]


def store_provenance_fields(
    store: Optional[BaseResultStore],
) -> Dict[str, Optional[str]]:
    """The store identity stamped into every answer's provenance."""
    if store is None:
        return {"store_backend": None, "store_root": None}
    return {"store_backend": store.backend_name, "store_root": str(store.root)}


def exact_answer(
    query_point: QueryPoint,
    result: SimulationResult,
    source: str,
    store: Optional[BaseResultStore] = None,
) -> PointAnswer:
    """An ``exact=True`` answer from a simulator result (store or fresh)."""
    return PointAnswer(
        application=query_point.application,
        label=query_point.label,
        retention_us=query_point.retention_us,
        exact=True,
        metrics=metrics_from_result(result),
        provenance=Provenance(
            job_key=query_point.key,
            source=source,
            **store_provenance_fields(store),
        ),
        result=result.to_dict(),
    )


def surrogate_answer_for(
    query_point: QueryPoint,
    surrogate: SurrogateAnswer,
    store: Optional[BaseResultStore] = None,
) -> PointAnswer:
    """An ``exact=False`` answer from a lattice interpolation."""
    return PointAnswer(
        application=query_point.application,
        label=query_point.label,
        retention_us=query_point.retention_us,
        exact=False,
        metrics=dict(surrogate.metrics),
        bounds={name: list(interval) for name, interval in surrogate.bounds.items()},
        provenance=Provenance(
            job_key=query_point.key,
            source="surrogate",
            corner_keys=surrogate.corner_keys,
            **store_provenance_fields(store),
        ),
    )


def attach_normalised(
    normalised: NormalisedQuery, answers_by_key: Dict[str, PointAnswer]
) -> None:
    """Fill each non-baseline answer's paper metrics (relative to SRAM).

    Normalisation needs the application's exact baseline from the same
    query; answers (exact or surrogate) of applications whose baseline was
    not requested, or whose baseline answer is missing, are left without a
    ``normalised`` block rather than silently normalised against nothing.
    """
    baseline_metrics: Dict[str, Dict[str, float]] = {}
    for query_point in normalised.points:
        if not query_point.is_baseline:
            continue
        answer = answers_by_key.get(query_point.key)
        if answer is not None and answer.exact:
            baseline_metrics[query_point.application] = answer.metrics
    for query_point in normalised.points:
        if query_point.is_baseline:
            continue
        answer = answers_by_key.get(query_point.key)
        baseline = baseline_metrics.get(query_point.application)
        if answer is None or baseline is None:
            continue
        answer.normalised = {
            "memory": answer.metrics["memory_energy_j"]
            / baseline["memory_energy_j"],
            "system": answer.metrics["system_energy_j"]
            / baseline["system_energy_j"],
            "time": answer.metrics["execution_cycles"]
            / baseline["execution_cycles"],
        }


def grid_aggregates(
    normalised: NormalisedQuery,
    store: Optional[BaseResultStore],
    answers_by_key: Dict[str, PointAnswer],
) -> Optional[Dict[str, Dict[str, float]]]:
    """Per-point-label averages across applications (the Table 5.4 view).

    Served only when the whole grid was answered exactly with baselines
    included and a store is attached -- aggregation then runs through
    :class:`StoreSweep` + :func:`point_averages`, the exact code path the
    figure layer uses.  Otherwise (surrogates present, storeless service,
    baselines excluded) returns None instead of an average that mixes
    approximations into a table masquerading as measurement.
    """
    if store is None or not normalised.request.include_baseline:
        return None
    if not all(
        answer.exact for answer in answers_by_key.values()
    ) or not normalised.policy_points:
        return None
    from repro.experiments.runner import point_averages

    sweep = StoreSweep(
        store,
        jobs=[query_point.job for query_point in normalised.points],
        points=normalised.policy_points,
    )
    applications = list(normalised.request.applications)
    return {
        point.label: point_averages(sweep, point, applications)
        for point in normalised.policy_points
    }


def answer_query(
    request: QueryRequest,
    store: Optional[BaseResultStore] = None,
    architecture: Optional[ArchitectureConfig] = None,
    run_jobs: Optional[RunJobs] = None,
    lattice: Optional[SurrogateLattice] = None,
) -> QueryResponse:
    """Answer a query synchronously: store hits, then surrogates, then runs.

    Args:
        request: the validated query.
        store: result store consulted first and extended with every fresh
            result (None runs everything in-process, storeless).
        architecture: machine model to normalise against (default: the
            scaled preset shared with the CLI and campaigns).
        run_jobs: execution seam, default a serial in-process executor.
        lattice: surrogate interpolator; only consulted when the request
            sets ``allow_surrogate`` (no backfill here -- the async service
            layers that on top).
    """
    normalised = request.normalise(architecture)
    unique_points = normalised.unique_points()
    runner = run_jobs if run_jobs is not None else default_run_jobs

    answers_by_key: Dict[str, PointAnswer] = {}
    misses: List[QueryPoint] = []
    for query_point in unique_points:
        result = store.get(query_point.key) if store is not None else None
        if result is not None:
            answers_by_key[query_point.key] = exact_answer(
                query_point, result, source="store", store=store
            )
            continue
        if request.allow_surrogate and lattice is not None:
            surrogate = lattice.interpolate(query_point)
            if surrogate is not None:
                answers_by_key[query_point.key] = surrogate_answer_for(
                    query_point, surrogate, store=store
                )
                continue
        misses.append(query_point)

    if misses:
        results = runner([query_point.job for query_point in misses])
        for query_point, result in zip(misses, results):
            if store is not None:
                store.put(query_point.job, result)
            answers_by_key[query_point.key] = exact_answer(
                query_point, result, source="simulated", store=store
            )
        if store is not None:
            store.flush()

    attach_normalised(normalised, answers_by_key)
    return QueryResponse(
        request=request,
        answers=[
            answers_by_key[query_point.key] for query_point in unique_points
        ],
        aggregates=grid_aggregates(normalised, store, answers_by_key),
    )
