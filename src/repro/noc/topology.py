"""Torus topology and routing distance.

The paper's 16 cores are connected by a 4x4 torus; each vertex hosts one
core (with its private L1s and L2) and one bank of the shared L3.  Requests
travel from the requesting core's vertex to the home L3 bank's vertex and
back; coherence traffic (invalidations, forwards) travels between vertices.

The torus wraps around in both dimensions, so the hop distance along one
dimension is ``min(delta, size - delta)``.  Routing is dimension ordered
(X then Y), which is deadlock free and gives deterministic hop counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class TorusTopology:
    """A ``width x height`` torus of vertices numbered row-major."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("torus dimensions must be positive")

    @property
    def num_vertices(self) -> int:
        """Total number of vertices (cores / L3 banks)."""
        return self.width * self.height

    def coordinates(self, vertex: int) -> Tuple[int, int]:
        """Return the (x, y) coordinates of a vertex id."""
        self._check_vertex(vertex)
        return vertex % self.width, vertex // self.width

    def vertex(self, x: int, y: int) -> int:
        """Return the vertex id at coordinates (x, y), with wrap-around."""
        return (y % self.height) * self.width + (x % self.width)

    def hop_distance(self, src: int, dst: int) -> int:
        """Minimal number of links between two vertices on the torus."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        x_delta = abs(sx - dx)
        y_delta = abs(sy - dy)
        x_hops = min(x_delta, self.width - x_delta)
        y_hops = min(y_delta, self.height - y_delta)
        return x_hops + y_hops

    def route(self, src: int, dst: int) -> List[int]:
        """Dimension-ordered (X then Y) route, as a list of vertices.

        The route includes both endpoints.  Along each dimension the shorter
        wrap-around direction is taken; ties go to the positive direction.
        """
        self._check_vertex(src)
        self._check_vertex(dst)
        path = [src]
        x, y = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        for step in self._dimension_steps(x, dx, self.width):
            x = (x + step) % self.width
            path.append(self.vertex(x, y))
        for step in self._dimension_steps(y, dy, self.height):
            y = (y + step) % self.height
            path.append(self.vertex(x, y))
        return path

    def neighbours(self, vertex: int) -> List[int]:
        """The (up to four distinct) neighbours of a vertex on the torus."""
        x, y = self.coordinates(vertex)
        candidates = [
            self.vertex(x + 1, y),
            self.vertex(x - 1, y),
            self.vertex(x, y + 1),
            self.vertex(x, y - 1),
        ]
        unique: List[int] = []
        for candidate in candidates:
            if candidate != vertex and candidate not in unique:
                unique.append(candidate)
        return unique

    def all_vertices(self) -> Iterator[int]:
        """Iterate over every vertex id."""
        return iter(range(self.num_vertices))

    # -- helpers -----------------------------------------------------------

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise ValueError(
                f"vertex {vertex} outside torus of {self.num_vertices} vertices"
            )

    @staticmethod
    def _dimension_steps(start: int, goal: int, size: int) -> Iterator[int]:
        """Yield +1/-1 steps moving ``start`` to ``goal`` the short way."""
        delta = (goal - start) % size
        if delta == 0:
            return
        if delta <= size - delta:
            for _ in range(delta):
                yield 1
        else:
            for _ in range(size - delta):
                yield -1
