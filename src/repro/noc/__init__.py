"""On-chip network: 4x4 torus topology and message cost model."""

from repro.noc.network import NetworkMessage, TorusNetwork
from repro.noc.topology import TorusTopology

__all__ = ["NetworkMessage", "TorusNetwork", "TorusTopology"]
