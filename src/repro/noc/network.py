"""Network cost model on top of the torus topology.

The evaluation needs two things from the network: the latency a request pays
to cross the chip (added to the miss penalty) and the energy spent moving
messages (part of the Fig. 6.3 total-system energy).  Contention is not
modelled -- the paper's network is lightly loaded and its results do not
hinge on queuing delay -- so a message's latency is simply
``hops * (router_delay + link_delay)`` and its energy is
``hops * (router_energy + link_energy)`` scaled by the message size in flits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.noc.topology import TorusTopology
from repro.utils.statistics import Counter

#: Size in bytes of a message that carries no data (request, ack, invalidate).
CONTROL_MESSAGE_BYTES = 8

#: Flit width in bytes used to convert message size into hop energy units.
FLIT_BYTES = 8


@dataclass(frozen=True)
class NetworkMessage:
    """A single traversal of the network.

    Attributes:
        src: source vertex (core or L3 bank id).
        dst: destination vertex.
        payload_bytes: data carried in addition to the control header
            (a full cache line for data messages, 0 for control messages).
    """

    src: int
    dst: int
    payload_bytes: int = 0

    @property
    def flits(self) -> int:
        """Number of flits occupied by this message."""
        total_bytes = CONTROL_MESSAGE_BYTES + self.payload_bytes
        return max(1, -(-total_bytes // FLIT_BYTES))


class TorusNetwork:
    """Latency / energy / message-count model of the on-chip torus."""

    def __init__(
        self,
        topology: TorusTopology,
        router_hop_cycles: int = 1,
        link_hop_cycles: int = 1,
        counters: Optional[Counter] = None,
    ) -> None:
        self.topology = topology
        self.router_hop_cycles = router_hop_cycles
        self.link_hop_cycles = link_hop_cycles
        self.counters = counters if counters is not None else Counter()
        self._counts = self.counters.raw
        # The topology is static, so hop distances (and hence latencies) are
        # precomputed once; a message send is then two table reads and three
        # counter increments, with no per-message object.
        vertices = range(topology.num_vertices)
        self._hops = [
            [topology.hop_distance(src, dst) for dst in vertices]
            for src in vertices
        ]
        self._cycles_per_hop = router_hop_cycles + link_hop_cycles
        self._control_flits = max(
            1, -(-CONTROL_MESSAGE_BYTES // FLIT_BYTES)
        )

    def latency(self, src: int, dst: int) -> int:
        """Cycles for a message from ``src`` to ``dst`` (0 if same vertex)."""
        return self._hops[src][dst] * self._cycles_per_hop

    def send(self, message: NetworkMessage) -> int:
        """Account for one message and return its latency in cycles.

        Updates the ``network_messages``, ``network_router_hops`` and
        ``network_link_hops`` counters; hop counters are weighted by the
        message's flit count so larger (data-carrying) messages cost
        proportionally more energy.
        """
        return self._record(message.src, message.dst, message.flits)

    def send_control(self, src: int, dst: int) -> int:
        """Send a data-less (request/ack/invalidate) message."""
        return self._record(src, dst, self._control_flits)

    def send_data(self, src: int, dst: int, line_bytes: int) -> int:
        """Send a message carrying one cache line of data."""
        total_bytes = CONTROL_MESSAGE_BYTES + line_bytes
        return self._record(src, dst, max(1, -(-total_bytes // FLIT_BYTES)))

    def _record(self, src: int, dst: int, flits: int) -> int:
        """Count one message of ``flits`` flits and return its latency."""
        hops = self._hops[src][dst]
        weighted = hops * flits
        counts = self._counts
        counts["network_messages"] += 1
        # A same-vertex message crosses no router or link; adding the zero
        # would materialise phantom zero-valued hop counters into the live
        # defaultdict and break counter-snapshot byte-identity.
        if weighted:
            counts["network_router_hops"] += weighted
            counts["network_link_hops"] += weighted
        return hops * self._cycles_per_hop
