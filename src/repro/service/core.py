"""The async sweep service: memoised, coalesced, surrogate-backed answers.

:class:`SweepService` is the event-loop half of sweep-as-a-service.  Each
query is classified **synchronously on the loop** (no await between looking
a job up and claiming it) into four buckets per unique job hash:

- **store hit** -- answered immediately from the result store.
- **coalesced** -- an identical job is already in flight (owned by another
  query, or by a surrogate backfill); this query just awaits its future.
  One simulation, N waiters: the memoisation story under concurrency.
- **surrogate** -- off-grid but interpolable; answered ``exact=False`` now,
  and the exact job is scheduled as an asynchronous *backfill* that commits
  to the store (so the next identical query is a store hit).
- **owned** -- a genuine cold miss this query claims: its future is
  registered in the in-flight map *before* the first await, then the whole
  owned set runs as one batch on the campaign executor in a worker thread,
  gated by a semaphore (backpressure: at most ``max_concurrent_batches``
  simulator batches, everything else queues on the loop, where waiting is
  free).

Every counter in :class:`ServiceStats` is exact -- queries, store hits,
jobs executed, coalesced waits, surrogates, backfills -- because exact
counts, not timing, are this repo's test and CI currency.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.api.answer import (
    RunJobs,
    attach_normalised,
    default_run_jobs,
    exact_answer,
    grid_aggregates,
    surrogate_answer_for,
)
from repro.api.query import (
    PointAnswer,
    QueryPoint,
    QueryRequest,
    QueryResponse,
)
from repro.api.surrogate import SurrogateLattice
from repro.campaign.store import BaseResultStore
from repro.config.parameters import ArchitectureConfig
from repro.config.presets import scaled_architecture
from repro.core.results import SimulationResult

#: Default bound on simulator batches running concurrently in worker
#: threads; everything beyond it waits on the loop (where waiting is free).
DEFAULT_MAX_CONCURRENT_BATCHES = 2


@dataclass
class ServiceStats:
    """Exact counters of everything the service did.

    Attributes:
        queries: queries answered (one per :meth:`SweepService.answer`).
        store_hits: unique query points answered straight from the store.
        jobs_executed: simulations actually run (owned misses + backfills).
        batches_executed: executor batches those runs were grouped into.
        coalesced: query points that waited on an identical in-flight job
            instead of running their own.
        surrogate_answers: points answered by interpolation (exact=False).
        backfills_scheduled / backfills_completed: exact jobs queued /
            finished behind surrogate answers.
        validation_failures: served answers that failed the invariant check
            (only counted when the service validates answers).
        errors: queries that raised instead of answering.
    """

    queries: int = 0
    store_hits: int = 0
    jobs_executed: int = 0
    batches_executed: int = 0
    coalesced: int = 0
    surrogate_answers: int = 0
    backfills_scheduled: int = 0
    backfills_completed: int = 0
    validation_failures: int = 0
    errors: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON form (served at ``/v1/stats``)."""
        return {
            "queries": self.queries,
            "store_hits": self.store_hits,
            "jobs_executed": self.jobs_executed,
            "batches_executed": self.batches_executed,
            "coalesced": self.coalesced,
            "surrogate_answers": self.surrogate_answers,
            "backfills_scheduled": self.backfills_scheduled,
            "backfills_completed": self.backfills_completed,
            "validation_failures": self.validation_failures,
            "errors": self.errors,
        }


class SweepService:
    """Answers :class:`QueryRequest` objects on an asyncio event loop.

    Args:
        store: result store for memoisation and backfill (None serves
            storeless: every miss simulates, nothing is remembered).
        architecture: machine model queries normalise against.
        run_jobs: execution seam (default: serial in-process executor);
            called in a worker thread, must be thread-compatible.
        lattice: surrogate interpolator (None disables surrogates; built
            automatically from the store by :func:`make_service`).
        max_concurrent_batches: backpressure bound on simulator batches.
        validate_answers: run the served-answer invariant check
            (:mod:`repro.validate.service`) on every response, counting
            failures in :attr:`ServiceStats.validation_failures`.
    """

    def __init__(
        self,
        store: Optional[BaseResultStore] = None,
        architecture: Optional[ArchitectureConfig] = None,
        run_jobs: Optional[RunJobs] = None,
        lattice: Optional[SurrogateLattice] = None,
        max_concurrent_batches: int = DEFAULT_MAX_CONCURRENT_BATCHES,
        validate_answers: bool = False,
    ) -> None:
        self.store = store
        self.architecture = (
            architecture if architecture is not None else scaled_architecture()
        )
        self.run_jobs = run_jobs if run_jobs is not None else default_run_jobs
        self.lattice = lattice
        self.validate_answers = validate_answers
        self.stats = ServiceStats()
        self._inflight: Dict[str, "asyncio.Future[SimulationResult]"] = {}
        self._batch_semaphore = asyncio.Semaphore(max(1, max_concurrent_batches))
        self._backfill_tasks: Set["asyncio.Task"] = set()

    # -- the query path -----------------------------------------------------------

    async def answer(self, request: QueryRequest) -> QueryResponse:
        """Answer one query; safe to call from any number of tasks."""
        self.stats.queries += 1
        try:
            return await self._answer(request)
        except Exception:
            self.stats.errors += 1
            raise

    async def _answer(self, request: QueryRequest) -> QueryResponse:
        loop = asyncio.get_running_loop()
        normalised = request.normalise(self.architecture)
        unique_points = normalised.unique_points()

        answers_by_key: Dict[str, PointAnswer] = {}
        owned: List[QueryPoint] = []
        waiting: List[Tuple[QueryPoint, "asyncio.Future[SimulationResult]"]] = []

        # Classification is synchronous: between the store probe and the
        # in-flight claim there is no await, so two tasks can never both
        # claim (or both miss) the same job hash.
        for query_point in unique_points:
            key = query_point.key
            result = self.store.get(key) if self.store is not None else None
            if result is not None:
                self.stats.store_hits += 1
                answers_by_key[key] = exact_answer(
                    query_point, result, source="store", store=self.store
                )
                continue
            inflight = self._inflight.get(key)
            if inflight is not None:
                self.stats.coalesced += 1
                waiting.append((query_point, inflight))
                continue
            if request.allow_surrogate and self.lattice is not None:
                surrogate = self.lattice.interpolate(query_point)
                if surrogate is not None:
                    self.stats.surrogate_answers += 1
                    answers_by_key[key] = surrogate_answer_for(
                        query_point, surrogate, store=self.store
                    )
                    self._schedule_backfill(query_point)
                    continue
            future: "asyncio.Future[SimulationResult]" = loop.create_future()
            future.add_done_callback(_retrieve_exception)
            self._inflight[key] = future
            owned.append(query_point)

        if owned:
            results = await self._run_owned(owned)
            for query_point in owned:
                answers_by_key[query_point.key] = exact_answer(
                    query_point,
                    results[query_point.key],
                    source="simulated",
                    store=self.store,
                )
        for query_point, future in waiting:
            result = await future
            answers_by_key[query_point.key] = exact_answer(
                query_point, result, source="simulated", store=self.store
            )

        attach_normalised(normalised, answers_by_key)
        response = QueryResponse(
            request=request,
            answers=[answers_by_key[point.key] for point in unique_points],
            aggregates=grid_aggregates(normalised, self.store, answers_by_key),
        )
        if self.validate_answers:
            from repro.validate.service import check_response

            violations = check_response(response, normalised, store=self.store)
            if violations:
                self.stats.validation_failures += len(violations)
        return response

    # -- execution ----------------------------------------------------------------

    async def _run_owned(
        self, owned: List[QueryPoint]
    ) -> Dict[str, SimulationResult]:
        """Run this query's claimed misses as one batch; resolve their futures."""
        try:
            results = await self._execute([point.job for point in owned])
        except BaseException as exc:
            for query_point in owned:
                future = self._inflight.pop(query_point.key, None)
                if future is not None and not future.done():
                    future.set_exception(exc)
            raise
        by_key: Dict[str, SimulationResult] = {}
        for query_point, result in zip(owned, results):
            by_key[query_point.key] = result
            future = self._inflight.pop(query_point.key, None)
            if future is not None and not future.done():
                future.set_result(result)
        return by_key

    async def _execute(self, jobs) -> List[SimulationResult]:
        """One executor batch in a worker thread, semaphore-bounded, with
        every result committed to the store before anyone observes it."""
        async with self._batch_semaphore:
            results = await asyncio.to_thread(self.run_jobs, jobs)
        self.stats.jobs_executed += len(jobs)
        self.stats.batches_executed += 1
        if self.store is not None:
            for job, result in zip(jobs, results):
                self.store.put(job, result)
            self.store.flush()
        return results

    # -- surrogate backfill -------------------------------------------------------

    def _schedule_backfill(self, query_point: QueryPoint) -> None:
        """Queue the exact job behind a surrogate answer.

        The backfill registers in the same in-flight map as owned jobs, so
        a concurrent identical query coalesces onto it (and gets the exact
        answer) instead of starting a duplicate simulation.
        """
        if self.store is None or query_point.key in self._inflight:
            return
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[SimulationResult]" = loop.create_future()
        future.add_done_callback(_retrieve_exception)
        self._inflight[query_point.key] = future
        self.stats.backfills_scheduled += 1
        task = loop.create_task(self._backfill(query_point, future))
        self._backfill_tasks.add(task)
        task.add_done_callback(self._backfill_tasks.discard)

    async def _backfill(
        self,
        query_point: QueryPoint,
        future: "asyncio.Future[SimulationResult]",
    ) -> None:
        try:
            results = await self._execute([query_point.job])
        except BaseException as exc:
            self._inflight.pop(query_point.key, None)
            if not future.done():
                future.set_exception(exc)
            return
        self._inflight.pop(query_point.key, None)
        if not future.done():
            future.set_result(results[0])
        self.stats.backfills_completed += 1

    async def drain_backfills(self) -> None:
        """Wait for every scheduled backfill to finish (tests, shutdown)."""
        while self._backfill_tasks:
            await asyncio.gather(*list(self._backfill_tasks), return_exceptions=True)

    @property
    def inflight_count(self) -> int:
        """Number of job hashes currently being simulated or backfilled."""
        return len(self._inflight)


def _retrieve_exception(future: "asyncio.Future") -> None:
    # Mark a failed shared future's exception as retrieved even when no
    # waiter ever awaited it (e.g. a backfill with no coalesced queries),
    # so the loop does not log "exception was never retrieved".
    if not future.cancelled():
        future.exception()


def make_service(
    store: Optional[BaseResultStore] = None,
    architecture: Optional[ArchitectureConfig] = None,
    run_jobs: Optional[RunJobs] = None,
    surrogate_retentions: Optional[Tuple[float, ...]] = None,
    max_concurrent_batches: int = DEFAULT_MAX_CONCURRENT_BATCHES,
    validate_answers: bool = False,
) -> SweepService:
    """Build a service with a store-backed surrogate lattice when possible.

    ``surrogate_retentions`` pins the lattice grid (default: the Table 5.4
    retention times); pass an empty tuple to disable surrogates entirely.
    """
    architecture = architecture if architecture is not None else scaled_architecture()
    lattice: Optional[SurrogateLattice] = None
    if store is not None and (
        surrogate_retentions is None or len(surrogate_retentions) >= 2
    ):
        kwargs = {}
        if surrogate_retentions is not None:
            kwargs["retentions_us"] = surrogate_retentions
        lattice = SurrogateLattice(store, architecture=architecture, **kwargs)
    return SweepService(
        store=store,
        architecture=architecture,
        run_jobs=run_jobs,
        lattice=lattice,
        max_concurrent_batches=max_concurrent_batches,
        validate_answers=validate_answers,
    )
