"""Sweep-as-a-service: the asyncio front end over the campaign engine.

:class:`SweepService` (:mod:`repro.service.core`) answers typed queries on
an event loop -- memoised from the result store, coalesced on job hash,
surrogate-backed off-grid, with exact backfill.  :func:`serve`
(:mod:`repro.service.http`) puts the stdlib HTTP layer on top, and
:func:`run_service` is the blocking entry point behind
``python -m repro.service`` and ``repro.cli serve``.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.api.answer import RunJobs
from repro.service.core import (
    DEFAULT_MAX_CONCURRENT_BATCHES,
    ServiceStats,
    SweepService,
    make_service,
)
from repro.service.http import HttpError, handle_connection, serve

__all__ = [
    "DEFAULT_MAX_CONCURRENT_BATCHES",
    "HttpError",
    "ServiceStats",
    "SweepService",
    "handle_connection",
    "make_service",
    "run_service",
    "serve",
]


def run_service(
    store_root: Optional[Union[str, Path]] = None,
    store_backend: str = "auto",
    host: str = "127.0.0.1",
    port: int = 8023,
    jobs: int = 1,
    surrogate_retentions: Optional[Tuple[float, ...]] = None,
    validate_answers: bool = False,
    announce=print,
) -> None:
    """Open the store, build the service, serve until interrupted (blocking)."""
    from repro.campaign.engine import make_executor
    from repro.campaign.store import open_store

    store = (
        open_store(store_root, backend=store_backend)
        if store_root is not None
        else None
    )
    run_jobs: Optional[RunJobs] = None
    if jobs > 1:
        executor = make_executor(jobs)

        def run_jobs(batch, _executor=executor):
            by_key = {job.key(): result for job, result in _executor.run(batch)}
            return [by_key[job.key()] for job in batch]

    service = make_service(
        store=store,
        run_jobs=run_jobs,
        surrogate_retentions=surrogate_retentions,
        validate_answers=validate_answers,
    )

    async def _main() -> None:
        server = await serve(service, host=host, port=port)
        bound = server.sockets[0].getsockname()
        if announce is not None:
            announce(
                f"serving sweep queries on http://{bound[0]}:{bound[1]} "
                f"(store: {store.root if store is not None else 'none'}, "
                f"surrogate: {'on' if service.lattice is not None else 'off'})"
            )
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
