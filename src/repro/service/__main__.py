"""``python -m repro.service``: boot the sweep query service.

A thin argv shim over :func:`repro.service.run_service`; the same flags
exist on ``repro.cli serve`` -- this module only spares deployments the
extra import of the full CLI.
"""

from __future__ import annotations

import argparse


def main(argv=None) -> int:
    from repro.service import run_service

    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve sweep queries over HTTP from a result store.",
    )
    parser.add_argument("--store", default=None, help="result store directory")
    parser.add_argument(
        "--store-backend",
        default="auto",
        choices=("auto", "json", "segment"),
        help="store layout (default: auto-detect)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8023)
    parser.add_argument(
        "--jobs", type=int, default=1, help="simulator worker processes"
    )
    parser.add_argument(
        "--surrogate-retentions",
        default=None,
        help="comma-separated lattice grid in us (empty string disables)",
    )
    parser.add_argument(
        "--validate-answers",
        action="store_true",
        help="run the served-answer invariant check on every response",
    )
    args = parser.parse_args(argv)
    retentions = None
    if args.surrogate_retentions is not None:
        text = args.surrogate_retentions.strip()
        retentions = (
            tuple(float(item) for item in text.split(",") if item.strip())
            if text
            else ()
        )
    run_service(
        store_root=args.store,
        store_backend=args.store_backend,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        surrogate_retentions=retentions,
        validate_answers=args.validate_answers,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
