"""A stdlib-asyncio HTTP front end for :class:`~repro.service.core.SweepService`.

No web framework: requests are parsed off an ``asyncio.start_server``
stream by hand (request line, headers, ``Content-Length`` body), which is
all a four-endpoint JSON API needs and keeps the dependency set at zero.

Endpoints (all JSON):

========  =============  =====================================================
method    path           answer
========  =============  =====================================================
POST      ``/v1/query``  a :class:`~repro.api.query.QueryResponse` for the
                         posted :class:`~repro.api.query.QueryRequest` payload
GET       ``/v1/health`` liveness + store identity
GET       ``/v1/schema`` the JSON Schema of the request payload
GET       ``/v1/stats``  the service's exact counters
========  =============  =====================================================

Malformed requests never reach the simulator: bad JSON, unknown fields,
unparseable policies and oversized bodies all return a 4xx whose body
carries the validation message verbatim.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from repro.api.query import QueryRequest, QueryValidationError
from repro.service.core import SweepService

#: Reject request bodies larger than this (a full-grid query is ~1 KiB).
MAX_BODY_BYTES = 1 << 20

#: Reject header sections larger than this.
MAX_HEADER_BYTES = 1 << 16

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """An error with a definite HTTP status (raised during parsing/routing)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _encode_response(status: int, payload: dict) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    ).encode("ascii")
    return head + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Optional[bytes]]:
    """Parse one request off the stream: (method, path, body or None)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "header section too large") from None
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionResetError("client closed before sending a request")
        raise HttpError(400, "truncated request") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "header section too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, path, _version = parts
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body: Optional[bytes] = None
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"request body over {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than Content-Length") from None
    return method, path.split("?", 1)[0], body


async def _route(
    service: SweepService, method: str, path: str, body: Optional[bytes]
) -> Tuple[int, dict]:
    if path == "/v1/query":
        if method != "POST":
            raise HttpError(405, "use POST for /v1/query")
        if body is None:
            raise HttpError(400, "POST /v1/query requires a JSON body")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from None
        try:
            request = QueryRequest.from_dict(payload)
        except QueryValidationError as exc:
            raise HttpError(400, str(exc)) from None
        response = await service.answer(request)
        return 200, response.to_dict()
    if path == "/v1/health":
        if method != "GET":
            raise HttpError(405, "use GET for /v1/health")
        store = service.store
        return 200, {
            "status": "ok",
            "store_backend": None if store is None else store.backend_name,
            "store_root": None if store is None else str(store.root),
            "surrogate": service.lattice is not None,
        }
    if path == "/v1/schema":
        if method != "GET":
            raise HttpError(405, "use GET for /v1/schema")
        return 200, QueryRequest.json_schema()
    if path == "/v1/stats":
        if method != "GET":
            raise HttpError(405, "use GET for /v1/stats")
        return 200, service.stats.to_dict()
    raise HttpError(404, f"no such endpoint {path!r}")


async def handle_connection(
    service: SweepService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one connection: one request, one JSON response, close."""
    try:
        try:
            method, path, body = await _read_request(reader)
        except ConnectionResetError:
            return
        try:
            status, payload = await _route(service, method, path, body)
        except HttpError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except Exception as exc:  # a bug, not a bad request: say so, stay up
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        writer.write(_encode_response(status, payload))
        await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def serve(
    service: SweepService, host: str = "127.0.0.1", port: int = 8023
) -> asyncio.AbstractServer:
    """Start the HTTP server for a service; returns the listening server.

    Pass ``port=0`` to bind an ephemeral port (tests); read it back from
    ``server.sockets[0].getsockname()[1]``.
    """

    async def _handler(reader, writer):
        await handle_connection(service, reader, writer)

    return await asyncio.start_server(
        _handler, host=host, port=port, limit=MAX_HEADER_BYTES + MAX_BODY_BYTES
    )
