"""Command-line interface for the Refrint reproduction.

Three subcommands cover the common workflows without writing any Python:

``tables``
    Print the paper's descriptive tables (3.1, 5.1-5.4, 6.1), regenerated
    from the library's own data structures.

``simulate``
    Run one application on the SRAM baseline and one eDRAM policy point and
    print the normalised comparison.

``sweep``
    Run the Table 5.4 sweep for a set of applications, print the figures of
    Chapter 6 as text tables, and optionally write a JSON summary and a
    Markdown report.  The sweep runs through the campaign engine:
    ``--jobs N`` fans the grid out over N worker processes (results are
    bit-identical to a serial run), ``--store DIR`` persists every point to
    a content-addressed result store, and ``--resume`` skips points already
    present in the store.

``validate``
    Re-derive the analytic counter/energy invariants for every run of a
    persisted campaign and scan the grid for anomalous perf patterns
    (e.g. refresh energy that fails to shrink with longer retention).
    Exits non-zero on any violation or anomaly, so CI can gate on it;
    ``--json`` writes the machine-readable artifact.

``serve``
    Boot the sweep query service: an asyncio HTTP endpoint answering
    POSTed (workload, config-grid) queries from a result store, coalescing
    concurrent identical queries on job hash, interpolating off-grid
    configurations (``exact=False`` surrogates with asynchronous exact
    backfill) and scheduling genuine misses onto the campaign executors.
    The argument surface is the same typed :class:`QueryRequest` schema the
    HTTP body uses, so CLI and service answers share job hashes and stores.

``store``
    Maintain a campaign result store (either backend -- the per-file JSON
    layout or the indexed segment layout, auto-detected): ``store ls DIR``
    lists its entries, ``store gc DIR`` drops stray files and repairs or
    retires corrupt entries (``--dry-run`` to preview), ``store verify
    DIR`` re-checks every entry's content hash, payload round-trip, index
    consistency and crash damage, and ``store migrate SRC DST --to
    {json,segment}`` converts a store between the two layouts
    byte-identically.

Examples::

    python -m repro.cli tables
    python -m repro.cli simulate --application fft --timing refrint \
        --data "WB(32,32)" --retention-us 50
    python -m repro.cli sweep --applications fft,barnes,blackscholes \
        --length-scale 0.5 --report sweep.md --json sweep.json
    python -m repro.cli sweep --applications all --jobs 4 \
        --store results/ --store-backend segment --resume
    python -m repro.cli store verify results/
    python -m repro.cli store migrate results/ results-seg/ --to segment
    python -m repro.cli serve --store results/ --port 8023
    python -m repro.cli validate --store results/ \
        --applications fft,blackscholes --retentions 50 \
        --length-scale 0.05 --json validation.json
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path
from typing import List, Optional, Sequence

from repro.api.query import QueryRequest, QueryValidationError
from repro.campaign.engine import make_executor, run_campaign
from repro.config.parameters import DataPolicySpec, SimulationConfig, TimingPolicyKind
from repro.config.presets import paper_data_policies, scaled_architecture
from repro.core.simulator import RefrintSimulator
from repro.core.sweep import PolicyPoint
from repro.experiments import figures as figure_module
from repro.experiments import tables as table_module
from repro.experiments.report import sweep_report
from repro.experiments.runner import headline_summary
from repro.workloads.suite import APPLICATION_NAMES, DEFAULT_SEED, build_application

# ---------------------------------------------------------------------------
# Argument parsing: one source of truth
#
# Every textual policy/application/retention argument is parsed by the
# QueryRequest schema (repro.api.query) -- the same parsers the HTTP service
# runs on POSTed payloads -- so the CLI and the network API literally cannot
# drift.  The argparse adapters below only translate QueryValidationError
# into argparse.ArgumentTypeError for the usual usage-line error rendering.
# ---------------------------------------------------------------------------


def _adapt(parse, text: str):
    try:
        return parse(text)
    except QueryValidationError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _data_policy_arg(text: str) -> DataPolicySpec:
    return _adapt(QueryRequest.parse_data_policy, text)


def _timing_policy_arg(text: str) -> TimingPolicyKind:
    return _adapt(QueryRequest.parse_timing_policy, text)


def _applications_arg(text: str) -> List[str]:
    return list(_adapt(QueryRequest.parse_applications, text))


def _retentions_arg(text: str) -> tuple:
    return _adapt(QueryRequest.parse_retentions, text)


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.cli.{old} has moved to repro.api.query.{new}; "
        f"this alias will be removed in the next release",
        DeprecationWarning,
        stacklevel=3,
    )


def parse_data_policy(text: str) -> DataPolicySpec:
    """Deprecated alias of :meth:`QueryRequest.parse_data_policy`."""
    _deprecated("parse_data_policy", "QueryRequest.parse_data_policy")
    return _data_policy_arg(text)


def parse_timing_policy(text: str) -> TimingPolicyKind:
    """Deprecated alias of :meth:`QueryRequest.parse_timing_policy`."""
    _deprecated("parse_timing_policy", "QueryRequest.parse_timing_policy")
    return _timing_policy_arg(text)


def parse_applications(text: str) -> List[str]:
    """Deprecated alias of :meth:`QueryRequest.parse_applications`.

    Like the schema parser it now rejects duplicated application names
    (they would silently double-run and double-weight every average).
    """
    _deprecated("parse_applications", "QueryRequest.parse_applications")
    return _applications_arg(text)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Refrint eDRAM refresh reproduction"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("tables", help="print the paper's descriptive tables")

    simulate = commands.add_parser(
        "simulate", help="run one application on one eDRAM policy point"
    )
    simulate.add_argument(
        "--application", default="fft", choices=sorted(APPLICATION_NAMES)
    )
    simulate.add_argument("--timing", type=_timing_policy_arg, default="refrint")
    simulate.add_argument("--data", type=_data_policy_arg, default="WB(32,32)")
    simulate.add_argument("--retention-us", type=float, default=50.0)
    simulate.add_argument("--length-scale", type=float, default=0.5)

    sweep = commands.add_parser("sweep", help="run the Table 5.4 sweep")
    sweep.add_argument(
        "--applications", type=_applications_arg,
        default=["fft", "barnes", "blackscholes"],
    )
    sweep.add_argument("--length-scale", type=float, default=0.5)
    sweep.add_argument(
        "--retentions", type=_retentions_arg, default="50,100,200",
        help="comma-separated retention times in microseconds",
    )
    sweep.add_argument("--json", type=Path, default=None, help="write a JSON summary")
    sweep.add_argument("--report", type=Path, default=None, help="write a Markdown report")
    sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the campaign engine (1 = in-process)",
    )
    sweep.add_argument(
        "--store", type=Path, default=None,
        help="directory of the per-point result store",
    )
    sweep.add_argument(
        "--store-backend", choices=("auto", "json", "segment"), default="auto",
        help="on-disk layout of the result store: one file per result "
             "(json), indexed append-only segments (segment, the right fit "
             "at 10k+ points), or detect from the directory (auto)",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="skip points already present in the result store (needs --store)",
    )
    sweep.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="base RNG seed for the synthetic workload traces",
    )

    validate = commands.add_parser(
        "validate",
        help="check analytic invariants and perf patterns of a stored campaign",
    )
    validate.add_argument(
        "--store", type=Path, required=True,
        help="directory of the campaign's result store",
    )
    validate.add_argument(
        "--store-backend", choices=("auto", "json", "segment"), default="auto",
    )
    validate.add_argument(
        "--applications", type=_applications_arg,
        default=["fft", "barnes", "blackscholes"],
        help="applications the campaign was run with (defines the grid)",
    )
    validate.add_argument(
        "--length-scale", type=float, default=0.5,
        help="workload length scale the campaign was run with",
    )
    validate.add_argument(
        "--retentions", type=_retentions_arg, default="50,100,200",
        help="comma-separated retention times in microseconds",
    )
    validate.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="base RNG seed the campaign was run with",
    )
    validate.add_argument(
        "--json", type=Path, default=None,
        help="write the machine-readable validation artifact",
    )
    validate.add_argument(
        "--rtol", type=float, default=None,
        help="relative slack for the anomaly scan's monotone comparisons",
    )
    validate.add_argument(
        "--strict-missing", action="store_true",
        help="also fail when grid cells are absent from the store",
    )

    serve = commands.add_parser(
        "serve", help="serve sweep queries over HTTP from a result store"
    )
    serve.add_argument(
        "--store", type=Path, default=None,
        help="result store to answer from and backfill into (optional)",
    )
    serve.add_argument(
        "--store-backend", choices=("auto", "json", "segment"), default="auto",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8023)
    serve.add_argument(
        "--jobs", type=int, default=1, help="simulator worker processes"
    )
    serve.add_argument(
        "--surrogate-retentions", type=_retentions_arg, default=None,
        help="retention grid of the surrogate lattice in microseconds "
             "(default: 50,100,200)",
    )
    serve.add_argument(
        "--no-surrogate", action="store_true",
        help="never interpolate; every miss is simulated exactly",
    )
    serve.add_argument(
        "--validate-answers", action="store_true",
        help="run the served-answer invariant check on every response",
    )

    store = commands.add_parser(
        "store", help="maintain a campaign result store (either backend)"
    )
    store.add_argument(
        "action", choices=("ls", "gc", "verify", "migrate"),
        help="ls: list entries; gc: drop orphans and repair/retire corrupt "
             "entries; verify: re-check content hashes and index "
             "consistency; migrate: convert to the other backend",
    )
    store.add_argument("root", type=Path, help="result store directory")
    store.add_argument(
        "destination", type=Path, nargs="?", default=None,
        help="for migrate: directory of the new store (must not exist or "
             "be empty)",
    )
    store.add_argument(
        "--to", choices=("json", "segment"), default="segment",
        help="for migrate: backend of the destination store",
    )
    store.add_argument(
        "--dry-run", action="store_true",
        help="for gc: report what would be removed without deleting",
    )
    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------

def _run_tables(out) -> int:
    for table in (
        table_module.policy_taxonomy_table(),
        table_module.architecture_table(),
        table_module.cell_comparison_table(),
        table_module.applications_table(),
        table_module.sweep_table(),
        table_module.application_binning_table(),
    ):
        print(table_module.render_table(table), file=out)
        print(file=out)
    return 0


def _run_simulate(args, out) -> int:
    architecture = scaled_architecture()
    point = PolicyPoint(args.retention_us, args.timing, args.data)
    workload = build_application(
        args.application, architecture, length_scale=args.length_scale
    )
    print(f"simulating {args.application} / SRAM baseline ...", file=out)
    baseline = RefrintSimulator(SimulationConfig.sram(architecture)).run(workload)
    print(f"simulating {args.application} / {point.label} ...", file=out)
    result = RefrintSimulator(point.simulation_config(architecture)).run(workload)
    print(file=out)
    print(f"memory energy vs SRAM : {result.normalised_memory_energy(baseline):.3f}", file=out)
    print(f"system energy vs SRAM : {result.normalised_system_energy(baseline):.3f}", file=out)
    print(f"execution time vs SRAM: {result.normalised_execution_time(baseline):.3f}", file=out)
    print(f"L3 refreshes          : {result.counter('l3_refreshes')}", file=out)
    print(f"DRAM accesses         : {result.counter('dram_accesses')}", file=out)
    return 0


def _grid_request(args) -> QueryRequest:
    """The canonical request behind ``sweep`` and ``validate`` arguments.

    Same normalisation as a POSTed query: the grid spans both timing
    policies and the paper's seven data policies at the requested
    retentions, so CLI campaigns and served answers share job hashes (and
    therefore stores).
    """
    return QueryRequest(
        applications=args.applications,
        retentions_us=args.retentions,
        timing_policies=(TimingPolicyKind.PERIODIC, TimingPolicyKind.REFRINT),
        data_policies=tuple(paper_data_policies()),
        length_scale=args.length_scale,
        seed=args.seed,
    )


def _run_sweep(args, out) -> int:
    if args.resume and args.store is None:
        print("error: --resume requires --store", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    architecture = scaled_architecture()
    try:
        request = _grid_request(args)
    except QueryValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    retentions = request.retentions_us
    points = request.policy_points()
    requests = request.workload_requests()
    sweep, stats = run_campaign(
        requests,
        points=points,
        architecture=architecture,
        executor=make_executor(args.jobs),
        store=args.store,
        resume=args.resume,
        progress=lambda message: print(f"  {message}", file=out),
        store_backend=args.store_backend,
    )
    print(f"campaign: {stats.summary()}", file=out)
    for figure_fn in (
        figure_module.figure_6_1,
        figure_module.figure_6_2,
        figure_module.figure_6_3,
        figure_module.figure_6_4,
    ):
        print(file=out)
        print(figure_module.render_figure(figure_fn(sweep)), file=out)
    try:
        summary = headline_summary(sweep, retention_us=retentions[0])
        print(file=out)
        print(f"headline @{retentions[0]:g}us:", file=out)
        for key, value in summary.items():
            print(f"  {key:28s} {value:.3f}", file=out)
    except ValueError:
        pass
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(sweep.to_dict(), indent=2, sort_keys=True))
        print(f"wrote {args.json}", file=out)
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(sweep_report(sweep))
        print(f"wrote {args.report}", file=out)
    return 0


def _run_validate(args, out) -> int:
    from repro.campaign.jobs import enumerate_jobs
    from repro.campaign.store import open_store
    from repro.campaign.view import StoreSweep
    from repro.validate.anomaly import DEFAULT_RTOL
    from repro.validate.report import as_json_dict, render_markdown, validate_sweep

    if not args.store.is_dir():
        print(f"error: {args.store} is not a directory", file=sys.stderr)
        return 2
    architecture = scaled_architecture()
    try:
        request = _grid_request(args)
    except QueryValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    points = request.policy_points()
    jobs = enumerate_jobs(request.workload_requests(), points, architecture)
    store = open_store(args.store, backend=args.store_backend)
    sweep = StoreSweep(store, jobs, points)
    rtol = args.rtol if args.rtol is not None else DEFAULT_RTOL
    validation = validate_sweep(sweep, architecture=architecture, rtol=rtol)
    print(render_markdown(validation), file=out)
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(as_json_dict(validation), indent=2, sort_keys=True)
        )
        print(f"wrote {args.json}", file=out)
    if not validation.ok:
        return 1
    if args.strict_missing and validation.anomalies.missing:
        return 1
    return 0


def _run_serve(args, out) -> int:
    from repro.service import run_service

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.store is not None and not args.store.is_dir():
        print(f"error: {args.store} is not a directory", file=sys.stderr)
        return 2
    surrogate_retentions = (
        () if args.no_surrogate else args.surrogate_retentions
    )
    run_service(
        store_root=args.store,
        store_backend=args.store_backend,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        surrogate_retentions=surrogate_retentions,
        validate_answers=args.validate_answers,
        announce=lambda message: print(message, file=out),
    )
    return 0


def _run_store(args, out) -> int:
    from repro.campaign.maintenance import (
        migrate_store,
        store_gc,
        store_ls,
        store_verify,
    )

    if not args.root.is_dir():
        print(f"error: {args.root} is not a directory", file=sys.stderr)
        return 2
    if args.action == "migrate":
        if args.destination is None:
            print("error: store migrate needs a destination", file=sys.stderr)
            return 2
        try:
            copied, skipped = migrate_store(args.root, args.destination, args.to)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(
            f"migrated {copied} entries to {args.destination} ({args.to})",
            file=out,
        )
        if skipped:
            print(
                f"warning: {skipped} unreadable entries skipped; run "
                f"'store gc {args.root}' and retry",
                file=sys.stderr,
            )
            return 1
        return 0
    if args.destination is not None:
        print(
            f"error: store {args.action} takes one directory", file=sys.stderr
        )
        return 2
    if args.action == "ls":
        report = store_ls(args.root)
        for entry in report.entries:
            status = "ok" if entry.ok else f"BAD: {entry.problem}"
            key = (entry.key or entry.path.stem)[:16]
            print(
                f"{key}  {entry.application or '?':14s} "
                f"{entry.label or '?':20s} {status}",
                file=out,
            )
        print(
            f"{len(report.entries)} entries, {len(report.orphans)} stray files",
            file=out,
        )
        return 0
    if args.action == "gc":
        report = store_gc(args.root, dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        for path in report.removed:
            print(f"{verb} {path.name}", file=out)
        for key in report.dropped_keys:
            print(f"dropped index entry {key[:16]}...", file=out)
        kept = len(report.entries) - len(report.problems)
        print(f"{verb} {len(report.removed)} files, kept {kept} entries", file=out)
        return 0
    # verify
    report = store_verify(args.root)
    for entry in report.problems:
        print(f"FAIL {entry.path.name}: {entry.problem}", file=out)
    for path in report.orphans:
        print(f"FAIL {path.name}: stray non-entry file", file=out)
    ok_count = len(report.entries) - len(report.problems)
    print(
        f"verified {len(report.entries)} entries: {ok_count} ok, "
        f"{len(report.problems)} bad, {len(report.orphans)} stray files",
        file=out,
    )
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "tables":
        return _run_tables(out)
    if args.command == "simulate":
        return _run_simulate(args, out)
    if args.command == "sweep":
        return _run_sweep(args, out)
    if args.command == "validate":
        return _run_validate(args, out)
    if args.command == "serve":
        return _run_serve(args, out)
    if args.command == "store":
        return _run_store(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
