"""Synthetic multi-threaded workloads standing in for SPLASH-2 / PARSEC."""

from repro.workloads.suite import (
    APPLICATION_NAMES,
    ApplicationWorkload,
    WorkloadSpec,
    application_class,
    application_specs,
    build_application,
    build_suite,
)
from repro.workloads.synthetic import SyntheticTraceGenerator

__all__ = [
    "APPLICATION_NAMES",
    "ApplicationWorkload",
    "SyntheticTraceGenerator",
    "WorkloadSpec",
    "application_class",
    "application_specs",
    "build_application",
    "build_suite",
]
