"""The evaluated application suite (Tables 5.3 and 6.1).

Each of the paper's eleven SPLASH-2 / PARSEC applications is represented by
a :class:`WorkloadSpec`: a named set of trace-generator knobs chosen so the
synthetic stand-in lands in the class the paper bins the real application
into (Table 6.1) and stresses the same refresh-policy behaviour:

* **Class 1** -- large footprint, high visibility (FFT, FMM, Cholesky,
  Fluidanimate): shared footprints several times the aggregate L3,
  predominantly streaming access, so most L3 lines are touched briefly and
  then sit idle -- the case where aggressive WB(n, m) wins.
* **Class 2** -- small footprint, high visibility (Barnes, LU, Radix,
  Radiosity): working sets that fit on chip but with heavy inter-thread
  sharing, so the directory sees dirty-to-shared transitions and write-backs
  -- WB(n, m) with larger (n, m) and Valid do well.
* **Class 3** -- small footprint, low visibility (Blackscholes,
  Streamcluster, Raytrace): per-thread working sets that fit in the L1/L2
  and see little sharing, so the L3 cannot tell the data is hot -- only the
  conservative Valid policy avoids hurting them.

Footprints are expressed relative to the architecture's cache capacities so
the same specs work for the paper-sized and the scaled geometries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config.parameters import ArchitectureConfig, SimulationConfig
from repro.cpu.trace import TraceStream
from repro.workloads.synthetic import SyntheticTraceGenerator, TraceParameters


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameterisation of one named application.

    Attributes:
        name: application name (lower case, e.g. ``fft``).
        suite: benchmark suite the original application comes from.
        problem_size: the input the paper lists in Table 5.3 (documentation
            only; the synthetic generator does not parse it).
        app_class: the paper's Class 1 / 2 / 3 bin from Table 6.1.
        l3_footprint_ratio: shared footprint as a multiple of the aggregate
            L3 capacity.
        l2_private_ratio: per-thread private footprint as a multiple of one
            L2's capacity.
        hot_l1_ratio: per-thread hot buffer as a multiple of one L1D.
        hot_fraction: fraction of references to the hot buffer.
        shared_fraction: fraction of the remaining references that go to the
            shared region (the rest stay in the private region).
        sequential_fraction: streaming-sweep share of shared references.
        migration_fraction: producer-consumer share of shared references.
        write_fraction: store fraction.
        reference_scale: relative trace length (1.0 = the suite default).
        mean_gap_instructions: mean non-memory instructions between
            references.
    """

    name: str
    suite: str
    problem_size: str
    app_class: int
    l3_footprint_ratio: float
    l2_private_ratio: float
    hot_l1_ratio: float
    hot_fraction: float
    shared_fraction: float
    sequential_fraction: float
    migration_fraction: float
    write_fraction: float
    reference_scale: float = 1.0
    mean_gap_instructions: float = 3.0


#: Baseline number of data references per thread at ``length_scale == 1.0``.
BASE_REFERENCES_PER_THREAD = 4000


_SPECS: Tuple[WorkloadSpec, ...] = (
    # ----- Class 1: large footprint, high visibility -------------------------
    WorkloadSpec(
        name="fft", suite="SPLASH-2", problem_size="2^20 points", app_class=1,
        l3_footprint_ratio=4.0, l2_private_ratio=0.15, hot_l1_ratio=0.15,
        hot_fraction=0.35, shared_fraction=0.90,
        sequential_fraction=0.88, migration_fraction=0.05,
        write_fraction=0.35, reference_scale=1.1,
    ),
    WorkloadSpec(
        name="fmm", suite="SPLASH-2", problem_size="16 K particles", app_class=1,
        l3_footprint_ratio=3.0, l2_private_ratio=0.20, hot_l1_ratio=0.20,
        hot_fraction=0.40, shared_fraction=0.85,
        sequential_fraction=0.75, migration_fraction=0.10,
        write_fraction=0.30, reference_scale=1.0,
    ),
    WorkloadSpec(
        name="cholesky", suite="SPLASH-2", problem_size="tk29.O", app_class=1,
        l3_footprint_ratio=2.5, l2_private_ratio=0.18, hot_l1_ratio=0.18,
        hot_fraction=0.38, shared_fraction=0.88,
        sequential_fraction=0.78, migration_fraction=0.08,
        write_fraction=0.40, reference_scale=1.0,
    ),
    WorkloadSpec(
        name="fluidanimate", suite="PARSEC", problem_size="simsmall", app_class=1,
        l3_footprint_ratio=3.5, l2_private_ratio=0.18, hot_l1_ratio=0.18,
        hot_fraction=0.35, shared_fraction=0.88,
        sequential_fraction=0.72, migration_fraction=0.15,
        write_fraction=0.45, reference_scale=1.0,
    ),
    # ----- Class 2: small footprint, high visibility --------------------------
    WorkloadSpec(
        name="barnes", suite="SPLASH-2", problem_size="16 K particles", app_class=2,
        l3_footprint_ratio=0.30, l2_private_ratio=0.9, hot_l1_ratio=0.2,
        hot_fraction=0.50, shared_fraction=0.60,
        sequential_fraction=0.05, migration_fraction=0.45,
        write_fraction=0.30, reference_scale=1.0,
    ),
    WorkloadSpec(
        name="lu", suite="SPLASH-2", problem_size="512 x 512 matrix", app_class=2,
        l3_footprint_ratio=0.35, l2_private_ratio=1.0, hot_l1_ratio=0.2,
        hot_fraction=0.50, shared_fraction=0.55,
        sequential_fraction=0.20, migration_fraction=0.40,
        write_fraction=0.40, reference_scale=1.0,
    ),
    WorkloadSpec(
        name="radix", suite="SPLASH-2", problem_size="2 M keys", app_class=2,
        l3_footprint_ratio=0.40, l2_private_ratio=0.9, hot_l1_ratio=0.2,
        hot_fraction=0.45, shared_fraction=0.65,
        sequential_fraction=0.30, migration_fraction=0.35,
        write_fraction=0.50, reference_scale=1.0,
    ),
    WorkloadSpec(
        name="radiosity", suite="SPLASH-2", problem_size="batch", app_class=2,
        l3_footprint_ratio=0.25, l2_private_ratio=0.8, hot_l1_ratio=0.2,
        hot_fraction=0.55, shared_fraction=0.55,
        sequential_fraction=0.05, migration_fraction=0.50,
        write_fraction=0.35, reference_scale=0.9,
    ),
    # ----- Class 3: small footprint, low visibility ----------------------------
    WorkloadSpec(
        name="blackscholes", suite="PARSEC", problem_size="simmedium", app_class=3,
        l3_footprint_ratio=0.15, l2_private_ratio=0.35, hot_l1_ratio=0.25,
        hot_fraction=0.80, shared_fraction=0.20,
        sequential_fraction=0.20, migration_fraction=0.02,
        write_fraction=0.20, reference_scale=1.0,
    ),
    WorkloadSpec(
        name="streamcluster", suite="PARSEC", problem_size="simsmall", app_class=3,
        l3_footprint_ratio=0.20, l2_private_ratio=0.40, hot_l1_ratio=0.25,
        hot_fraction=0.75, shared_fraction=0.30,
        sequential_fraction=0.35, migration_fraction=0.03,
        write_fraction=0.15, reference_scale=1.0,
    ),
    WorkloadSpec(
        name="raytrace", suite="SPLASH-2", problem_size="teapot", app_class=3,
        l3_footprint_ratio=0.25, l2_private_ratio=0.45, hot_l1_ratio=0.25,
        hot_fraction=0.75, shared_fraction=0.35,
        sequential_fraction=0.05, migration_fraction=0.05,
        write_fraction=0.15, reference_scale=0.9,
    ),
)

#: Application names in the order the paper lists them.
APPLICATION_NAMES: Tuple[str, ...] = tuple(spec.name for spec in _SPECS)


def application_specs() -> Dict[str, WorkloadSpec]:
    """All workload specs keyed by application name."""
    return {spec.name: spec for spec in _SPECS}


def application_class(name: str) -> int:
    """The paper's Class (1, 2 or 3) of an application (Table 6.1)."""
    specs = application_specs()
    if name not in specs:
        raise KeyError(f"unknown application {name!r}")
    return specs[name].app_class


@dataclass(frozen=True)
class ApplicationWorkload:
    """A generated workload: one trace per core plus its describing spec."""

    spec: WorkloadSpec
    traces: Tuple[TraceStream, ...]

    @property
    def name(self) -> str:
        """Application name."""
        return self.spec.name

    @property
    def num_threads(self) -> int:
        """Number of threads (equals the number of traces)."""
        return len(self.traces)

    def total_references(self) -> int:
        """Total data references across all threads."""
        return sum(len(trace) for trace in self.traces)


def _trace_parameters(
    spec: WorkloadSpec,
    architecture: ArchitectureConfig,
    length_scale: float,
    seed: int,
) -> TraceParameters:
    """Translate a workload spec into concrete trace-generator parameters."""
    line = architecture.line_bytes
    shared_bytes = max(line, int(spec.l3_footprint_ratio * architecture.l3_total_bytes))
    private_bytes = max(line, int(spec.l2_private_ratio * architecture.l2.size_bytes))
    hot_bytes = max(line, int(spec.hot_l1_ratio * architecture.l1d.size_bytes))
    references = max(
        1, int(BASE_REFERENCES_PER_THREAD * spec.reference_scale * length_scale)
    )
    return TraceParameters(
        num_threads=architecture.num_cores,
        references_per_thread=references,
        shared_footprint_bytes=shared_bytes,
        private_footprint_bytes=private_bytes,
        hot_footprint_bytes=hot_bytes,
        hot_fraction=spec.hot_fraction,
        shared_fraction=spec.shared_fraction,
        sequential_fraction=spec.sequential_fraction,
        migration_fraction=spec.migration_fraction,
        write_fraction=spec.write_fraction,
        mean_gap_instructions=spec.mean_gap_instructions,
        line_bytes=line,
        seed=seed,
    )


def build_application(
    name: str,
    config: SimulationConfig | ArchitectureConfig,
    length_scale: float = 1.0,
    seed: int | None = None,
) -> ApplicationWorkload:
    """Generate the 16-thread workload for one named application.

    Args:
        name: one of :data:`APPLICATION_NAMES`.
        config: the simulation configuration (or bare architecture) whose
            cache capacities define the footprints.
        length_scale: multiplier on the per-thread trace length; use < 1 for
            quick tests and > 1 for higher-fidelity runs.
        seed: RNG seed override (defaults to the config's seed, or 2013).
    """
    specs = application_specs()
    if name not in specs:
        raise KeyError(
            f"unknown application {name!r}; known: {', '.join(APPLICATION_NAMES)}"
        )
    if isinstance(config, SimulationConfig):
        architecture = config.architecture
        base_seed = config.random_seed if seed is None else seed
    else:
        architecture = config
        base_seed = 2013 if seed is None else seed
    spec = specs[name]
    parameters = _trace_parameters(spec, architecture, length_scale, base_seed)
    generator = SyntheticTraceGenerator(parameters)
    return ApplicationWorkload(spec=spec, traces=tuple(generator.generate()))


def build_suite(
    config: SimulationConfig | ArchitectureConfig,
    length_scale: float = 1.0,
    names: List[str] | None = None,
    seed: int | None = None,
) -> Dict[str, ApplicationWorkload]:
    """Generate workloads for all (or a subset of) the paper's applications."""
    selected = list(names) if names is not None else list(APPLICATION_NAMES)
    return {
        name: build_application(name, config, length_scale=length_scale, seed=seed)
        for name in selected
    }


#: Default RNG seed shared with :class:`SimulationConfig` (the paper's year).
DEFAULT_SEED = 2013


@dataclass(frozen=True)
class WorkloadRequest:
    """A seeded, picklable recipe for regenerating one application workload.

    The campaign engine ships these to worker processes instead of the traces
    themselves: a request is a few dozen bytes, whereas a generated workload
    is millions of addresses.  Because the synthetic generator is a pure
    function of ``(spec, architecture, length_scale, seed)``, rebuilding the
    workload inside a worker yields a bit-identical trace, so parallel and
    serial campaign runs produce identical results.

    Attributes:
        name: application name (one of :data:`APPLICATION_NAMES`).
        length_scale: multiplier on the per-thread trace length.
        seed: base RNG seed for the trace generator.
    """

    name: str
    length_scale: float = 1.0
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.length_scale <= 0:
            raise ValueError("length_scale must be positive")

    def build(self, architecture: ArchitectureConfig) -> ApplicationWorkload:
        """Generate the workload this request describes."""
        return build_application(
            self.name,
            architecture,
            length_scale=self.length_scale,
            seed=self.seed,
        )
