"""Synthetic multi-threaded memory-trace generation.

The paper's workloads are 16-threaded SPLASH-2 and PARSEC applications run
under SESC.  What its refresh policies respond to is not the instruction
semantics of those programs but the *statistics of the reference stream*
arriving at the cache hierarchy -- most importantly the two axes of
Fig. 3.1:

* the application footprint relative to the last-level cache, and
* the "visibility" the last-level cache has of upper-level activity
  (data sharing between threads and dirty evictions from the private
  caches versus working sets that sit quietly in the L1/L2).

:class:`SyntheticTraceGenerator` produces per-thread traces from knobs that
directly control those statistics.  Every thread draws each reference from
one of four pools:

* a small per-thread **hot buffer** (stack/scalars/innermost data) that fits
  in the L1 and provides temporal locality;
* a per-thread **private region** sized relative to the L2 (the part of the
  working set that overflows the L1 but usually not the private hierarchy);
* the **shared region** sized relative to the aggregate L3, accessed either
  as a word-granular streaming sweep (large-footprint applications) or
  uniformly at random;
* a small **migratory pool** inside the shared region, written by one thread
  and read by its neighbour, producing the dirty-to-shared directory
  transitions that give the L3 "visibility" of upper-level activity.

References are word (8-byte) granular, so sequential streams enjoy spatial
locality within a cache line exactly as compiled code does.  Generation is
deterministic given the seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

try:  # numpy vectorises generation; the scalar fallback needs nothing.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

#: Which trace generator this environment runs: the vectorised PCG64 path
#: ("numpy") or the scalar Mersenne-Twister fallback ("scalar").  Both are
#: deterministic in (seed, thread id) but draw *different* (equally valid)
#: streams, so anything keyed by a workload recipe -- campaign job hashes,
#: persistent result stores -- must carry this tag to keep results from the
#: two environments apart.
TRACE_GENERATOR_PROVENANCE = "numpy" if np is not None else "scalar"

from repro.cpu.trace import MemoryOperation, TraceRecord, TraceStream

#: Base of the shared data region in the simulated address space.
SHARED_REGION_BASE = 0x1000_0000

#: Base of the per-thread private regions.  Consecutive threads' regions are
#: packed back to back (like a real allocator would lay them out) rather
#: than at large power-of-two strides, so they spread over all L3 banks and
#: sets instead of aliasing onto the same few.
PRIVATE_REGION_BASE = 0x8000_0000

#: Base of the per-thread hot buffers (stack-like, always near the thread),
#: likewise packed back to back.
HOT_REGION_BASE = 0x4000_0000

#: Access granularity in bytes (one machine word).
WORD_BYTES = 8

#: Number of blocks in the migratory (producer-consumer) pool.
MIGRATORY_POOL_BLOCKS = 64


@dataclass(frozen=True)
class TraceParameters:
    """Knobs describing one application's reference stream.

    Attributes:
        num_threads: number of threads (one per core).
        references_per_thread: data references generated per thread.
        shared_footprint_bytes: size of the region shared by all threads.
        private_footprint_bytes: size of each thread's private region.
        hot_footprint_bytes: size of each thread's hot buffer.
        hot_fraction: probability a reference targets the hot buffer.
        shared_fraction: probability a *non-hot* reference targets the shared
            region (the rest go to the private region).
        sequential_fraction: probability a shared reference continues the
            thread's streaming sweep instead of being drawn at random.
        migration_fraction: probability a shared reference targets the
            migratory producer-consumer pool.
        write_fraction: probability a reference is a store.
        mean_gap_instructions: mean non-memory instructions between
            references.
        line_bytes: cache-line size (for pool sizing only).
        seed: base RNG seed; each thread derives its own stream from it.
    """

    num_threads: int
    references_per_thread: int
    shared_footprint_bytes: int
    private_footprint_bytes: int
    hot_footprint_bytes: int
    hot_fraction: float
    shared_fraction: float
    sequential_fraction: float = 0.0
    migration_fraction: float = 0.0
    write_fraction: float = 0.3
    mean_gap_instructions: float = 3.0
    line_bytes: int = 64
    seed: int = 2013

    def __post_init__(self) -> None:
        for name in (
            "hot_fraction", "shared_fraction", "write_fraction",
            "sequential_fraction", "migration_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        if self.sequential_fraction + self.migration_fraction > 1.0:
            raise ValueError(
                "sequential_fraction + migration_fraction must not exceed 1"
            )
        if self.num_threads < 1:
            raise ValueError("need at least one thread")
        if self.references_per_thread < 0:
            raise ValueError("references_per_thread must be non-negative")
        for name in (
            "shared_footprint_bytes", "private_footprint_bytes",
            "hot_footprint_bytes",
        ):
            if getattr(self, name) < WORD_BYTES:
                raise ValueError(f"{name} must hold at least one word")
        if self.mean_gap_instructions < 0:
            raise ValueError("mean_gap_instructions must be non-negative")

    @property
    def shared_words(self) -> int:
        """Number of words in the shared region."""
        return max(1, self.shared_footprint_bytes // WORD_BYTES)

    @property
    def private_words(self) -> int:
        """Number of words in each thread's private region."""
        return max(1, self.private_footprint_bytes // WORD_BYTES)

    @property
    def hot_words(self) -> int:
        """Number of words in each thread's hot buffer."""
        return max(1, self.hot_footprint_bytes // WORD_BYTES)


class SyntheticTraceGenerator:
    """Deterministic generator of per-thread traces from trace parameters."""

    def __init__(self, parameters: TraceParameters) -> None:
        self.parameters = parameters

    # -- public API -----------------------------------------------------------

    def generate(self) -> List[TraceStream]:
        """Generate one trace per thread."""
        return [
            self.generate_thread(thread)
            for thread in range(self.parameters.num_threads)
        ]

    def generate_thread(self, thread_id: int) -> TraceStream:
        """Generate the trace of one thread.

        With numpy installed the stream is drawn with vectorised PCG64
        sampling; without it a scalar Mersenne-Twister walk draws the same
        distributions.  Both are fully deterministic in (seed, thread id),
        but they produce *different* streams -- an environment must not mix
        results generated with and without numpy.
        """
        params = self.parameters
        count = params.references_per_thread
        if count == 0:
            return TraceStream([], thread_id=thread_id)
        if np is None:
            return self._generate_thread_scalar(thread_id, count)
        rng = np.random.default_rng((params.seed, thread_id))

        addresses = self._draw_addresses(rng, thread_id, count)
        writes = rng.random(count) < params.write_fraction
        gaps = rng.poisson(params.mean_gap_instructions, size=count)

        records = [
            TraceRecord(
                address=int(addresses[i]),
                operation=MemoryOperation.WRITE if writes[i] else MemoryOperation.READ,
                gap_instructions=int(gaps[i]),
            )
            for i in range(count)
        ]
        return TraceStream(records, thread_id=thread_id)

    # -- address stream construction -------------------------------------------

    def _draw_addresses(
        self, rng: np.random.Generator, thread_id: int, count: int
    ) -> np.ndarray:
        """Vectorised construction of the thread's address stream."""
        params = self.parameters

        hot_base = HOT_REGION_BASE + thread_id * params.hot_footprint_bytes
        private_base = PRIVATE_REGION_BASE + thread_id * params.private_footprint_bytes

        # Which pool does each reference use?
        pool_draw = rng.random(count)
        is_hot = pool_draw < params.hot_fraction
        shared_draw = rng.random(count) < params.shared_fraction
        is_shared = (~is_hot) & shared_draw
        is_private = (~is_hot) & (~shared_draw)

        # Sub-kind of shared references.
        kind_draw = rng.random(count)
        is_sequential = is_shared & (kind_draw < params.sequential_fraction)
        is_migratory = is_shared & (
            (kind_draw >= params.sequential_fraction)
            & (kind_draw < params.sequential_fraction + params.migration_fraction)
        )
        is_shared_random = is_shared & ~is_sequential & ~is_migratory

        addresses = np.zeros(count, dtype=np.int64)

        # Hot buffer: uniform over a region that fits in the L1.
        hot_idx = rng.integers(0, params.hot_words, size=count)
        addresses[is_hot] = hot_base + hot_idx[is_hot] * WORD_BYTES

        # Private region: uniform over the per-thread slice.
        private_idx = rng.integers(0, params.private_words, size=count)
        addresses[is_private] = private_base + private_idx[is_private] * WORD_BYTES

        # Shared streaming sweep: each thread walks its own contiguous slice
        # of the shared region word by word, wrapping around, so consecutive
        # references usually fall in the same cache line (spatial locality)
        # while the slice itself is far larger than the caches.
        slice_words = max(1, params.shared_words // params.num_threads)
        slice_start_word = thread_id * slice_words
        seq_positions = np.cumsum(is_sequential.astype(np.int64))
        seq_start = int(rng.integers(0, slice_words))
        seq_word = slice_start_word + (seq_start + seq_positions) % slice_words
        addresses[is_sequential] = (
            SHARED_REGION_BASE + seq_word[is_sequential] * WORD_BYTES
        )

        # Migratory pool: a handful of blocks handed between neighbouring
        # threads in phases, generating dirty-to-shared transitions at the
        # directory.  The block choice depends on the phase so ownership
        # really moves from thread to thread over time.
        pool_blocks = min(
            MIGRATORY_POOL_BLOCKS,
            max(1, params.shared_footprint_bytes // params.line_bytes),
        )
        phase = np.arange(count) // 64
        migratory_block = (
            rng.integers(0, pool_blocks, size=count) + thread_id + phase
        ) % pool_blocks
        word_in_block = rng.integers(0, params.line_bytes // WORD_BYTES, size=count)
        addresses[is_migratory] = (
            SHARED_REGION_BASE
            + migratory_block[is_migratory] * params.line_bytes
            + word_in_block[is_migratory] * WORD_BYTES
        )

        # Shared random: uniform over the whole shared region.
        shared_idx = rng.integers(0, params.shared_words, size=count)
        addresses[is_shared_random] = (
            SHARED_REGION_BASE + shared_idx[is_shared_random] * WORD_BYTES
        )

        return addresses

    # -- pure-Python fallback ---------------------------------------------------

    def _generate_thread_scalar(self, thread_id: int, count: int) -> TraceStream:
        """Scalar (no-numpy) generation: same pools, same distributions.

        One reference at a time through :class:`random.Random` -- slower
        than the vectorised path but dependency-free, and deterministic in
        (seed, thread id) because only integers are fed to the seeder.
        """
        params = self.parameters
        rng = random.Random(params.seed * 1_000_003 + thread_id)
        uniform = rng.random
        randrange = rng.randrange

        hot_base = HOT_REGION_BASE + thread_id * params.hot_footprint_bytes
        private_base = (
            PRIVATE_REGION_BASE + thread_id * params.private_footprint_bytes
        )
        slice_words = max(1, params.shared_words // params.num_threads)
        slice_start_word = thread_id * slice_words
        seq_word = randrange(slice_words)
        pool_blocks = min(
            MIGRATORY_POOL_BLOCKS,
            max(1, params.shared_footprint_bytes // params.line_bytes),
        )
        words_per_line = params.line_bytes // WORD_BYTES
        # Knuth's product-of-uniforms Poisson sampler; the mean gap is a
        # handful of instructions, so the expected iteration count is tiny.
        poisson_floor = math.exp(-params.mean_gap_instructions)

        records = []
        for i in range(count):
            if uniform() < params.hot_fraction:
                address = hot_base + randrange(params.hot_words) * WORD_BYTES
            elif uniform() >= params.shared_fraction:
                address = (
                    private_base + randrange(params.private_words) * WORD_BYTES
                )
            else:
                kind = uniform()
                if kind < params.sequential_fraction:
                    seq_word = (seq_word + 1) % slice_words
                    address = (
                        SHARED_REGION_BASE
                        + (slice_start_word + seq_word) * WORD_BYTES
                    )
                elif kind < params.sequential_fraction + params.migration_fraction:
                    block = (
                        randrange(pool_blocks) + thread_id + i // 64
                    ) % pool_blocks
                    address = (
                        SHARED_REGION_BASE
                        + block * params.line_bytes
                        + randrange(words_per_line) * WORD_BYTES
                    )
                else:
                    address = (
                        SHARED_REGION_BASE
                        + randrange(params.shared_words) * WORD_BYTES
                    )
            gap = 0
            if params.mean_gap_instructions > 0:
                product = uniform()
                while product >= poisson_floor:
                    gap += 1
                    product *= uniform()
            records.append(
                TraceRecord(
                    address=address,
                    operation=(
                        MemoryOperation.WRITE
                        if uniform() < params.write_fraction
                        else MemoryOperation.READ
                    ),
                    gap_instructions=gap,
                )
            )
        return TraceStream(records, thread_id=thread_id)
