"""The numpy columnar scan: classify and retire a hit stretch in ufunc chains.

One call consumes up to ``w`` upcoming references of one core.  Inputs are
the core's pre-staged trace columns (block addresses, write flags, trailing
instruction gaps), its hit map as sorted parallel arrays probed from the
private caches (block -> L1D index / L2 index / MESI writability), and the instruction
fetch state (pending instruction count, interval, resident code-line
indices).  The scan classifies each reference (eligible private hit or
not), accumulates issue times as a cumulative sum of latencies and gaps,
caps the stretch at the first ineligible reference / the replay horizon /
the first instruction-fetch crossing that cannot be served by the resident
code lines, and run-length-encodes the per-cache touch sequences so they
append straight onto the :class:`~repro.coherence.runbuffer.RunBuffer`
lists the scalar loop would have grown one entry at a time.

The scan is *pure*: it reads the columns and writes nothing, returning the
retire count, the boundary issue time, the eligibility frontier (how far
the stretch could have run ignoring the horizon -- the run-ahead driver's
relaxed-horizon promise), the RLE touch lists and the additive tallies.
:func:`repro.kernels.jit.scan_loop` is the same contract as one fused
loop; ``tests/test_property_kernel.py`` pins the two against each other
and against n repetitions of the scalar path.
"""

from __future__ import annotations

import numpy as np

#: Shared result contract (both scan implementations):
#: (n, next_time, frontier,
#:  d_idx, d_cyc, d_cnt, l2_idx, l2_cyc, l2_cnt, i_idx, i_cyc, i_cnt,
#:  writes, d_hits, gsum, ncross, lat_sum, since_out, upgrades)
#: with n retired references, RLE touch lists as plain Python lists,
#: ``upgrades`` the sorted hit-map slots of retired first-writes to
#: Exclusive lines (the caller flips them Modified at batch end), and
#: all-zero/empty fields when n == 0.
EMPTY_SCAN = (0, 0, 0, [], [], [], [], [], [], [], [], [], 0, 0, 0, 0, 0, 0, [])

#: Most instruction-fetch crossings one scan will plan.  A stretch whose
#: gaps make more fetches due is capped there (the reference carrying the
#: excess goes scalar); both scan implementations apply the same bound so
#: their outputs stay identical entry for entry.
CROSSING_CAP = 4096


def _rle(idx: np.ndarray, cyc: np.ndarray):
    """Run-length-encode consecutive equal indices, keeping the last cycle.

    Mirrors the scalar loop's coalescing: a streak of touches to one line
    collapses to a single (index, last cycle, count) entry, and the entry
    order is program order.
    """
    if idx.size == 0:
        return [], [], []
    change = np.flatnonzero(idx[1:] != idx[:-1])
    ends = np.concatenate((change, [idx.size - 1]))
    starts = np.concatenate(([0], change + 1))
    return (
        idx[ends].tolist(),
        cyc[ends].tolist(),
        (ends - starts + 1).tolist(),
    )


def scan_columnar(
    blocks: np.ndarray,
    writes: np.ndarray,
    gaps_next: np.ndarray,
    index: int,
    w: int,
    time: int,
    horizon: int,
    map_blocks: np.ndarray,
    map_l1d: np.ndarray,
    map_l2: np.ndarray,
    map_wok: np.ndarray,
    read_lat: int,
    write_lat: int,
    since: int,
    interval: int,
    slot: int,
    code_idx: np.ndarray,
):
    """Scan references ``index .. index + w`` and plan their batched retire.

    ``horizon`` bounds issue times (references at or past it stay pending);
    pass ``-1`` for unbounded.  ``code_idx`` holds the L1I line index of
    each code-region slot, ``-1`` where the slot is absent or the L1I is
    refresh-blocked (the caller folds its ``busy_horizon`` check in).
    Returns the shared scan tuple (see :data:`EMPTY_SCAN`).
    """
    b = blocks[index : index + w]
    wr = writes[index : index + w]
    g = gaps_next[index : index + w]

    # Hit classification.  ``elig`` marks references the scan itself can
    # retire: L1D presence for reads, MESI write permission (Modified or
    # Exclusive; an Exclusive first-write retires with an upgrade plan)
    # for writes.  ``priv`` marks references that are *core-private* even
    # when not scan-retirable: a read absent from the L1D but resident in
    # the private L2 is a structural fill -- it touches only this core's
    # state, commutes with other cores' hits, and executes at the seam
    # between two scanned segments.  The published frontier extends over
    # the whole private prefix, not just the retired one.  ``map_blocks``
    # is sorted and unique (the staging probe builds it with
    # ``np.unique``), so the lookup is a binary search, not a w-by-m
    # broadcast.
    if map_blocks.size == 0:
        return EMPTY_SCAN
    mi = np.searchsorted(map_blocks, b)
    np.minimum(mi, map_blocks.size - 1, out=mi)
    hit = map_blocks[mi] == b
    l1d = np.where(hit, map_l1d[mi], -1)
    l2p = np.where(hit, map_l2[mi], -1)
    wok = np.where(hit, map_wok[mi], 0)
    is_wr = wr != 0
    elig = np.where(is_wr, wok != 0, l1d >= 0)
    priv = np.where(is_wr, wok != 0, (l1d >= 0) | (l2p >= 0))

    # Issue times: c[k] is reference k's issue cycle, a cumulative sum of
    # per-reference latency (by operation) plus the trailing gap.  A seam
    # fill costs *more* than ``read_lat``, so past the first seam ``c``
    # only underestimates real issue times -- which keeps the frontier
    # promise conservative, never optimistic.
    lat = np.where(is_wr, write_lat, read_lat)
    c = np.empty(w + 1, dtype=np.int64)
    c[0] = time
    np.cumsum(lat + g, out=c[1:])
    c[1:] += time

    bad = np.flatnonzero(~priv)
    npriv = int(bad[0]) if bad.size else w
    if npriv == 0:
        return EMPTY_SCAN
    ne = np.flatnonzero(~elig[:npriv])
    nf = int(ne[0]) if ne.size else npriv

    # Instruction-fetch crossings inside the private window: every
    # ``interval`` instructions one real fetch walks the cyclic code
    # region.  A crossing whose code slot is not resident (or whose L1I is
    # blocked) is a slow operation: it caps the private prefix -- and with
    # it the frontier promise -- *before* the reference whose gap contains
    # it.  L1I contents only change at slow instruction fetches, so a
    # residency check now holds for the whole promise window.
    S = since + np.cumsum(g[:npriv])
    cross_cum = S // interval
    total = int(cross_cum[-1])
    if total > 0:
        jbad = CROSSING_CAP if total > CROSSING_CAP else -1
        slots = (slot + np.arange(min(total, CROSSING_CAP))) % code_idx.size
        miss = np.flatnonzero(code_idx[slots] < 0)
        if miss.size and (jbad < 0 or int(miss[0]) < jbad):
            jbad = int(miss[0])
        if jbad >= 0:
            cut = int(np.searchsorted(cross_cum, jbad + 1, side="left"))
            if cut < npriv:
                npriv = cut
                if nf > npriv:
                    nf = npriv
            if npriv == 0:
                return EMPTY_SCAN

    if nf == 0:
        # The pending reference is a seam fill: nothing retires here, but
        # the private prefix still backs a frontier promise.
        return (0, 0, int(c[npriv])) + EMPTY_SCAN[3:]
    n = nf
    if horizon >= 0:
        n = min(n, int(np.searchsorted(c[:w], horizon, side="left")))
    if n == 0:
        # Horizon-blocked, but the private prefix is real: hand the
        # frontier back anyway so the caller can publish the promise and
        # let the driver relax the *other* cores' horizons while this one
        # waits.
        return (0, 0, int(c[npriv])) + EMPTY_SCAN[3:]

    ncross = int(cross_cum[n - 1])
    gsum = int(S[n - 1]) - since
    since_out = int(S[n - 1]) % interval

    # Touch sequences in program order.  L1D: every read (eligibility
    # guarantees presence) and every write whose block is L1D-resident,
    # stamped at issue.  L2: every write, stamped when its access
    # completes.  L1I: the interval crossings, stamped at the completion
    # cycle of the reference whose gap made them due.
    l1d_n = l1d[:n]
    pd = np.flatnonzero(l1d_n >= 0)
    d_idx, d_cyc, d_cnt = _rle(l1d_n[pd], c[pd])
    pw = np.flatnonzero(is_wr[:n])
    l2_idx, l2_cyc, l2_cnt = _rle(map_l2[mi[pw]], c[pw] + write_lat)
    if pw.size:
        upgrades = np.unique(mi[pw][wok[pw] == 2]).tolist()
    else:
        upgrades = []
    if ncross:
        j = np.arange(ncross)
        kj = np.searchsorted(cross_cum[:n], j + 1, side="left")
        i_idx, i_cyc, i_cnt = _rle(
            code_idx[(slot + j) % code_idx.size], c[kj] + lat[kj]
        )
    else:
        i_idx, i_cyc, i_cnt = [], [], []

    return (
        n,
        int(c[n]),
        int(c[npriv]),
        d_idx, d_cyc, d_cnt,
        l2_idx, l2_cyc, l2_cnt,
        i_idx, i_cyc, i_cnt,
        int(pw.size),
        int(pd.size),
        gsum,
        ncross,
        int(lat[:n].sum()),
        since_out,
        upgrades,
    )
