"""The fused-loop scan: same contract as the columnar scan, one pass.

:func:`scan_loop` plans a batched retire exactly like
:func:`repro.kernels.columnar.scan_columnar`, but as a single fused loop
over the references instead of ufunc chains.  When numba is installed the
loop body (:func:`_scan_core`) is ``njit``-compiled -- typed int64 arrays
in, scalars out, nothing allocated inside -- and one compiled pass beats
the chained ufuncs on short stretches.  Without numba the very same
function runs as plain Python: slower, byte-identical, and the reason
``kernel="numba"`` degrades instead of disappearing on machines without a
working numba (the ``tier1-no-numba`` CI leg runs exactly this fallback).

``tests/test_property_kernel.py`` pins :func:`scan_loop` against
:func:`scan_columnar` entry for entry on randomized columns.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.columnar import CROSSING_CAP, EMPTY_SCAN

try:  # pragma: no cover - exercised on CI where numba is pinned
    from numba import njit
except ImportError:  # pragma: no cover - pure-Python fallback environment
    def njit(*args, **kwargs):  # noqa: D401 - identity decorator stand-in
        """No-op stand-in: run the decorated function as plain Python."""
        if args and callable(args[0]) and not kwargs:
            return args[0]

        def wrap(fn):
            return fn

        return wrap


@njit(cache=True)
def _scan_core(
    blocks, writes, gaps_next, index, w, time, horizon,
    map_blocks, map_l1d, map_l2, map_wok, read_lat, write_lat,
    since, interval, slot, code_idx,
    d_idx, d_cyc, d_cnt, l2_idx, l2_cyc, l2_cnt, i_idx, i_cyc, i_cnt,
    upg_flag,
):
    m = map_blocks.size
    nslots = code_idx.size
    n = 0
    nd = 0
    nl2 = 0
    ni = 0
    writes_n = 0
    d_hits = 0
    gsum = 0
    ncross = 0
    lat_sum = 0
    since_out = since
    since_scan = since
    cross_scan = 0
    c = time
    next_time = time
    emitting = True
    k = 0
    while k < w:
        b = blocks[index + k]
        l1 = -1
        l2v = -1
        wok = 0
        found = False
        # map_blocks is sorted and unique: binary search.
        lo = 0
        hi = m
        while lo < hi:
            mid = (lo + hi) >> 1
            if map_blocks[mid] < b:
                lo = mid + 1
            else:
                hi = mid
        if lo < m and map_blocks[lo] == b:
            l1 = map_l1d[lo]
            l2v = map_l2[lo]
            wok = map_wok[lo]
            found = True
        if writes[index + k] != 0:
            # Writable (Modified or Exclusive) lines retire in-scan; an
            # Exclusive first-write is flagged for the caller's batch-end
            # upgrade.  Anything else ends the private prefix.
            el = found and wok != 0
            pv = el
            lat = write_lat
        else:
            # L1D-resident reads retire in-scan; an L1D miss resident in
            # the private L2 is a seam fill -- private (the frontier runs
            # past it) but retired by the caller, not the scan.
            el = l1 >= 0
            pv = el or (found and l2v >= 0)
            lat = read_lat
        if not pv:
            break
        gap = gaps_next[index + k]
        s2 = since_scan + gap
        nc_gap = s2 // interval
        if nc_gap > 0:
            bad = cross_scan + nc_gap > CROSSING_CAP
            if not bad:
                for j in range(nc_gap):
                    if code_idx[(slot + cross_scan + j) % nslots] < 0:
                        bad = True
                        break
            if bad:
                break
        if emitting and (not el or (horizon >= 0 and c >= horizon)):
            emitting = False
            next_time = c
        if emitting:
            if l1 >= 0:
                d_hits += 1
                if nd > 0 and d_idx[nd - 1] == l1:
                    d_cyc[nd - 1] = c
                    d_cnt[nd - 1] += 1
                else:
                    d_idx[nd] = l1
                    d_cyc[nd] = c
                    d_cnt[nd] = 1
                    nd += 1
            if writes[index + k] != 0:
                writes_n += 1
                if wok == 2:
                    upg_flag[lo] = 1
                tc = c + write_lat
                if nl2 > 0 and l2_idx[nl2 - 1] == l2v:
                    l2_cyc[nl2 - 1] = tc
                    l2_cnt[nl2 - 1] += 1
                else:
                    l2_idx[nl2] = l2v
                    l2_cyc[nl2] = tc
                    l2_cnt[nl2] = 1
                    nl2 += 1
            for j in range(nc_gap):
                ci = code_idx[(slot + cross_scan + j) % nslots]
                fc = c + lat
                if ni > 0 and i_idx[ni - 1] == ci:
                    i_cyc[ni - 1] = fc
                    i_cnt[ni - 1] += 1
                else:
                    i_idx[ni] = ci
                    i_cyc[ni] = fc
                    i_cnt[ni] = 1
                    ni += 1
            gsum += gap
            ncross += nc_gap
            lat_sum += lat
            since_out = s2 % interval
            n += 1
        since_scan = s2 % interval
        cross_scan += nc_gap
        c = c + lat + gap
        k += 1
    if emitting:
        next_time = c
    # c now sits at the issue time of the first reference the stretch could
    # not promise (non-private, bad crossing, or window end): the frontier.
    return (
        n, next_time, c, nd, nl2, ni,
        writes_n, d_hits, gsum, ncross, lat_sum, since_out,
    )


def scan_loop(
    blocks, writes, gaps_next, index, w, time, horizon,
    map_blocks, map_l1d, map_l2, map_wok, read_lat, write_lat,
    since, interval, slot, code_idx,
):
    """Fused-loop twin of :func:`~repro.kernels.columnar.scan_columnar`."""
    d_idx = np.empty(w, dtype=np.int64)
    d_cyc = np.empty(w, dtype=np.int64)
    d_cnt = np.empty(w, dtype=np.int64)
    l2_idx = np.empty(w, dtype=np.int64)
    l2_cyc = np.empty(w, dtype=np.int64)
    l2_cnt = np.empty(w, dtype=np.int64)
    i_idx = np.empty(CROSSING_CAP, dtype=np.int64)
    i_cyc = np.empty(CROSSING_CAP, dtype=np.int64)
    i_cnt = np.empty(CROSSING_CAP, dtype=np.int64)
    upg_flag = np.zeros(map_blocks.size, dtype=np.int64)
    (
        n, next_time, frontier, nd, nl2, ni,
        writes_n, d_hits, gsum, ncross, lat_sum, since_out,
    ) = _scan_core(
        blocks, writes, gaps_next, index, w, time, horizon,
        map_blocks, map_l1d, map_l2, map_wok, read_lat, write_lat,
        since, interval, slot, code_idx,
        d_idx, d_cyc, d_cnt, l2_idx, l2_cyc, l2_cnt, i_idx, i_cyc, i_cnt,
        upg_flag,
    )
    if n == 0:
        # Keep the frontier visible even when the horizon (or a leading
        # seam) blocked every retire: the caller publishes it as a promise
        # for the driver.  A frontier at the start time carries no
        # promise; collapse it to the empty result like the columnar twin.
        if frontier <= time:
            return EMPTY_SCAN
        return (0, 0, int(frontier)) + EMPTY_SCAN[3:]
    return (
        int(n), int(next_time), int(frontier),
        d_idx[:nd].tolist(), d_cyc[:nd].tolist(), d_cnt[:nd].tolist(),
        l2_idx[:nl2].tolist(), l2_cyc[:nl2].tolist(), l2_cnt[:nl2].tolist(),
        i_idx[:ni].tolist(), i_cyc[:ni].tolist(), i_cnt[:ni].tolist(),
        int(writes_n), int(d_hits), int(gsum), int(ncross), int(lat_sum),
        int(since_out),
        np.flatnonzero(upg_flag).tolist(),
    )
