"""Columnar batch-replay kernels for the run-ahead hit path.

PRs 2-4 made the trace columnar (struct-of-arrays cache state, staged
integer accesses, run-buffered protocol commits), but each private-hit
reference still paid one Python interpreter round trip through
:meth:`~repro.cpu.core.Core.step_fast`.  The kernels here close that loop:
the pending trace slice is staged into int64 columns with a sorted
per-block lookaside map (L1D way, private-L2 index, MESI writability,
probed once per distinct block), and a whole stretch of private-hit
references -- L1D-resident reads and M/E-line writes whose
instruction-fetch crossings hit the resident code lines -- is *scanned,
classified and retired in one call*, producing the same coalesced touch
lists and additive counter tallies the scalar loop would have appended
one reference at a time.  A scan that cannot retire anything still
reports the *frontier* (the issue time of the first reference another
core could observe), which the core publishes as a promise so the
driver can relax every other core's batching horizon past it.

Three modes, selected by the simulator's ``kernel`` argument (validated
against :data:`repro.config.parameters.KERNEL_MODES`):

``"off"``
    The scalar :meth:`~repro.cpu.core.Core.step_fast` loop, unchanged.
    The only mode available without numpy.
``"numpy"``
    :func:`repro.kernels.columnar.scan_columnar` -- the scan as numpy
    ufunc chains over pre-staged trace columns.
``"numba"``
    :func:`repro.kernels.jit.scan_loop` -- the same scan as one fused
    loop, compiled with ``numba.njit`` when numba is installed and run as
    plain Python when it is not (byte-identical either way; numba is an
    accelerator, never a semantic dependency).

Every mode produces byte-identical :class:`SimulationResult`s (pinned by
``tests/test_backend_equivalence.py`` and the hypothesis suites).
"""

from __future__ import annotations

from repro.config.parameters import KERNEL_MODES
from repro.mem.arrays import HAVE_NUMPY

try:  # pragma: no cover - exercised on CI where numba is pinned
    import numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the local/no-numba environment
    HAVE_NUMBA = False


def resolve_kernel(kernel: str) -> str:
    """Validate a kernel mode against this environment.

    Raises ``ValueError`` for unknown modes and for array-backed modes
    when numpy is missing (both "numpy" and "numba" stage the trace into
    numpy buffers; without numpy only "off" exists).  A missing *numba*
    does not reject ``"numba"`` -- the jit module falls back to the pure
    Python version of the same loop.
    """
    if kernel not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {kernel!r}; expected one of {KERNEL_MODES}"
        )
    if kernel != "off" and not HAVE_NUMPY:
        raise ValueError(
            f"kernel={kernel!r} stages runs into numpy buffers, but numpy "
            f"is not installed; use kernel='off'"
        )
    return kernel


def scanner_for(kernel: str):
    """The scan callable for a validated, non-"off" kernel mode."""
    if kernel == "numpy":
        from repro.kernels.columnar import scan_columnar

        return scan_columnar
    if kernel == "numba":
        from repro.kernels.jit import scan_loop

        return scan_loop
    raise ValueError(f"no scanner for kernel mode {kernel!r}")
