"""Directory MESI coherence protocol (directory at the shared L3)."""

from repro.coherence.directory import Directory
from repro.coherence.messages import MessageKind
from repro.coherence.protocol import DirectoryProtocol

__all__ = ["Directory", "DirectoryProtocol", "MessageKind"]
