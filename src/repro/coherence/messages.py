"""Coherence message vocabulary.

The protocol engine accounts for every network traversal it causes; tagging
them with a :class:`MessageKind` makes the counters self-describing and lets
tests assert on specific kinds of traffic (e.g. that the WB(n, m) policy
generates back-invalidations while Valid does not).
"""

from __future__ import annotations

import enum


class MessageKind(enum.Enum):
    """Kinds of messages exchanged between cores and L3 banks."""

    #: Core requests a block for reading (GetS).
    READ_REQUEST = "read_request"
    #: Core requests a block for writing (GetM / read-for-ownership).
    WRITE_REQUEST = "write_request"
    #: Core requests write permission for a block it already shares (Upgrade).
    UPGRADE_REQUEST = "upgrade_request"
    #: L3 bank returns a data line to a core.
    DATA_REPLY = "data_reply"
    #: L3 bank asks the owning core to forward / write back its dirty copy.
    OWNER_FETCH = "owner_fetch"
    #: Core sends a dirty line down to its home L3 bank.
    WRITEBACK = "writeback"
    #: L3 bank invalidates an upper-level copy (coherence or inclusion).
    INVALIDATE = "invalidate"
    #: Core acknowledges an invalidation or downgrade.
    ACK = "ack"
    #: Core notifies the directory that it silently dropped a clean copy.
    EVICTION_NOTICE = "eviction_notice"

    @property
    def counter_name(self) -> str:
        """Counter key under which this message kind is recorded."""
        return f"msg_{self.value}"

    @property
    def carries_data(self) -> bool:
        """True when the message carries a full cache line."""
        return self in (MessageKind.DATA_REPLY, MessageKind.WRITEBACK)
