"""Pending-effect buffer for the batched (hit-run) access path.

A leaf module: both the protocol (which commits runs) and the cores (which
accumulate them) need the buffer, and the protocol already sits downstream
of the hierarchy the cores import.
"""

from __future__ import annotations


def merge_extend(idx, cyc, cnt, nidx, ncyc, ncnt) -> None:
    """Append one RLE touch list onto another, coalescing across the seam.

    The batch kernel returns its touch sequences already run-length
    encoded; appending them onto a buffer's pending lists must merge the
    seam entry when the buffer's last line equals the new list's first --
    exactly what the scalar loop's per-touch coalescing would have done.
    The merged entry keeps the *new* cycle (last touch wins) and sums the
    counts.  ``nidx``/``ncyc``/``ncnt`` are not mutated.
    """
    if not nidx:
        return
    start = 0
    if idx and idx[-1] == nidx[0]:
        cyc[-1] = ncyc[0]
        cnt[-1] += ncnt[0]
        start = 1
    if start < len(nidx):
        idx.extend(nidx[start:])
        cyc.extend(ncyc[start:])
        cnt.extend(ncnt[start:])


class RunBuffer:
    """Deferred, commutative effects of a private-cache hit run.

    Under run-ahead replay a core streaming hits out of its private caches
    does not need to walk the protocol per reference: a private hit touches
    only the core's own L1/L2 replacement and refresh timestamps (nobody
    else's) plus globally *additive* activity counters, so those effects
    commute with everything except the core's own structural operations
    (misses, fills, upgrades) and the refresh machinery reading the
    timestamp vectors.  The buffer accumulates them -- per-cache coalesced
    touch lists (line index, cycle of last touch, number of touches) and
    plain integer counter tallies -- until :meth:`DirectoryProtocol.hit_run`
    commits the whole run in one staged call.

    Coalescing is per line: consecutive touches of the same line collapse
    into one entry whose cycle advances, because only the final timestamps
    and LRU stamp of a repeatedly hit line are observable.  The touch lists
    preserve program order, so victim choice after a flush sees exactly the
    stamps sequential execution would have left.
    """

    __slots__ = (
        "l1d_idx", "l1d_cyc", "l1d_cnt",
        "l1i_idx", "l1i_cyc", "l1i_cnt",
        "l2_idx", "l2_cyc", "l2_cnt",
        "l1d_reads", "l1d_writes", "l1d_hits", "l1d_misses",
        "l1i_reads", "l1i_hits",
        "l2_reads", "l2_writes", "l2_hits",
        "instructions",
    )

    def __init__(self) -> None:
        self.l1d_idx: list = []
        self.l1d_cyc: list = []
        self.l1d_cnt: list = []
        self.l1i_idx: list = []
        self.l1i_cyc: list = []
        self.l1i_cnt: list = []
        self.l2_idx: list = []
        self.l2_cyc: list = []
        self.l2_cnt: list = []
        self.clear_tallies()

    def clear_tallies(self) -> None:
        """Zero the counter tallies (the touch lists are cleared on commit)."""
        self.l1d_reads = 0
        self.l1d_writes = 0
        self.l1d_hits = 0
        self.l1d_misses = 0
        self.l1i_reads = 0
        self.l1i_hits = 0
        self.l2_reads = 0
        self.l2_writes = 0
        self.l2_hits = 0
        self.instructions = 0

    def land_touches(self, l1d, l1i, l2) -> bool:
        """Apply and clear the coalesced touch lists onto their caches.

        Each non-None cache receives its pending list through one
        :meth:`~repro.mem.cache.Cache.access_run` bulk call; the tallies
        are untouched.  Returns True when anything landed.  This is the
        single definition of "landing" -- the cores' run maintenance and
        the protocol's run commit must land identically or byte-identity
        breaks only on one of the two paths.
        """
        landed = False
        if l1d is not None and self.l1d_idx:
            l1d.access_run(self.l1d_idx, self.l1d_cyc, self.l1d_cnt)
            self.l1d_idx.clear()
            self.l1d_cyc.clear()
            self.l1d_cnt.clear()
            landed = True
        if l1i is not None and self.l1i_idx:
            l1i.access_run(self.l1i_idx, self.l1i_cyc, self.l1i_cnt)
            self.l1i_idx.clear()
            self.l1i_cyc.clear()
            self.l1i_cnt.clear()
            landed = True
        if l2 is not None and self.l2_idx:
            l2.access_run(self.l2_idx, self.l2_cyc, self.l2_cnt)
            self.l2_idx.clear()
            self.l2_cyc.clear()
            self.l2_cnt.clear()
            landed = True
        return landed

    def empty(self) -> bool:
        """True when nothing is pending (no touches and no tallies)."""
        return not (
            self.l1d_idx or self.l1i_idx or self.l2_idx
            or self.l1d_reads or self.l1d_writes or self.l1i_reads
            or self.l2_reads or self.l2_writes or self.instructions
        )
