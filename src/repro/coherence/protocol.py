"""Directory MESI protocol engine.

This module contains the functional coherence protocol of the simulated CMP:
a directory MESI protocol with the directory held at the shared L3
(Table 5.1), an inclusive hierarchy (an L3 eviction or refresh-policy
invalidation back-invalidates the L2/L1 copies above it), a write-through
data L1 and write-back L2/L3.

The protocol is *functionally atomic*: when a core issues a load, store or
instruction fetch, the complete transaction (lookups, directory actions,
network traversals, DRAM accesses, fills and evictions) is applied in one
call which returns the end-to-end latency in cycles.  Races and transient
states are not modelled; the refresh controllers interleave with accesses in
event order and interact with the protocol only through the well-defined
entry points ``policy_invalidate_l3 / policy_writeback_l3 /
policy_invalidate_l2 / policy_writeback_l2``.

The common-case path (an L1 or L2 hit) is *staged*: it asks the cache for a
packed line index (:meth:`~repro.mem.cache.Cache.access_index`) and reads
the MESI state as an integer code, so a hit costs a handful of list reads
and no allocation.  Rarer transactions (misses, directory actions,
refresh-policy callbacks) materialise the per-line views, whose object
interface carries the directory's sharer sets.

Every cache access, network message and DRAM access is recorded in a shared
:class:`~repro.utils.statistics.Counter`, from which the energy model builds
its account; the hot paths increment the counter's raw dict with
pre-computed keys.
"""

from __future__ import annotations

from typing import Sequence

from repro.coherence.directory import Directory
from repro.coherence.runbuffer import RunBuffer
from repro.coherence.messages import MessageKind
from repro.config.parameters import ArchitectureConfig
from repro.hierarchy.levels import CoreCaches, L3Bank
from repro.mem.cache import Cache
from repro.mem.dram import MainMemory
from repro.mem.line import (
    DirectoryLine,
    MESI_EXCLUSIVE,
    MESI_MODIFIED,
    MESI_SHARED,
    MESIState,
)
from repro.noc.network import TorusNetwork
from repro.utils.statistics import Counter


class DirectoryProtocol:
    """The full-chip coherence protocol over private caches and L3 banks."""

    def __init__(
        self,
        architecture: ArchitectureConfig,
        cores: Sequence[CoreCaches],
        banks: Sequence[L3Bank],
        network: TorusNetwork,
        dram: MainMemory,
        counters: Counter,
    ) -> None:
        self.architecture = architecture
        self.cores = list(cores)
        self.banks = list(banks)
        self.network = network
        self.dram = dram
        self.counters = counters
        self._counts = counters.raw
        self._line_bytes = architecture.line_bytes
        self._line_shift = architecture.line_bytes.bit_length() - 1
        self._block_mask = ~(architecture.line_bytes - 1)
        self._num_banks = len(self.banks)
        # Counter keys are interned once; building an f-string per access
        # would dominate the staged fast path.
        self._msg_keys = {kind: kind.counter_name for kind in MessageKind}
        #: Access-path protocol invocations: one per read / write /
        #: instruction fetch entered plus one per committed hit run.  Kept
        #: off the :class:`Counter` deliberately -- replay modes resolve
        #: different numbers of references per call, so putting it in the
        #: result counters would break byte-identical equivalence.  The
        #: simulator reports it through ``ReplayStats``.
        self.protocol_calls = 0
        #: Cache-level bulk landings of pending run timestamps (see
        #: :meth:`~repro.cpu.core.Core.land_run`); reported next to
        #: ``protocol_calls`` so the batching factor hides nothing.
        self.run_landings = 0
        #: Generation counter bumped whenever a transaction mutates some
        #: *other* core's private lines (owner recalls, coherence
        #: invalidations, back-invalidations, refresh-policy actions on the
        #: L2).  Any cached hit-run resolution (block -> line index /
        #: writability) made before the bump can no longer be trusted;
        #: everything else -- including other cores' plain misses -- leaves
        #: resolutions valid.  A one-element list so cores can hold a
        #: direct reference.
        self.run_epoch = [0]
        #: Cores holding pending run state (non-empty RunBuffer or staged
        #: touches).  A core appends itself on entering the run path and is
        #: removed when its run lands or commits; the run-ahead drivers
        #: drain this instead of calling ``land_run`` on all cores, so
        #: cores that never ran in a batch cost nothing at the barrier.
        self.dirty_cores: list = []

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    def block_of(self, address: int) -> int:
        """Block address containing a byte address."""
        return address & self._block_mask

    def home_bank(self, block: int) -> L3Bank:
        """The statically mapped home L3 bank of a block."""
        return self.banks[(block >> self._line_shift) % self._num_banks]

    # ------------------------------------------------------------------
    # Core-visible operations
    # ------------------------------------------------------------------

    def read(self, core_id: int, address: int, cycle: int) -> int:
        """Data load by ``core_id``; returns the latency in cycles."""
        self.protocol_calls += 1
        return self._load(core_id, address, cycle, instruction=False)

    def instruction_fetch(self, core_id: int, address: int, cycle: int) -> int:
        """Instruction fetch by ``core_id``; returns the latency in cycles."""
        self.protocol_calls += 1
        return self._load(core_id, address, cycle, instruction=True)

    def write(self, core_id: int, address: int, cycle: int) -> int:
        """Data store by ``core_id``; returns the latency in cycles.

        The data L1 is write-through / write-no-allocate: the store updates
        the L1 copy if present and always proceeds to the L2, which must hold
        the line with write permission (M or E).
        """
        self.protocol_calls += 1
        caches = self.cores[core_id]
        counts = self._counts
        block = address & self._block_mask
        l1d = caches.l1d
        latency = self._array_access(
            l1d, "l1d_writes", "l1d_refresh_stall_cycles", cycle, block
        )
        if l1d.access_index(block, cycle) >= 0:
            counts["l1d_hits"] += 1
        else:
            counts["l1d_misses"] += 1

        l2 = caches.l2
        latency += self._array_access(
            l2, "l2_writes", "l2_refresh_stall_cycles", cycle + latency, block
        )
        l2_index = l2.access_index(block, cycle + latency)
        if l2_index >= 0:
            counts["l2_hits"] += 1
            code = l2.state_code(l2_index)
            if code == MESI_MODIFIED:
                return latency
            if code == MESI_EXCLUSIVE:
                l2.set_state_code(l2_index, MESI_MODIFIED)
                return latency
            # SHARED: needs an upgrade from the directory.
            latency += self._upgrade(core_id, block, cycle + latency)
            l2.set_state_code(l2_index, MESI_MODIFIED)
            return latency
        counts["l2_misses"] += 1
        latency += self._fetch_into_l2(
            core_id, block, cycle + latency, for_write=True
        )
        l2_index = l2.probe_index(block)
        assert l2_index >= 0, "fetch_into_l2 must install the block"
        l2.set_state_code(l2_index, MESI_MODIFIED)
        return latency

    def hit_run(self, core_id: int, buf: RunBuffer) -> None:
        """Commit a private-cache hit run in one staged call.

        The run's references were already *validated* when the run-ahead
        driver resolved each distinct block once (L1 presence, L2 MESI
        writability) -- validation per block instead of per reference is
        what makes a same-line streak cheap.  This call applies everything
        the equivalent sequence of :meth:`read` / :meth:`write` /
        :meth:`instruction_fetch` calls would have left behind: bulk
        LRU/timestamp updates on the :class:`~repro.mem.arrays.LineArrays`
        vectors (:meth:`~repro.mem.cache.Cache.access_run`) and counter
        increments by the run's tallies via pre-interned keys.  One call,
        one ``protocol_calls`` tick, however many references the run
        resolved.
        """
        caches = self.cores[core_id]
        buf.land_touches(caches.l1d, caches.l1i, caches.l2)
        counts = self._counts
        if buf.l1d_reads:
            counts["l1d_reads"] += buf.l1d_reads
        if buf.l1d_writes:
            counts["l1d_writes"] += buf.l1d_writes
        if buf.l1d_hits:
            counts["l1d_hits"] += buf.l1d_hits
        if buf.l1d_misses:
            counts["l1d_misses"] += buf.l1d_misses
        if buf.l1i_reads:
            counts["l1i_reads"] += buf.l1i_reads
        if buf.l1i_hits:
            counts["l1i_hits"] += buf.l1i_hits
        if buf.l2_reads:
            counts["l2_reads"] += buf.l2_reads
        if buf.l2_writes:
            counts["l2_writes"] += buf.l2_writes
        if buf.l2_hits:
            counts["l2_hits"] += buf.l2_hits
        if buf.instructions:
            counts["instructions"] += buf.instructions
        buf.clear_tallies()
        self.protocol_calls += 1

    def flush_dirty(self, cycle: int) -> None:
        """Write every dirty line back to DRAM (end-of-run accounting).

        Section 6: at the end of the simulation all dirty data is written
        back to main memory so that policies which push data off chip early
        are compared fairly against those that keep it on chip.
        """
        self.run_epoch[0] += 1
        for caches in self.cores:
            l2 = caches.l2
            for index in l2.dirty_indices():
                block = l2.block_address_at(index)
                bank = self.home_bank(block)
                self._count_message(
                    MessageKind.WRITEBACK, caches.core_id, bank.vertex, data=True
                )
                self._array_access(
                    bank.cache, "l3_writes", "l3_refresh_stall_cycles", cycle, block
                )
                l3_line = bank.cache.probe(block)
                if isinstance(l3_line, DirectoryLine) and l3_line.valid:
                    l3_line.mark_dirty()
                    Directory.clear_owner(l3_line)
                l2.set_state_code(index, MESI_SHARED)
        for bank in self.banks:
            for index in bank.cache.dirty_indices():
                self.dram.write(0)
                bank.cache.view(index).mark_clean()

    # ------------------------------------------------------------------
    # Refresh-policy entry points
    # ------------------------------------------------------------------

    def policy_invalidate_l3(
        self, bank: L3Bank, set_idx: int, line: DirectoryLine, cycle: int
    ) -> None:
        """Invalidate an L3 line on behalf of a refresh policy.

        Dirty data (at the L3 or in an upper-level M copy) is written back to
        DRAM; all upper-level copies are back-invalidated to preserve
        inclusion.  The extra messages and DRAM accesses are the cost the
        Dirty / WB(n, m) policies pay for letting lines decay (Section 3.1).
        """
        if not line.valid:
            return
        block = bank.cache.block_address_of(set_idx, line)
        self.counters.add("l3_policy_invalidations")
        dirty_above = self._back_invalidate(bank, block, line, cycle)
        if line.dirty or dirty_above:
            self.dram.write(block)
            self.counters.add("l3_policy_writebacks_to_dram")
        line.invalidate()

    def policy_writeback_l3(
        self, bank: L3Bank, set_idx: int, line: DirectoryLine, cycle: int
    ) -> None:
        """Write a dirty L3 line back to DRAM and mark it valid-clean.

        Used by the WB(n, m) policy when a dirty line has exhausted its n
        refreshes: the write-back itself recharges the eDRAM cells, so the
        line stays valid (now clean) for another retention period.
        """
        if not line.dirty:
            return
        block = bank.cache.block_address_of(set_idx, line)
        self.dram.write(block)
        self.counters.add("l3_policy_writebacks")
        line.mark_clean()
        line.refresh(cycle)

    def policy_invalidate_l2(
        self, core_id: int, set_idx: int, line, cycle: int
    ) -> None:
        """Invalidate an L2 line on behalf of a refresh policy."""
        caches = self.cores[core_id]
        if not line.valid:
            return
        self.run_epoch[0] += 1
        block = caches.l2.block_address_of(set_idx, line)
        self.counters.add("l2_policy_invalidations")
        if line.state is MESIState.MODIFIED:
            self._writeback_l2_to_l3(core_id, block, cycle)
        self._notify_clean_eviction(core_id, block, cycle)
        caches.invalidate_l1_copies(block)
        line.invalidate()

    def policy_writeback_l2(
        self, core_id: int, set_idx: int, line, cycle: int
    ) -> None:
        """Write a dirty L2 line back to the L3 and keep it valid-clean."""
        caches = self.cores[core_id]
        if not line.valid or line.state is not MESIState.MODIFIED:
            return
        self.run_epoch[0] += 1
        block = caches.l2.block_address_of(set_idx, line)
        self._writeback_l2_to_l3(core_id, block, cycle)
        self.counters.add("l2_policy_writebacks")
        line.state = MESIState.EXCLUSIVE
        line.refresh(cycle)

    # ------------------------------------------------------------------
    # Load path (data and instruction)
    # ------------------------------------------------------------------

    def _load(
        self, core_id: int, address: int, cycle: int, instruction: bool
    ) -> int:
        caches = self.cores[core_id]
        counts = self._counts
        block = address & self._block_mask
        if instruction:
            l1 = caches.l1i
            access_key, stall_key = "l1i_reads", "l1i_refresh_stall_cycles"
            hit_key, miss_key, fill_key = "l1i_hits", "l1i_misses", "l1i_writes"
        else:
            l1 = caches.l1d
            access_key, stall_key = "l1d_reads", "l1d_refresh_stall_cycles"
            hit_key, miss_key, fill_key = "l1d_hits", "l1d_misses", "l1d_writes"

        latency = self._array_access(l1, access_key, stall_key, cycle, block)
        if l1.access_index(block, cycle) >= 0:
            counts[hit_key] += 1
            return latency
        counts[miss_key] += 1

        l2 = caches.l2
        latency += self._array_access(
            l2, "l2_reads", "l2_refresh_stall_cycles", cycle + latency, block
        )
        if l2.access_index(block, cycle + latency) >= 0:
            counts["l2_hits"] += 1
        else:
            counts["l2_misses"] += 1
            latency += self._fetch_into_l2(
                core_id, block, cycle + latency, for_write=False
            )
        # Fill the L1 (write into the L1 array); the victim is clean
        # (write-through), so no eviction handling is needed.
        l1.fill_block(block, MESI_SHARED, cycle + latency)
        counts[fill_key] += 1
        return latency

    # ------------------------------------------------------------------
    # L2 miss handling (GetS / GetM at the directory)
    # ------------------------------------------------------------------

    def _fetch_into_l2(
        self, core_id: int, block: int, cycle: int, for_write: bool
    ) -> int:
        """Fetch a block into the core's L2 from the L3 / DRAM.

        Returns the latency of the remote part of the transaction (network,
        L3, optional owner fetch, optional DRAM) plus the local fill cost.
        """
        caches = self.cores[core_id]
        bank = self.home_bank(block)
        kind = MessageKind.WRITE_REQUEST if for_write else MessageKind.READ_REQUEST
        latency = self._count_message(kind, core_id, bank.vertex, data=False)
        latency += self._array_access(
            bank.cache, "l3_reads", "l3_refresh_stall_cycles", cycle + latency, block
        )

        l3_index = bank.cache.access_index(block, cycle + latency)
        if l3_index >= 0:
            self._counts["l3_hits"] += 1
            line = bank.cache.view(l3_index)
            assert isinstance(line, DirectoryLine)
            latency += self._serve_from_l3(
                core_id, bank, block, line, cycle, for_write
            )
        else:
            self._counts["l3_misses"] += 1
            line = self._fill_l3_from_dram(bank, block, cycle + latency)
            latency += self.dram.access_cycles
            if for_write:
                Directory.record_writer(line, core_id)
            else:
                Directory.record_reader(line, core_id)
        granted_exclusive = for_write or not Directory.sharers_other_than(
            line, core_id
        )

        # Data reply back to the requesting core.
        latency += self._count_message(
            MessageKind.DATA_REPLY, bank.vertex, core_id, data=True
        )

        # Install in the L2, handling the inclusion victim.
        l2 = caches.l2
        victim_index = l2.choose_victim_index(block)
        if l2.valid_at(victim_index):
            self._handle_l2_eviction(core_id, victim_index, cycle + latency)
        state_code = MESI_EXCLUSIVE if granted_exclusive else MESI_SHARED
        l2.fill_index(victim_index, block, state_code, cycle + latency)
        self._counts["l2_writes"] += 1
        return latency

    def _serve_from_l3(
        self,
        core_id: int,
        bank: L3Bank,
        block: int,
        line: DirectoryLine,
        cycle: int,
        for_write: bool,
    ) -> int:
        """Directory actions for a hit at the home L3 bank."""
        latency = 0
        owner = line.owner
        if owner is not None and owner != core_id:
            latency += self._recall_from_owner(bank, block, line, owner, cycle)
        if for_write:
            # Invalidate every other copy and hand exclusive ownership over.
            for other in sorted(Directory.sharers_other_than(line, core_id)):
                latency += self._invalidate_upper(bank, block, line, other, cycle)
            Directory.record_writer(line, core_id)
        else:
            Directory.record_reader(line, core_id)
        return latency

    def _recall_from_owner(
        self, bank: L3Bank, block: int, line: DirectoryLine, owner: int, cycle: int
    ) -> int:
        """Fetch the latest data from the owning core's L2 (M or E copy)."""
        self.run_epoch[0] += 1
        latency = self._count_message(
            MessageKind.OWNER_FETCH, bank.vertex, owner, data=False
        )
        owner_caches = self.cores[owner]
        latency += self._array_access(
            owner_caches.l2, "l2_reads", "l2_refresh_stall_cycles",
            cycle + latency, block,
        )
        owner_line = owner_caches.l2.probe(block)
        dirty = owner_line is not None and owner_line.state is MESIState.MODIFIED
        if owner_line is not None:
            owner_line.state = MESIState.SHARED
        if dirty:
            latency += self._count_message(
                MessageKind.WRITEBACK, owner, bank.vertex, data=True
            )
            self._array_access(
                bank.cache, "l3_writes", "l3_refresh_stall_cycles",
                cycle + latency, block,
            )
            line.mark_dirty()
            line.refresh(cycle + latency)
        else:
            latency += self._count_message(
                MessageKind.ACK, owner, bank.vertex, data=False
            )
        Directory.clear_owner(line)
        return latency

    def _fill_l3_from_dram(
        self, bank: L3Bank, block: int, cycle: int
    ) -> DirectoryLine:
        """Bring a block on chip, evicting (and back-invalidating) a victim."""
        self.dram.read(block)
        victim = bank.cache.choose_victim(block)
        if victim.was_valid:
            victim_line = victim.line
            assert isinstance(victim_line, DirectoryLine)
            self.counters.add("l3_evictions")
            dirty_above = self._back_invalidate(
                bank, victim.block_address, victim_line, cycle
            )
            if victim_line.dirty or dirty_above:
                self.dram.write(victim.block_address)
                self.counters.add("l3_eviction_writebacks")
        line = bank.cache.fill(block, MESIState.SHARED, cycle, victim)
        self.counters.add("l3_writes")
        assert isinstance(line, DirectoryLine)
        return line

    # ------------------------------------------------------------------
    # Upgrades, write-backs, invalidations
    # ------------------------------------------------------------------

    def _upgrade(self, core_id: int, block: int, cycle: int) -> int:
        """Obtain write permission for a block the core already shares."""
        bank = self.home_bank(block)
        latency = self._count_message(
            MessageKind.UPGRADE_REQUEST, core_id, bank.vertex, data=False
        )
        latency += self._array_access(
            bank.cache, "l3_reads", "l3_refresh_stall_cycles", cycle + latency, block
        )
        line = bank.cache.probe(block)
        if isinstance(line, DirectoryLine) and line.valid:
            line.touch(cycle + latency)
            for other in sorted(Directory.sharers_other_than(line, core_id)):
                latency += self._invalidate_upper(bank, block, line, other, cycle)
            Directory.record_writer(line, core_id)
        latency += self._count_message(
            MessageKind.ACK, bank.vertex, core_id, data=False
        )
        return latency

    def _writeback_l2_to_l3(self, core_id: int, block: int, cycle: int) -> None:
        """Send a dirty L2 line to its home bank (off the critical path)."""
        bank = self.home_bank(block)
        self._count_message(MessageKind.WRITEBACK, core_id, bank.vertex, data=True)
        self._array_access(
            bank.cache, "l3_writes", "l3_refresh_stall_cycles", cycle, block
        )
        line = bank.cache.probe(block)
        if isinstance(line, DirectoryLine) and line.valid:
            line.mark_dirty()
            line.refresh(cycle)
            Directory.clear_owner(line)
        else:
            # Inclusion means the block should be present; if the refresh
            # policy already discarded it, the data goes straight to DRAM.
            self.dram.write(block)
            self.counters.add("l2_writebacks_bypassing_l3")

    def _notify_clean_eviction(self, core_id: int, block: int, cycle: int) -> None:
        """Tell the directory a clean private copy was dropped."""
        bank = self.home_bank(block)
        self._count_message(
            MessageKind.EVICTION_NOTICE, core_id, bank.vertex, data=False
        )
        line = bank.cache.probe(block)
        if isinstance(line, DirectoryLine) and line.valid:
            Directory.remove_core(line, core_id)

    def _handle_l2_eviction(
        self, core_id: int, victim_index: int, cycle: int
    ) -> None:
        """Handle the displacement of a valid L2 line (inclusion with L1)."""
        caches = self.cores[core_id]
        l2 = caches.l2
        block = l2.block_address_at(victim_index)
        self._counts["l2_evictions"] += 1
        if l2.dirty_at(victim_index):
            self._writeback_l2_to_l3(core_id, block, cycle)
        else:
            self._notify_clean_eviction(core_id, block, cycle)
        caches.invalidate_l1_copies(block)

    def _invalidate_upper(
        self, bank: L3Bank, block: int, line: DirectoryLine, core_id: int, cycle: int
    ) -> int:
        """Invalidate one core's private copies of a block (coherence)."""
        self.run_epoch[0] += 1
        latency = self._count_message(
            MessageKind.INVALIDATE, bank.vertex, core_id, data=False
        )
        caches = self.cores[core_id]
        l2_line = caches.l2.probe(block)
        if l2_line is not None:
            if l2_line.state is MESIState.MODIFIED:
                latency += self._count_message(
                    MessageKind.WRITEBACK, core_id, bank.vertex, data=True
                )
                self._array_access(
                    bank.cache, "l3_writes", "l3_refresh_stall_cycles",
                    cycle + latency, block,
                )
                line.mark_dirty()
                line.refresh(cycle + latency)
            l2_line.invalidate()
        caches.invalidate_l1_copies(block)
        latency += self._count_message(
            MessageKind.ACK, core_id, bank.vertex, data=False
        )
        Directory.remove_core(line, core_id)
        self.counters.add("coherence_invalidations")
        return latency

    def _back_invalidate(
        self, bank: L3Bank, block: int, line: DirectoryLine, cycle: int
    ) -> bool:
        """Invalidate every upper-level copy of a block leaving the L3.

        Returns True if any upper-level copy was dirty (its data must then be
        written back to DRAM by the caller, since the L3 line is going away).
        """
        dirty_above = False
        holders = sorted(Directory.sharers_other_than(line, -1))
        if holders:
            self.run_epoch[0] += 1
        for core_id in holders:
            self._count_message(MessageKind.INVALIDATE, bank.vertex, core_id, data=False)
            caches = self.cores[core_id]
            l2_line = caches.l2.probe(block)
            if l2_line is not None and l2_line.valid:
                if l2_line.state is MESIState.MODIFIED:
                    dirty_above = True
                    self._count_message(
                        MessageKind.WRITEBACK, core_id, bank.vertex, data=True
                    )
                l2_line.invalidate()
            caches.invalidate_l1_copies(block)
            self._count_message(MessageKind.ACK, core_id, bank.vertex, data=False)
            self.counters.add("back_invalidations")
        Directory.reset(line)
        return dirty_above

    # ------------------------------------------------------------------
    # Low-level accounting helpers
    # ------------------------------------------------------------------

    def _array_access(
        self,
        cache: Cache,
        access_key: str,
        stall_key: str,
        cycle: int,
        block: int = 0,
    ) -> int:
        """Charge one array access: energy counter plus latency.

        If the sub-array the block maps to (or the whole array) is busy with
        refresh work, the access waits until that work completes; the wait
        is recorded as refresh stall cycles.  ``cache.busy_horizon`` lets
        the common unblocked case skip the wait computation entirely.
        """
        self._counts[access_key] += 1
        if cycle < cache.busy_horizon:
            wait = cache.wait_cycles(block, cycle)
            if wait:
                self._counts[stall_key] += wait
            return wait + cache.access_cycles
        return cache.access_cycles

    def _count_message(self, kind: MessageKind, src: int, dst: int, data: bool) -> int:
        """Record one network message and return its latency."""
        self._counts[self._msg_keys[kind]] += 1
        if data:
            return self.network.send_data(src, dst, self._line_bytes)
        return self.network.send_control(src, dst)
