"""Directory bookkeeping helpers.

The directory lives alongside the L3 tags (Table 5.1): each
:class:`~repro.mem.line.DirectoryLine` records the set of cores that may hold
the block (``sharers``) and the single core, if any, that holds it with write
permission (``owner``).  This module wraps the small state-machine updates on
those fields so the protocol engine reads declaratively and the invariants
can be property-tested in isolation.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.mem.line import DirectoryLine


class Directory:
    """Operations on the directory entry embedded in an L3 line."""

    @staticmethod
    def sharers_other_than(line: DirectoryLine, core: int) -> Set[int]:
        """All cores that may hold the block, excluding ``core``."""
        others = set(line.sharers)
        if line.owner is not None:
            others.add(line.owner)
        others.discard(core)
        return others

    @staticmethod
    def is_present_above(line: DirectoryLine) -> bool:
        """True when any upper-level cache may hold a copy of the block."""
        return bool(line.sharers) or line.owner is not None

    @staticmethod
    def record_reader(line: DirectoryLine, core: int) -> bool:
        """Record ``core`` as a sharer; returns True if it got exclusivity.

        A reader is granted an Exclusive copy when nobody else holds the
        block, mirroring the E state optimisation of MESI.  An exclusive
        grantee is recorded as the owner, because it may silently upgrade
        its copy to Modified without informing the directory; the directory
        must therefore consult it before handing the block to anyone else.
        """
        if line.owner == core:
            # The owner re-reading its own block keeps ownership.
            line.sharers.add(core)
            return True
        exclusive = not Directory.is_present_above(line)
        line.sharers.add(core)
        if exclusive:
            line.owner = core
        return exclusive

    @staticmethod
    def record_writer(line: DirectoryLine, core: int) -> None:
        """Record ``core`` as the sole owner after a write request."""
        line.sharers = {core}
        line.owner = core

    @staticmethod
    def clear_owner(line: DirectoryLine, keep_as_sharer: bool = True) -> Optional[int]:
        """Remove the current owner, optionally demoting it to a sharer."""
        owner = line.owner
        line.owner = None
        if owner is not None and keep_as_sharer:
            line.sharers.add(owner)
        return owner

    @staticmethod
    def remove_core(line: DirectoryLine, core: int) -> None:
        """Forget any copy ``core`` may have held (eviction or invalidation)."""
        line.sharers.discard(core)
        if line.owner == core:
            line.owner = None

    @staticmethod
    def remove_cores(line: DirectoryLine, cores: Iterable[int]) -> None:
        """Forget copies held by several cores at once."""
        for core in cores:
            Directory.remove_core(line, core)

    @staticmethod
    def reset(line: DirectoryLine) -> None:
        """Clear the whole directory entry (the block left the chip)."""
        line.sharers = set()
        line.owner = None
