"""The staged cache fast path must not allocate per access.

The original ``Cache.lookup`` returned a frozen ``LookupResult`` dataclass
on every access -- hit *and* miss -- and ``choose_victim`` allocated an
``EvictionResult`` per fill.  The staged index API replaces both with plain
ints.  Two independent checks pin that down:

* a tripwire: the result dataclasses are monkeypatched to explode, and the
  staged access/fill/evict cycle is driven through anyway;
* a GC-churn bound: with the gen-0 threshold squeezed, a hundred thousand
  staged accesses must not trigger collections (ints are untracked; one
  tracked container per access would force thousands of gen-0 passes).
"""

from __future__ import annotations

import gc

import pytest

from repro.config.parameters import CacheGeometry
from repro.mem import cache as cache_module
from repro.mem.cache import Cache
from repro.mem.line import MESI_MODIFIED, MESI_SHARED


def geometry() -> CacheGeometry:
    return CacheGeometry(
        name="test", size_bytes=4096, associativity=4, line_bytes=64,
        access_cycles=1, write_back=True, num_refresh_groups=4,
        sentry_group_size=4,
    )


class _Exploding:
    def __init__(self, *args, **kwargs):
        raise AssertionError(
            "result dataclass constructed on the staged fast path"
        )


@pytest.fixture
def no_result_objects(monkeypatch):
    monkeypatch.setattr(cache_module, "LookupResult", _Exploding)
    monkeypatch.setattr(cache_module, "EvictionResult", _Exploding)


def test_staged_path_builds_no_result_objects(no_result_objects):
    cache = Cache(geometry())
    # Misses, fills, hits, victim choice, invalidation -- the complete
    # per-access repertoire of the protocol's hot path.
    for block in range(0, 64 * 64, 64):
        assert cache.probe_index(block) == -1
        assert cache.access_index(block, cycle=0) == -1
        index = cache.fill_block(block, MESI_SHARED, cycle=0)
        assert isinstance(index, int)
        assert cache.access_index(block, cycle=1) == index
        assert isinstance(cache.choose_victim_index(block), int)
        cache.set_state_code(index, MESI_MODIFIED)
        assert cache.dirty_at(index)
    cache.invalidate_index(cache.probe_index(0))
    assert cache.probe_index(0) == -1


def test_staged_hits_cause_no_gc_churn():
    cache = Cache(geometry())
    cache.fill_block(0x1000, MESI_SHARED, cycle=0)
    access_index = cache.access_index
    # Warm up any lazy state, then squeeze gen-0 so that even modest
    # per-access container allocation would force collections.
    for cycle in range(1000):
        access_index(0x1000, cycle)
    old_threshold = gc.get_threshold()
    gc.collect()
    try:
        gc.set_threshold(50, 2, 2)
        before = gc.get_stats()[0]["collections"]
        for cycle in range(100_000):
            access_index(0x1000, cycle)
        after = gc.get_stats()[0]["collections"]
    finally:
        gc.set_threshold(*old_threshold)
    # One tracked object per access would mean ~2000 gen-0 collections.
    assert after - before < 50


def test_object_path_allocates_per_access(monkeypatch):
    """Sanity: the preserved object backend does build a result per access.

    This is the allocation the refactor eliminates; counting it here keeps
    the tripwire above honest (if the object path stopped constructing
    ``LookupResult``, the no-allocation tests would be vacuous).
    """
    constructed = []
    real = cache_module.LookupResult

    def counting(*args, **kwargs):
        constructed.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(cache_module, "LookupResult", counting)
    cache = Cache(geometry(), backend="object")
    cache.fill_block(0x1000, MESI_SHARED, cycle=0)
    for cycle in range(100):
        cache.access_index(0x1000, cycle)
    assert len(constructed) >= 100
