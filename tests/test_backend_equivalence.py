"""Byte-level equivalence of the cache backends and replay modes.

The struct-of-arrays backend, its optional numpy backing, and the run-ahead
replay loop are all *optimisations*, not remodels: for every configuration
the simulator must produce a :class:`SimulationResult` whose JSON form is
byte-identical to the original one-object-per-line backend replayed one
heap event per reference.  The matrix here runs five configuration
families (SRAM baseline, periodic eDRAM schemes covering the bulk and
per-line sweeps, and the paper's headline Refrint-WB(32,32)) over two
applications through every backend x replay combination and compares the
canonical JSON dumps byte for byte -- counters, cycle counts and energy
included.
"""

from __future__ import annotations

import json

import pytest

from repro.config.parameters import (
    DataPolicySpec,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.config.presets import scaled_architecture, scaled_retention_cycles
from repro.core.simulator import RefrintSimulator
from repro.cpu.trace import MemoryOperation, TraceRecord, TraceStream
from repro.mem.arrays import HAVE_NUMPY
from repro.validate import check_result
from repro.workloads.suite import build_application

#: Short but non-trivial traces: every config exercises fills, evictions,
#: coherence traffic and (for eDRAM) refresh actions.
LENGTH_SCALE = 0.1

APPLICATIONS = ("fft", "blackscholes")

#: Every cache backend crossed with every replay mode and every batch
#: kernel, compared against the (object, event, off) reference.  The numpy
#: backend and the kernel modes ride along when numpy is installed and are
#: skipped (not failed) when it is absent; kernels only combine with
#: run-ahead replay (the simulator rejects them under event replay).
BACKENDS = ("object", "array") + (("numpy",) if HAVE_NUMPY else ())
KERNELS = ("off",) + (("numpy", "numba") if HAVE_NUMPY else ())
VARIANTS = [
    (backend, replay, kernel)
    for backend in BACKENDS
    for replay in ("event", "runahead")
    for kernel in (KERNELS if replay == "runahead" else ("off",))
    if (backend, replay, kernel) != ("object", "event", "off")
]


def _edram_config(architecture, timing, data):
    retention = scaled_retention_cycles(50.0)
    refresh = RefreshConfig(
        retention_cycles=retention,
        sentry_margin_cycles=RefreshConfig.derive_sentry_margin(
            architecture.l3_bank.num_lines, retention
        ),
        timing_policy=timing,
        l3_data_policy=data,
    )
    return SimulationConfig.edram(refresh, architecture)


@pytest.fixture(scope="module")
def architecture():
    return scaled_architecture()


@pytest.fixture(scope="module")
def workloads(architecture):
    return {
        name: build_application(name, architecture, length_scale=LENGTH_SCALE)
        for name in APPLICATIONS
    }


def _config_matrix(architecture):
    # Chosen to cover every backend-specialised refresh path: P.all and
    # P.valid take the bulk slice sweep (invalid lines included/excluded),
    # P.WB takes the periodic per-line walk (valid_indices_in_range +
    # stamp_invalid_range + process_indices), and R.WB takes the fused
    # sentry interrupt scan.
    return {
        "SRAM": SimulationConfig.sram(architecture),
        "P.all": _edram_config(
            architecture, TimingPolicyKind.PERIODIC, DataPolicySpec.all_lines()
        ),
        "P.valid": _edram_config(
            architecture, TimingPolicyKind.PERIODIC, DataPolicySpec.valid()
        ),
        "P.WB(32,32)": _edram_config(
            architecture, TimingPolicyKind.PERIODIC, DataPolicySpec.writeback(32, 32)
        ),
        "R.WB(32,32)": _edram_config(
            architecture, TimingPolicyKind.REFRINT, DataPolicySpec.writeback(32, 32)
        ),
    }


def _canonical_bytes(result) -> bytes:
    return json.dumps(result.to_dict(), sort_keys=True).encode("utf-8")


@pytest.fixture(scope="module")
def reference_results(architecture, workloads):
    """The (object backend, event replay) result for every matrix cell."""
    configs = _config_matrix(architecture)
    return {
        (config_label, application): _canonical_bytes(
            RefrintSimulator(
                configs[config_label], cache_backend="object", replay="event"
            ).run(workloads[application])
        )
        for config_label in configs
        for application in APPLICATIONS
    }


@pytest.mark.parametrize("backend,replay,kernel", VARIANTS)
@pytest.mark.parametrize(
    "config_label", ["SRAM", "P.all", "P.valid", "P.WB(32,32)", "R.WB(32,32)"]
)
@pytest.mark.parametrize("application", APPLICATIONS)
def test_all_backends_and_replays_are_byte_identical(
    architecture, workloads, reference_results, config_label, application,
    backend, replay, kernel,
):
    config = _config_matrix(architecture)[config_label]
    simulator = RefrintSimulator(
        config, cache_backend=backend, replay=replay, kernel=kernel
    )
    result = simulator.run(workloads[application])
    assert _canonical_bytes(result) == reference_results[(config_label, application)]
    # Every cell of the matrix must also hold the analytic invariants --
    # byte-identity alone would let a bug shared by all backends through.
    validation = check_result(
        result, config=config, replay_stats=simulator.last_replay_stats
    )
    assert validation.ok, [
        (check.name, check.detail) for check in validation.violations
    ]


def test_runahead_pops_far_fewer_events(architecture, workloads):
    """Run-ahead inlines every reference: only refresh drains hit the heap."""
    config = _config_matrix(architecture)["R.WB(32,32)"]
    stats = {}
    for replay in ("event", "runahead"):
        simulator = RefrintSimulator(config, replay=replay)
        simulator.run(workloads["fft"])
        stats[replay] = simulator.last_replay_stats
    assert stats["event"].references == stats["runahead"].references
    assert stats["runahead"].events_popped * 5 <= stats["event"].events_popped


def test_backend_selection_is_plumbed_through(architecture):
    """The hierarchy really builds the requested backend on every cache."""
    from repro.hierarchy.hierarchy import CacheHierarchy

    backends = ("array", "object") + (("numpy",) if HAVE_NUMPY else ())
    for backend in backends:
        hierarchy = CacheHierarchy(architecture, cache_backend=backend)
        for _, _, cache in hierarchy.all_caches():
            assert cache.backend == backend
            assert (cache.arrays is not None) == (backend != "object")
            assert cache.numpy_backed == (backend == "numpy")


def test_numpy_backend_requires_numpy(architecture):
    if HAVE_NUMPY:
        pytest.skip("numpy installed; the rejection path needs it absent")
    from repro.mem.cache import Cache

    with pytest.raises(RuntimeError):
        Cache(architecture.l1d, backend="numpy")


class TestHorizonBoundary:
    """References landing exactly on a refresh deadline.

    The run-ahead loop batches references strictly *before* its horizon; a
    reference issued at exactly the horizon cycle must yield to the queue
    so the refresh pass (and its array blocking) executes first, just as
    the (time, seq) heap order would.  These traces are built so that core
    0's references land exactly on the periodic group passes' nominal
    cycles (multiples of the stagger stride), with the other cores idle and
    busy respectively.
    """

    @staticmethod
    def _aligned_workload(architecture, stride, other_gap):
        fft = build_application("fft", architecture, length_scale=0.01)
        line = architecture.l1d.line_bytes
        aligned = TraceStream(
            [
                TraceRecord(
                    address=0x2000_0000 + i * line,
                    operation=(
                        MemoryOperation.WRITE if i % 3 == 0
                        else MemoryOperation.READ
                    ),
                    # The first reference issues at exactly `stride` (the
                    # first staggered group pass); later gaps keep issue
                    # times near (and regularly exactly on) later passes.
                    gap_instructions=stride if i == 0 else stride - 1,
                )
                for i in range(64)
            ],
            thread_id=0,
        )
        others = [
            TraceStream(
                [
                    TraceRecord(
                        address=0x3000_0000 + t * 0x1_0000 + i * line,
                        operation=MemoryOperation.READ,
                        gap_instructions=other_gap,
                    )
                    for i in range(32)
                ],
                thread_id=t,
            )
            for t in range(1, architecture.num_cores)
        ]
        from repro.workloads.suite import ApplicationWorkload

        return ApplicationWorkload(
            spec=fft.spec, traces=(aligned, *others)
        )

    @pytest.mark.parametrize("timing,data", [
        (TimingPolicyKind.PERIODIC, DataPolicySpec.all_lines()),
        (TimingPolicyKind.REFRINT, DataPolicySpec.writeback(2, 2)),
    ])
    @pytest.mark.parametrize("other_gap", [0, 7])
    def test_boundary_reference_is_ordered_like_event_replay(
        self, architecture, timing, data, other_gap
    ):
        config = _edram_config(architecture, timing, data)
        stride = (
            config.refresh.retention_cycles
            // architecture.l3_bank.num_refresh_groups
        )
        workload = self._aligned_workload(architecture, stride, other_gap)
        # Kernel scans cap stretches at the same boundaries the scalar
        # run-ahead loop yields at, so every kernel mode must reproduce the
        # event ordering on deadline-aligned references too.
        variants = [("event", "off"), ("runahead", "off")]
        variants += [("runahead", kernel) for kernel in KERNELS[1:]]
        results = {
            (replay, kernel): _canonical_bytes(
                RefrintSimulator(config, replay=replay, kernel=kernel).run(
                    workload
                )
            )
            for replay, kernel in variants
        }
        reference = results[("event", "off")]
        for key, produced in results.items():
            assert produced == reference, key
