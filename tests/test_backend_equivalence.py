"""Byte-level equivalence of the array and object cache backends.

The struct-of-arrays backend is an *optimisation*, not a remodel: for every
configuration the simulator must produce a :class:`SimulationResult` whose
JSON form is byte-identical to the original one-object-per-line backend's.
The matrix here runs the three configuration families (SRAM baseline, the
eager Periodic-All eDRAM scheme, and the paper's headline Refrint-WB(32,32))
over two applications through both backends and compares the canonical JSON
dumps byte for byte -- counters, cycle counts and energy included.
"""

from __future__ import annotations

import json

import pytest

from repro.config.parameters import (
    DataPolicySpec,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.config.presets import scaled_architecture, scaled_retention_cycles
from repro.core.simulator import RefrintSimulator
from repro.workloads.suite import build_application

#: Short but non-trivial traces: every config exercises fills, evictions,
#: coherence traffic and (for eDRAM) refresh actions.
LENGTH_SCALE = 0.1

APPLICATIONS = ("fft", "blackscholes")


def _edram_config(architecture, timing, data):
    retention = scaled_retention_cycles(50.0)
    refresh = RefreshConfig(
        retention_cycles=retention,
        sentry_margin_cycles=RefreshConfig.derive_sentry_margin(
            architecture.l3_bank.num_lines, retention
        ),
        timing_policy=timing,
        l3_data_policy=data,
    )
    return SimulationConfig.edram(refresh, architecture)


@pytest.fixture(scope="module")
def architecture():
    return scaled_architecture()


@pytest.fixture(scope="module")
def workloads(architecture):
    return {
        name: build_application(name, architecture, length_scale=LENGTH_SCALE)
        for name in APPLICATIONS
    }


def _config_matrix(architecture):
    return {
        "SRAM": SimulationConfig.sram(architecture),
        "P.all": _edram_config(
            architecture, TimingPolicyKind.PERIODIC, DataPolicySpec.all_lines()
        ),
        "R.WB(32,32)": _edram_config(
            architecture, TimingPolicyKind.REFRINT, DataPolicySpec.writeback(32, 32)
        ),
    }


def _canonical_bytes(result) -> bytes:
    return json.dumps(result.to_dict(), sort_keys=True).encode("utf-8")


@pytest.mark.parametrize("config_label", ["SRAM", "P.all", "R.WB(32,32)"])
@pytest.mark.parametrize("application", APPLICATIONS)
def test_backends_produce_byte_identical_results(
    architecture, workloads, config_label, application
):
    config = _config_matrix(architecture)[config_label]
    workload = workloads[application]
    object_result = RefrintSimulator(config, cache_backend="object").run(workload)
    array_result = RefrintSimulator(config, cache_backend="array").run(workload)
    assert _canonical_bytes(object_result) == _canonical_bytes(array_result)


def test_backend_selection_is_plumbed_through(architecture, workloads):
    """The hierarchy really builds the requested backend on every cache."""
    from repro.hierarchy.hierarchy import CacheHierarchy

    for backend in ("array", "object"):
        hierarchy = CacheHierarchy(architecture, cache_backend=backend)
        for _, _, cache in hierarchy.all_caches():
            assert cache.backend == backend
            assert (cache.arrays is not None) == (backend == "array")
