"""Unit tests for cache line state machines."""

from __future__ import annotations

import pytest

from repro.mem.line import CacheLine, DirectoryLine, L3State, MESIState


class TestCacheLine:
    def test_starts_invalid(self):
        line = CacheLine()
        assert not line.valid
        assert not line.dirty
        assert line.tag is None

    def test_fill_makes_valid_and_refreshes(self):
        line = CacheLine()
        line.fill(tag=7, state=MESIState.SHARED, cycle=100)
        assert line.valid and not line.dirty
        assert line.tag == 7
        assert line.last_refresh_cycle == 100
        assert line.refresh_count is None

    def test_modified_is_dirty(self):
        line = CacheLine()
        line.fill(tag=1, state=MESIState.MODIFIED, cycle=0)
        assert line.dirty

    def test_touch_resets_count_and_refreshes(self):
        line = CacheLine()
        line.fill(tag=1, state=MESIState.SHARED, cycle=0)
        line.refresh_count = 3
        line.touch(cycle=50)
        assert line.last_refresh_cycle == 50
        assert line.refresh_count is None

    def test_refresh_preserves_count(self):
        line = CacheLine()
        line.fill(tag=1, state=MESIState.SHARED, cycle=0)
        line.refresh_count = 3
        line.refresh(cycle=40)
        assert line.last_refresh_cycle == 40
        assert line.refresh_count == 3

    def test_invalidate_clears_state(self):
        line = CacheLine()
        line.fill(tag=1, state=MESIState.MODIFIED, cycle=0)
        line.invalidate()
        assert not line.valid
        assert not line.dirty
        assert line.refresh_count is None

    def test_expiry(self):
        line = CacheLine()
        line.fill(tag=1, state=MESIState.SHARED, cycle=100)
        assert not line.is_expired(cycle=1100, retention_cycles=1000)
        assert line.is_expired(cycle=1101, retention_cycles=1000)


class TestDirectoryLine:
    def test_starts_invalid_with_empty_directory(self):
        line = DirectoryLine()
        assert not line.valid
        assert line.sharers == set()
        assert line.owner is None

    def test_fill_is_clean_and_clears_directory(self):
        line = DirectoryLine()
        line.sharers = {1, 2}
        line.owner = 3
        line.fill(tag=5, state=MESIState.SHARED, cycle=10)
        assert line.valid and not line.dirty
        assert line.l3_state is L3State.CLEAN
        assert line.sharers == set()
        assert line.owner is None

    def test_dirty_clean_cycle(self):
        line = DirectoryLine()
        line.fill(tag=5, state=MESIState.SHARED, cycle=0)
        line.mark_dirty()
        assert line.dirty
        line.mark_clean()
        assert line.valid and not line.dirty

    def test_cannot_dirty_invalid_line(self):
        line = DirectoryLine()
        with pytest.raises(ValueError):
            line.mark_dirty()
        with pytest.raises(ValueError):
            line.mark_clean()

    def test_invalidate_resets_directory(self):
        line = DirectoryLine()
        line.fill(tag=5, state=MESIState.SHARED, cycle=0)
        line.sharers = {0, 4}
        line.owner = 4
        line.mark_dirty()
        line.invalidate()
        assert not line.valid
        assert line.sharers == set()
        assert line.owner is None
