"""Tests for the surrogate lattice: bracketing, interpolation, declines.

The lattice only ever reads exact results through ``store.get(key)``, so
these tests drive it with a stub store of synthetic metric values -- the
interpolation arithmetic is then checkable exactly, without simulating.
(The live end-to-end surrogate path, including backfill, runs in
tests/test_service.py.)
"""

from __future__ import annotations

import pytest

from repro.api.query import QueryRequest
from repro.api.surrogate import SurrogateLattice, bracket_axis
from repro.config.presets import scaled_architecture


class FakeResult:
    """The slice of SimulationResult the metric extractor reads."""

    def __init__(self, execution_cycles, busy, memory_j, system_j):
        self.execution_cycles = execution_cycles
        self.busy_core_cycles = busy
        self._memory_j = memory_j
        self._system_j = system_j

    def memory_energy(self):
        return self._memory_j

    def system_energy(self):
        return self._system_j


class FakeStore:
    """dict-backed stand-in for a result store (get by job key)."""

    backend_name = "fake"
    root = "fake://store"

    def __init__(self):
        self.results = {}

    def get(self, key):
        return self.results.get(key)


@pytest.fixture(scope="module")
def arch():
    return scaled_architecture()


def query_point_at(retention_us, arch, length_scale=0.05):
    request = QueryRequest(
        applications="fft",
        retentions_us=(retention_us,),
        timing_policies=("refrint",),
        data_policies=("WB(32,32)",),
        length_scale=length_scale,
        include_baseline=False,
    )
    (point,) = request.normalise(arch).points
    return point


class TestBracketAxis:
    def test_outside_hull_declines(self):
        assert bracket_axis("retention_us", 25.0, (50.0, 200.0)) is None
        assert bracket_axis("retention_us", 400.0, (50.0, 200.0)) is None
        assert bracket_axis("retention_us", 50.0, ()) is None

    def test_on_grid_is_degenerate(self):
        bracket = bracket_axis("retention_us", 100.0, (50.0, 100.0, 200.0))
        assert (bracket.lo, bracket.hi) == (100.0, 100.0)
        assert bracket.on_grid and bracket.weight == 0.0

    def test_between_points(self):
        bracket = bracket_axis("retention_us", 125.0, (50.0, 100.0, 200.0))
        assert (bracket.lo, bracket.hi) == (100.0, 200.0)
        assert not bracket.on_grid
        assert bracket.weight == pytest.approx(0.25)


class TestInterpolation:
    def seeded_lattice(self, arch):
        store = FakeStore()
        lattice = SurrogateLattice(store, architecture=arch, retentions_us=(50.0, 200.0))
        probe = query_point_at(125.0, arch)
        lo_job = lattice.corner_job(probe, 50.0, 0.05)
        hi_job = lattice.corner_job(probe, 200.0, 0.05)
        store.results[lo_job.key()] = FakeResult(1000, 800, 2.0, 4.0)
        store.results[hi_job.key()] = FakeResult(2000, 1200, 1.0, 3.0)
        return store, lattice, (lo_job.key(), hi_job.key())

    def test_midpoint_is_the_average(self, arch):
        _, lattice, corner_keys = self.seeded_lattice(arch)
        answer = lattice.interpolate(query_point_at(125.0, arch))
        assert answer is not None
        assert answer.metrics["execution_cycles"] == pytest.approx(1500.0)
        assert answer.metrics["busy_core_cycles"] == pytest.approx(1000.0)
        assert answer.metrics["memory_energy_j"] == pytest.approx(1.5)
        assert answer.metrics["system_energy_j"] == pytest.approx(3.5)
        assert answer.bounds == {"retention_us": [50.0, 200.0]}
        assert answer.corner_keys == corner_keys

    def test_weighting_is_linear(self, arch):
        _, lattice, _ = self.seeded_lattice(arch)
        answer = lattice.interpolate(query_point_at(87.5, arch))
        # 87.5us sits a quarter of the way from 50 to 200.
        assert answer.metrics["execution_cycles"] == pytest.approx(1250.0)
        assert answer.metrics["memory_energy_j"] == pytest.approx(1.75)

    def test_convexity_envelope(self, arch):
        _, lattice, _ = self.seeded_lattice(arch)
        for retention in (60.0, 125.0, 190.0):
            answer = lattice.interpolate(query_point_at(retention, arch))
            for name, lo, hi in (
                ("execution_cycles", 1000, 2000),
                ("memory_energy_j", 1.0, 2.0),
                ("system_energy_j", 3.0, 4.0),
            ):
                assert lo <= answer.metrics[name] <= hi

    def test_on_grid_declines(self, arch):
        # An on-grid point is a plain store miss/hit, never a surrogate.
        _, lattice, _ = self.seeded_lattice(arch)
        assert lattice.interpolate(query_point_at(50.0, arch)) is None
        assert lattice.interpolate(query_point_at(200.0, arch)) is None

    def test_outside_hull_declines(self, arch):
        _, lattice, _ = self.seeded_lattice(arch)
        assert lattice.interpolate(query_point_at(25.0, arch)) is None
        assert lattice.interpolate(query_point_at(500.0, arch)) is None

    def test_missing_corner_declines(self, arch):
        store, lattice, corner_keys = self.seeded_lattice(arch)
        del store.results[corner_keys[1]]
        assert lattice.interpolate(query_point_at(125.0, arch)) is None

    def test_baseline_never_interpolated(self, arch):
        _, lattice, _ = self.seeded_lattice(arch)
        request = QueryRequest(
            applications="fft", retentions_us=(125.0,), length_scale=0.05
        )
        baseline = request.normalise(arch).points[0]
        assert baseline.is_baseline
        assert lattice.interpolate(baseline) is None

    def test_two_axis_bilinear(self, arch):
        store = FakeStore()
        lattice = SurrogateLattice(
            store,
            architecture=arch,
            retentions_us=(50.0, 200.0),
            length_scales=(0.04, 0.08),
        )
        probe = query_point_at(125.0, arch, length_scale=0.06)
        values = {
            (50.0, 0.04): 100.0,
            (50.0, 0.08): 200.0,
            (200.0, 0.04): 300.0,
            (200.0, 0.08): 400.0,
        }
        for (retention, scale), cycles in values.items():
            job = lattice.corner_job(probe, retention, scale)
            store.results[job.key()] = FakeResult(cycles, cycles, 1.0, 2.0)
        answer = lattice.interpolate(probe)
        # Centre of the cell: the mean of the four corners.
        assert answer.metrics["execution_cycles"] == pytest.approx(250.0)
        assert answer.bounds == {
            "retention_us": [50.0, 200.0],
            "length_scale": [0.04, 0.08],
        }
        assert len(answer.corner_keys) == 4
