"""Unit tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.utils.events import EventQueue


def test_events_fire_in_time_order():
    queue = EventQueue()
    fired = []
    queue.schedule(30, lambda t, p: fired.append((t, p)), payload="c")
    queue.schedule(10, lambda t, p: fired.append((t, p)), payload="a")
    queue.schedule(20, lambda t, p: fired.append((t, p)), payload="b")
    queue.run()
    assert fired == [(10, "a"), (20, "b"), (30, "c")]


def test_ties_break_by_insertion_order():
    queue = EventQueue()
    fired = []
    for label in ("first", "second", "third"):
        queue.schedule(5, lambda t, p: fired.append(p), payload=label)
    queue.run()
    assert fired == ["first", "second", "third"]


def test_schedule_in_past_rejected():
    queue = EventQueue()
    queue.schedule(10, lambda t, p: None)
    queue.run()
    assert queue.now == 10
    with pytest.raises(ValueError):
        queue.schedule(5, lambda t, p: None)


def test_schedule_after_uses_current_time():
    queue = EventQueue()
    seen = []
    queue.schedule(10, lambda t, p: queue.schedule_after(5, lambda t2, p2: seen.append(t2)))
    queue.run()
    assert seen == [15]


def test_negative_delay_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.schedule_after(-1, lambda t, p: None)


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    fired = []
    keep = queue.schedule(10, lambda t, p: fired.append("keep"))
    cancel = queue.schedule(5, lambda t, p: fired.append("cancel"))
    cancel.cancel()
    queue.run()
    assert fired == ["keep"]
    assert keep.time == 10


def test_run_until_stops_before_later_events():
    queue = EventQueue()
    fired = []
    queue.schedule(10, lambda t, p: fired.append(10))
    queue.schedule(20, lambda t, p: fired.append(20))
    executed = queue.run(until=15)
    assert executed == 1
    assert fired == [10]
    # The remaining event is still there and runs later.
    queue.run()
    assert fired == [10, 20]


def test_run_max_events_limit():
    queue = EventQueue()
    fired = []
    for time in range(5):
        queue.schedule(time, lambda t, p: fired.append(t))
    executed = queue.run(max_events=3)
    assert executed == 3
    assert fired == [0, 1, 2]


def test_pop_advances_clock_without_executing():
    queue = EventQueue()
    fired = []
    queue.schedule(7, lambda t, p: fired.append(t))
    event = queue.pop()
    assert event is not None
    assert queue.now == 7
    assert fired == []


def test_len_counts_only_live_events():
    queue = EventQueue()
    first = queue.schedule(1, lambda t, p: None)
    queue.schedule(2, lambda t, p: None)
    first.cancel()
    assert len(queue) == 1
    assert not queue.empty()


def test_empty_queue_pop_returns_none():
    queue = EventQueue()
    assert queue.pop() is None
    assert queue.empty()


def test_len_is_tracked_across_schedule_cancel_pop():
    queue = EventQueue()
    events = [queue.schedule(time, lambda t, p: None) for time in range(4)]
    assert len(queue) == 4
    events[0].cancel()
    events[0].cancel()  # double cancel must not decrement twice
    assert len(queue) == 3
    popped = queue.pop()  # skips the cancelled event, pops the live one at t=1
    assert popped.time == 1
    assert len(queue) == 2
    # Cancelling an already-popped event must not affect the counter.
    popped.cancel()
    assert len(queue) == 2
    queue.run()
    assert len(queue) == 0 and queue.empty()


def test_len_is_tracked_through_run():
    queue = EventQueue()
    cancelled = []
    # The first event cancels the second while the queue is draining.
    second = queue.schedule(10, lambda t, p: cancelled.append(t))
    queue.schedule(5, lambda t, p: second.cancel())
    assert len(queue) == 2
    queue.run()
    assert cancelled == []
    assert len(queue) == 0


def test_peek_key_skips_cancelled_and_reports_earliest():
    queue = EventQueue()
    assert queue.peek_key() is None
    first = queue.schedule(5, lambda t, p: None)
    queue.schedule(9, lambda t, p: None)
    assert queue.peek_key() == (5, 0)
    first.cancel()
    assert queue.peek_key() == (9, 1)


def test_run_until_key_executes_strictly_before_the_key():
    queue = EventQueue()
    fired = []
    queue.schedule(5, lambda t, p: fired.append((t, "a")))   # seq 0
    queue.schedule(10, lambda t, p: fired.append((t, "b")))  # seq 1
    queue.schedule(10, lambda t, p: fired.append((t, "c")))  # seq 2
    # Everything before (10, seq 2): the t=5 event and the first t=10 one.
    executed = queue.run_until_key(10, 2)
    assert executed == 2
    assert fired == [(5, "a"), (10, "b")]
    assert queue.now == 10
    queue.run()
    assert fired[-1] == (10, "c")


def test_claim_seq_interleaves_with_scheduled_events():
    queue = EventQueue()
    queue.schedule(3, lambda t, p: None)  # seq 0
    assert queue.claim_seq() == 1
    event = queue.schedule(3, lambda t, p: None)
    assert event.seq == 2


def test_advance_clock_moves_forward_only():
    queue = EventQueue()
    queue.advance_clock(12)
    assert queue.now == 12
    with pytest.raises(ValueError):
        queue.advance_clock(11)
    with pytest.raises(ValueError):
        queue.schedule(5, lambda t, p: None)


def test_popped_events_counts_only_executed_events():
    queue = EventQueue()
    dropped = queue.schedule(1, lambda t, p: None)
    dropped.cancel()
    for time in (2, 3, 4):
        queue.schedule(time, lambda t, p: None)
    queue.run()
    assert queue.popped_events == 3


def test_heap_compacts_when_cancelled_entries_dominate():
    queue = EventQueue()
    keeper = queue.schedule(10**6, lambda t, p: None)
    threshold = EventQueue._COMPACT_MIN_CANCELLED
    for i in range(threshold):
        queue.schedule(i + 1, lambda t, p: None).cancel()
    # The compaction threshold has been crossed: only the live event may
    # remain in the underlying heap.
    assert len(queue) == 1
    assert len(queue._heap) == 1
    assert queue._heap[0][4] is keeper
    # The queue still behaves normally afterwards.
    fired = []
    queue.schedule(5, lambda t, p: fired.append(t))
    queue.run()
    assert fired == [5]
