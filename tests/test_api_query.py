"""Tests for the typed query layer: parsers, round-trip, normalisation."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.query import (
    API_VERSION,
    QueryRequest,
    QueryResponse,
    QueryValidationError,
)
from repro.campaign.jobs import enumerate_jobs
from repro.config.parameters import DataPolicyKind, TimingPolicyKind
from repro.config.presets import scaled_architecture
from repro.workloads.suite import APPLICATION_NAMES


class TestParsers:
    def test_applications_all_and_lists(self):
        assert QueryRequest.parse_applications("all") == tuple(APPLICATION_NAMES)
        assert QueryRequest.parse_applications("fft, lu") == ("fft", "lu")
        assert QueryRequest.parse_applications(["fft", "lu"]) == ("fft", "lu")

    def test_applications_reject_unknown(self):
        with pytest.raises(QueryValidationError, match="unknown applications: doom"):
            QueryRequest.parse_applications("fft,doom")

    def test_applications_reject_duplicates(self):
        with pytest.raises(QueryValidationError, match="duplicate applications: fft"):
            QueryRequest.parse_applications("fft,lu,fft")

    def test_applications_reject_empty(self):
        with pytest.raises(QueryValidationError, match="must not be empty"):
            QueryRequest.parse_applications("")

    def test_timing_policy(self):
        assert QueryRequest.parse_timing_policy("periodic") is TimingPolicyKind.PERIODIC
        assert QueryRequest.parse_timing_policy("P") is TimingPolicyKind.PERIODIC
        assert QueryRequest.parse_timing_policy("R") is TimingPolicyKind.REFRINT
        with pytest.raises(QueryValidationError, match="unknown timing policy"):
            QueryRequest.parse_timing_policy("lazy")

    def test_data_policy(self):
        assert QueryRequest.parse_data_policy("valid").kind is DataPolicyKind.VALID
        wb = QueryRequest.parse_data_policy("WB(16,8)")
        assert (wb.dirty_refreshes, wb.clean_refreshes) == (16, 8)
        with pytest.raises(QueryValidationError, match="unknown data policy"):
            QueryRequest.parse_data_policy("smart")

    def test_retentions(self):
        assert QueryRequest.parse_retentions("50, 125") == (50.0, 125.0)
        assert QueryRequest.parse_retentions(50) == (50.0,)
        with pytest.raises(QueryValidationError, match="not a number"):
            QueryRequest.parse_retentions("50,soon")
        with pytest.raises(QueryValidationError, match="positive"):
            QueryRequest.parse_retentions("-50")
        with pytest.raises(QueryValidationError, match="duplicate"):
            QueryRequest.parse_retentions("50,50")


class TestRequestValidation:
    def test_defaults_are_canonical(self):
        request = QueryRequest(applications="fft")
        assert request.retentions_us == (50.0,)
        assert request.timing_policies == (TimingPolicyKind.REFRINT,)
        assert [d.label for d in request.data_policies] == ["WB(32,32)"]
        assert request.api_version == API_VERSION

    def test_rejects_bad_scalars(self):
        with pytest.raises(QueryValidationError, match="length_scale"):
            QueryRequest(applications="fft", length_scale=0)
        with pytest.raises(QueryValidationError, match="seed"):
            QueryRequest(applications="fft", seed="yes")
        with pytest.raises(QueryValidationError, match="api_version"):
            QueryRequest(applications="fft", api_version=99)

    def test_rejects_duplicate_policies(self):
        with pytest.raises(QueryValidationError, match="duplicate timing"):
            QueryRequest(applications="fft", timing_policies=("r", "refrint"))
        with pytest.raises(QueryValidationError, match="duplicate data"):
            QueryRequest(applications="fft", data_policies=("valid", "valid"))

    def test_from_dict_is_strict(self):
        with pytest.raises(QueryValidationError, match="JSON object"):
            QueryRequest.from_dict(["fft"])
        with pytest.raises(QueryValidationError, match="missing 'applications'"):
            QueryRequest.from_dict({})
        with pytest.raises(QueryValidationError, match="unknown query fields: bogus"):
            QueryRequest.from_dict({"applications": ["fft"], "bogus": 1})

    def test_schema_names_every_field(self):
        schema = QueryRequest.json_schema()
        assert schema["required"] == ["applications"]
        assert schema["additionalProperties"] is False
        assert set(schema["properties"]) == set(QueryRequest._FIELDS)


# Round-trip property: any constructible request survives
# to_dict -> JSON -> from_dict exactly.
_requests = st.builds(
    QueryRequest,
    applications=st.lists(
        st.sampled_from(list(APPLICATION_NAMES)), min_size=1, max_size=4, unique=True
    ),
    retentions_us=st.lists(
        st.floats(min_value=1.0, max_value=10_000.0, allow_nan=False),
        min_size=1,
        max_size=3,
        unique=True,
    ),
    timing_policies=st.sampled_from(
        [("periodic",), ("refrint",), ("periodic", "refrint")]
    ),
    data_policies=st.lists(
        st.sampled_from(["all", "valid", "dirty", "WB(8,8)", "WB(32,32)"]),
        min_size=1,
        max_size=3,
        unique=True,
    ),
    length_scale=st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31),
    include_baseline=st.booleans(),
    allow_surrogate=st.booleans(),
)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(request=_requests)
    def test_json_round_trip(self, request):
        wire = json.loads(json.dumps(request.to_dict()))
        assert QueryRequest.from_dict(wire) == request

    def test_response_round_trip(self):
        request = QueryRequest(applications="fft", retentions_us=(50.0,))
        response = QueryResponse(request=request)
        wire = json.loads(json.dumps(response.to_dict()))
        restored = QueryResponse.from_dict(wire)
        assert restored.request == request
        assert restored.answers == []


class TestNormalisation:
    def test_order_and_baselines(self):
        request = QueryRequest(
            applications=("fft", "lu"),
            retentions_us=(50.0, 100.0),
            timing_policies=("refrint",),
            data_policies=("WB(32,32)",),
        )
        normalised = request.normalise()
        labels = [(p.application, p.label) for p in normalised.points]
        assert labels == [
            ("fft", "SRAM baseline"),
            ("fft", "50us/R.WB(32,32)"),
            ("fft", "100us/R.WB(32,32)"),
            ("lu", "SRAM baseline"),
            ("lu", "50us/R.WB(32,32)"),
            ("lu", "100us/R.WB(32,32)"),
        ]
        assert all(p.is_baseline == (p.point is None) for p in normalised.points)

    def test_no_baseline_when_excluded(self):
        request = QueryRequest(applications="fft", include_baseline=False)
        normalised = request.normalise()
        assert all(not p.is_baseline for p in normalised.points)

    def test_job_hashes_match_campaign_enumeration(self):
        # The acceptance criterion behind memoisation: a query and a CLI
        # sweep of the same grid must normalise to identical job hashes,
        # or they could never share a store.
        arch = scaled_architecture()
        request = QueryRequest(
            applications=("fft",),
            retentions_us=(50.0,),
            timing_policies=("periodic", "refrint"),
            data_policies=("all", "WB(32,32)"),
            length_scale=0.25,
        )
        normalised = request.normalise(arch)
        campaign_jobs = enumerate_jobs(
            request.workload_requests(), request.policy_points(), arch
        )
        assert [p.key for p in normalised.points] == [
            job.key() for job in campaign_jobs
        ]

    def test_unique_points_collapse_duplicates(self):
        request = QueryRequest(applications="fft", retentions_us=(50.0,))
        normalised = request.normalise()
        assert [p.key for p in normalised.unique_points()] == [
            p.key for p in normalised.points
        ]
