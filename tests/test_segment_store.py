"""Tests for the segment store backend: format, recovery, equivalence.

The segment store must be drop-in equivalent to the per-file JSON backend
(byte-identical canonical payloads, same resume semantics) while adding
crash-safe append-only persistence.  These tests run a real miniature
campaign once and exercise rollover, both crash modes (record bytes lost
versus index line lost), resume-after-crash, maintenance and migration on
the artefacts it leaves behind.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.engine import run_campaign
from repro.campaign.jobs import enumerate_jobs
from repro.campaign.maintenance import (
    migrate_store,
    store_gc,
    store_verify,
)
from repro.campaign.segments import (
    SEGMENT_META_FILE,
    SegmentResultStore,
    parse_segment_number,
    segment_name,
)
from repro.campaign.store import (
    ResultStore,
    detect_backend,
    open_store,
)
from repro.config.parameters import DataPolicySpec, TimingPolicyKind
from repro.config.presets import scaled_architecture
from repro.core.sweep import PolicyPoint
from repro.workloads.suite import WorkloadRequest

POINTS = [
    PolicyPoint(50.0, TimingPolicyKind.PERIODIC, DataPolicySpec.all_lines()),
    PolicyPoint(50.0, TimingPolicyKind.REFRINT, DataPolicySpec.writeback(32, 32)),
]

LENGTH_SCALE = 0.05


@pytest.fixture(scope="module")
def arch():
    return scaled_architecture()


@pytest.fixture(scope="module")
def requests():
    return [WorkloadRequest("blackscholes", length_scale=LENGTH_SCALE)]


@pytest.fixture(scope="module")
def campaign_stores(arch, requests, tmp_path_factory):
    """One miniature campaign persisted to both backends."""
    root = tmp_path_factory.mktemp("stores")
    sweep_json, _ = run_campaign(
        requests, points=POINTS, architecture=arch,
        store=root / "json", store_backend="json",
    )
    sweep_seg, _ = run_campaign(
        requests, points=POINTS, architecture=arch,
        store=root / "segment", store_backend="segment",
    )
    return root / "json", root / "segment", sweep_json, sweep_seg


def clone_store(source, destination):
    import shutil

    shutil.copytree(source, destination)
    return destination


class TestSegmentFormat:
    def test_naming_round_trip(self):
        assert segment_name(7) == "seg-00000007.jsonl"
        assert parse_segment_number("seg-00000007.jsonl") == 7
        assert parse_segment_number("seg-7.jsonl") is None
        assert parse_segment_number("other.jsonl") is None

    def test_layout_and_detection(self, campaign_stores):
        json_root, seg_root, _, _ = campaign_stores
        assert detect_backend(seg_root) == "segment"
        assert detect_backend(json_root) == "json"
        assert (seg_root / SEGMENT_META_FILE).exists()
        assert list((seg_root / "segments").glob("seg-*.jsonl"))
        meta = json.loads((seg_root / SEGMENT_META_FILE).read_text())
        assert meta["format"] == "refrint-segment-v1"

    def test_segment_headers_stamp_provenance(self, campaign_stores):
        _, seg_root, _, _ = campaign_stores
        for path in (seg_root / "segments").glob("seg-*.jsonl"):
            header = json.loads(path.read_text().splitlines()[0])
            assert header["store_format"] == "refrint-segment-v1"
            assert header["segment"] == path.name
            assert isinstance(header["trace_generator"], str)

    def test_open_store_refuses_backend_mismatch(self, campaign_stores):
        # The refusal must name BOTH the detected and the requested backend
        # and spell out the store-migrate escape hatch, so the error alone
        # is enough to fix the invocation.
        json_root, seg_root, _, _ = campaign_stores
        with pytest.raises(ValueError) as excinfo:
            open_store(seg_root, backend="json")
        message = str(excinfo.value)
        assert "'segment'-layout" in message
        assert "backend='json'" in message
        assert f"store migrate {seg_root}" in message
        assert "--to json" in message
        with pytest.raises(ValueError) as excinfo:
            open_store(json_root, backend="segment")
        message = str(excinfo.value)
        assert "'json'-layout" in message
        assert "backend='segment'" in message
        assert f"store migrate {json_root}" in message
        assert "--to segment" in message

    def test_open_store_auto_detects(self, campaign_stores):
        json_root, seg_root, _, _ = campaign_stores
        assert isinstance(open_store(seg_root), SegmentResultStore)
        assert isinstance(open_store(json_root), ResultStore)


class TestRoundTripAndRollover:
    def test_mapping_interface(self, campaign_stores, arch, requests):
        _, seg_root, sweep, _ = campaign_stores
        store = SegmentResultStore(seg_root)
        jobs = enumerate_jobs(requests, POINTS, arch)
        assert len(store) == len(jobs)
        assert sorted(store.keys()) == sorted(job.key() for job in jobs)
        for job in jobs:
            assert job.key() in store
        assert "0" * 64 not in store
        baseline = store.get(jobs[0].key())
        assert baseline is not None
        assert baseline.to_dict() == sweep.baseline("blackscholes").to_dict()
        assert store.get("0" * 64) is None

    def test_rollover_splits_records_across_segments(
        self, tmp_path, campaign_stores
    ):
        _, seg_root, _, _ = campaign_stores
        source = SegmentResultStore(seg_root)
        small = SegmentResultStore(tmp_path / "small", segment_max_bytes=4096)
        for key, payload in source.iter_records():
            small.put_record(key, payload)
        small.close()
        segments = sorted((tmp_path / "small" / "segments").glob("seg-*.jsonl"))
        assert len(segments) > 1  # records are ~3 KiB each; the cap forces rolls
        # Every record is still reachable through the rebuilt index.
        reopened = SegmentResultStore(tmp_path / "small", segment_max_bytes=4096)
        assert len(reopened) == len(source)
        for key, payload in source.iter_records():
            assert reopened.get(key) is not None

    def test_payloads_byte_identical_across_backends(self, campaign_stores):
        json_root, seg_root, _, _ = campaign_stores
        json_store = open_store(json_root)
        seg_store = open_store(seg_root)
        json_payloads = {
            key: json.dumps(payload, sort_keys=True)
            for key, payload in json_store.iter_records()
        }
        seg_payloads = {
            key: json.dumps(payload, sort_keys=True)
            for key, payload in seg_store.iter_records()
        }
        assert json_payloads == seg_payloads

    def test_sweeps_identical_across_backends(self, campaign_stores):
        _, _, sweep_json, sweep_seg = campaign_stores
        assert sweep_json.to_dict() == sweep_seg.to_dict()


class TestCrashRecovery:
    def crash_truncate_tail(self, root, cut=25):
        """Chop the last ``cut`` bytes off the highest-numbered segment."""
        last = sorted((root / "segments").glob("seg-*.jsonl"))[-1]
        blob = last.read_bytes()
        last.write_bytes(blob[: len(blob) - cut])

    def test_truncated_record_is_cleanly_absent(self, tmp_path, campaign_stores):
        _, seg_root, _, _ = campaign_stores
        root = clone_store(seg_root, tmp_path / "crash")
        before = set(SegmentResultStore(seg_root).keys())
        self.crash_truncate_tail(root)
        store = SegmentResultStore(root)
        survived = set(store.keys())
        assert len(survived) == len(before) - 1
        lost = (before - survived).pop()
        assert store.get(lost) is None
        # Recovery is stable: a second open sees the same state, and the
        # store accepts new appends at the repaired boundary.
        source = SegmentResultStore(seg_root)
        payload = dict(source.iter_records())[lost]
        store.put_record(lost, payload)
        store.close()
        reopened = SegmentResultStore(root)
        assert set(reopened.keys()) == before
        assert reopened.get(lost).to_dict() == payload["result"]

    def test_resume_reruns_only_the_lost_jobs(
        self, tmp_path, campaign_stores, arch, requests
    ):
        """After a crash, a resumed campaign re-runs exactly the lost jobs."""
        _, seg_root, sweep_before, _ = campaign_stores
        root = clone_store(seg_root, tmp_path / "crash")
        self.crash_truncate_tail(root)
        sweep, stats = run_campaign(
            requests, points=POINTS, architecture=arch,
            store=root, resume=True,
        )
        assert stats.executed == 1  # exactly the lost job, nothing else
        assert stats.reused == 2
        assert sweep.to_dict() == sweep_before.to_dict()
        assert store_verify(root).ok

    def test_lost_index_line_is_reindexed(self, tmp_path, campaign_stores):
        """Crash between segment append and index append loses nothing."""
        _, seg_root, _, _ = campaign_stores
        root = clone_store(seg_root, tmp_path / "crash")
        index = root / "index.jsonl"
        lines = index.read_text().splitlines()
        dropped = json.loads(lines[-1])["key"]
        index.write_text("".join(line + "\n" for line in lines[:-1]))
        store = SegmentResultStore(root)
        assert dropped in store  # recovered from the segment bytes
        assert store.get(dropped) is not None
        # ... and the recovered entry was appended back to the index file.
        on_disk = [json.loads(line)["key"] for line in index.read_text().splitlines()]
        assert dropped in on_disk

    def test_resume_after_lost_index_line_reruns_nothing(
        self, tmp_path, campaign_stores, arch, requests
    ):
        _, seg_root, _, _ = campaign_stores
        root = clone_store(seg_root, tmp_path / "crash")
        index = root / "index.jsonl"
        lines = index.read_text().splitlines()
        index.write_text("".join(line + "\n" for line in lines[:-1]))
        _, stats = run_campaign(
            requests, points=POINTS, architecture=arch, store=root, resume=True,
        )
        assert stats.executed == 0
        assert stats.reused == len(lines)

    @pytest.mark.parametrize("backend", ["json", "segment"])
    def test_resume_mid_campaign_round_trip(
        self, tmp_path, campaign_stores, arch, requests, backend
    ):
        """A campaign killed part-way resumes to the identical sweep."""
        json_root, seg_root, sweep_before, _ = campaign_stores
        source = json_root if backend == "json" else seg_root
        root = clone_store(source, tmp_path / "partial")
        # Simulate the kill: retire one completed job from the store.
        store = open_store(root)
        victim = sorted(store.keys())[0]
        if backend == "json":
            store.path_for(victim).unlink()
            store.refresh_index()
        else:
            store.drop_keys([victim])
        store.close()
        sweep, stats = run_campaign(
            requests, points=POINTS, architecture=arch, store=root, resume=True,
        )
        assert stats.executed == 1 and stats.reused == 2
        assert sweep.to_dict() == sweep_before.to_dict()


class TestMaintenanceOnSegments:
    def test_verify_clean_store(self, campaign_stores):
        _, seg_root, _, _ = campaign_stores
        report = store_verify(seg_root)
        assert report.ok
        assert len(report.entries) == 3
        assert all(entry.application == "blackscholes" for entry in report.entries)

    def test_verify_after_simulated_crash_then_gc(self, tmp_path, campaign_stores):
        _, seg_root, _, _ = campaign_stores
        root = clone_store(seg_root, tmp_path / "crash")
        TestCrashRecovery().crash_truncate_tail(root)
        report = store_verify(root)
        assert not report.ok
        problems = " ".join(entry.problem for entry in report.problems)
        assert "past segment end" in problems and "truncated" in problems
        store_gc(root)
        assert store_verify(root).ok

    def test_orphaned_segment_detection_and_gc(self, tmp_path, campaign_stores):
        _, seg_root, _, _ = campaign_stores
        root = clone_store(seg_root, tmp_path / "orphan")
        stray = root / "segments" / segment_name(999)
        header = {"segment": stray.name, "store_format": "refrint-segment-v1"}
        stray.write_text(json.dumps(header) + "\n")
        (root / "leftover.tmp").write_text("x")
        (root / "segments" / "notes.txt").write_text("x")
        report = store_verify(root)
        names = {path.name for path in report.orphans}
        assert {stray.name, "leftover.tmp", "notes.txt"} <= names
        report = store_gc(root)
        assert not stray.exists()
        assert not (root / "leftover.tmp").exists()
        assert store_verify(root).ok

    def test_index_mismatch_detection(self, tmp_path, campaign_stores):
        _, seg_root, _, _ = campaign_stores
        root = clone_store(seg_root, tmp_path / "mismatch")
        index = root / "index.jsonl"
        lines = [json.loads(line) for line in index.read_text().splitlines()]
        # Point the first entry at the second entry's record bytes.
        lines[0]["offset"] = lines[1]["offset"]
        lines[0]["length"] = lines[1]["length"]
        index.write_text(
            "".join(
                json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
                for entry in lines
            )
        )
        report = store_verify(root)
        problems = " ".join(entry.problem for entry in report.problems)
        assert "index mismatch" in problems

    def test_hash_verification_catches_tampering(self, tmp_path, campaign_stores):
        _, seg_root, _, _ = campaign_stores
        root = clone_store(seg_root, tmp_path / "tampered")
        store = SegmentResultStore(root)
        key, payload = next(iter(store.iter_records()))
        tampered = json.loads(json.dumps(payload))
        tampered["hash_payload"]["workload"]["seed"] = 12345
        store.drop_keys([key])
        store.put_record(key, tampered)
        store.close()
        report = store_verify(root)
        problems = " ".join(entry.problem for entry in report.problems)
        assert "content hash mismatch" in problems


class TestMigration:
    def test_json_to_segment_to_json_is_byte_identical(
        self, tmp_path, campaign_stores
    ):
        json_root, _, _, _ = campaign_stores
        seg_copy = tmp_path / "as-segment"
        json_again = tmp_path / "as-json"
        copied, skipped = migrate_store(json_root, seg_copy, backend="segment")
        assert (copied, skipped) == (3, 0)
        assert detect_backend(seg_copy) == "segment"
        assert store_verify(seg_copy).ok
        migrate_store(seg_copy, json_again, backend="json")
        original = {
            path.name: path.read_bytes() for path in json_root.glob("*.json")
        }
        restored = {
            path.name: path.read_bytes() for path in json_again.glob("*.json")
        }
        assert original == restored

    def test_migration_copies_provenance_verbatim(self, tmp_path, campaign_stores):
        _, seg_root, _, _ = campaign_stores
        destination = tmp_path / "migrated"
        migrate_store(seg_root, destination, backend="json")
        assert (
            open_store(destination).recorded_provenance()
            == open_store(seg_root).recorded_provenance()
        )

    def test_migration_refuses_non_empty_destination(
        self, tmp_path, campaign_stores
    ):
        json_root, _, _, _ = campaign_stores
        destination = tmp_path / "occupied"
        destination.mkdir()
        (destination / "something.txt").write_text("x")
        with pytest.raises(ValueError, match="not empty"):
            migrate_store(json_root, destination, backend="segment")

    def test_migrated_store_resumes_without_rerunning(
        self, tmp_path, campaign_stores, arch, requests
    ):
        json_root, _, sweep_before, _ = campaign_stores
        destination = tmp_path / "migrated"
        migrate_store(json_root, destination, backend="segment")
        sweep, stats = run_campaign(
            requests, points=POINTS, architecture=arch,
            store=destination, resume=True,
        )
        assert stats.executed == 0 and stats.reused == 3
        assert sweep.to_dict() == sweep_before.to_dict()
