"""Tests for sweep-as-a-service: coalescing, memoisation, surrogates, HTTP.

Everything is asserted on exact counters (jobs executed, batches, coalesced
waits, store hits), never on timing -- the repo's CI currency.  The
simulator is only invoked where the test is *about* real results; a module
store is seeded once and shared.
"""

from __future__ import annotations

import argparse
import asyncio
import json

import pytest

from repro.api import Query, QueryValidationError, answer_query
from repro.api.answer import default_run_jobs
from repro.api.surrogate import SurrogateLattice
from repro.campaign.store import open_store
from repro.service import SweepService, make_service, serve
from repro.validate.service import check_response

LENGTH_SCALE = 0.05

#: The grid the module store is seeded with (3 jobs: baseline + 2 points).
SEED_QUERY = Query(
    applications="fft",
    retentions_us=(50.0, 200.0),
    timing_policies=("refrint",),
    data_policies=("WB(32,32)",),
    length_scale=LENGTH_SCALE,
)


class CountingRunner:
    """An execution seam that counts exactly what the service runs."""

    def __init__(self):
        self.jobs = 0
        self.batches = 0

    def __call__(self, batch):
        self.batches += 1
        self.jobs += len(batch)
        return default_run_jobs(batch)


@pytest.fixture(scope="module")
def seeded_store(tmp_path_factory):
    store = open_store(tmp_path_factory.mktemp("service") / "store", backend="segment")
    response = answer_query(SEED_QUERY, store=store)
    assert response.exact
    return store


def make_seeded_service(seeded_store, **kwargs):
    runner = CountingRunner()
    service = make_service(
        store=seeded_store,
        run_jobs=runner,
        surrogate_retentions=(50.0, 200.0),
        **kwargs,
    )
    return service, runner


class TestMemoisationAndCoalescing:
    def test_repeat_query_runs_zero_jobs(self, seeded_store):
        service, runner = make_seeded_service(seeded_store)

        async def scenario():
            first = await service.answer(SEED_QUERY)
            second = await service.answer(SEED_QUERY)
            return first, second

        first, second = asyncio.run(scenario())
        assert first.exact and second.exact
        # Zero simulator invocations: everything was already in the store.
        assert runner.jobs == 0 and runner.batches == 0
        assert service.stats.store_hits == 6
        assert all(a.provenance.source == "store" for a in second.answers)
        assert second.aggregates is not None
        assert set(second.aggregates) == {"50us/R.WB(32,32)", "200us/R.WB(32,32)"}

    def test_concurrent_identical_cold_queries_run_one_job(self, seeded_store):
        service, runner = make_seeded_service(seeded_store)
        # 75us is cold (not stored, surrogates off): the only eDRAM point
        # of this query must be simulated exactly once across N queries.
        cold = SEED_QUERY.with_options(
            retentions_us=(75.0,), allow_surrogate=False
        )

        async def scenario():
            return await asyncio.gather(*[service.answer(cold) for _ in range(5)])

        responses = asyncio.run(scenario())
        assert all(response.exact for response in responses)
        assert runner.jobs == 1 and runner.batches == 1
        assert service.stats.jobs_executed == 1
        # The 4 queries that arrived while the first was simulating waited
        # on its future instead of running their own job.
        assert service.stats.coalesced == 4
        # All five answers carry the same job hash and exact values.
        answers = [response.answers[-1] for response in responses]
        assert len({a.provenance.job_key for a in answers}) == 1
        assert len({a.metrics["execution_cycles"] for a in answers}) == 1

    def test_fresh_results_are_committed_to_the_store(self, seeded_store):
        service, runner = make_seeded_service(seeded_store)
        cold = SEED_QUERY.with_options(
            retentions_us=(80.0,), allow_surrogate=False
        )

        async def scenario():
            await service.answer(cold)
            return await service.answer(cold)

        second = asyncio.run(scenario())
        assert runner.jobs == 1  # the repeat was a pure store hit
        assert all(a.provenance.source == "store" for a in second.answers)


class TestSurrogates:
    def test_off_grid_is_surrogate_with_bounds_then_backfilled(self, seeded_store):
        service, runner = make_seeded_service(seeded_store)
        off_grid = SEED_QUERY.with_options(retentions_us=(125.0,))

        async def scenario():
            first = await service.answer(off_grid)
            await service.drain_backfills()
            second = await service.answer(off_grid)
            return first, second

        first, second = asyncio.run(scenario())
        assert not first.exact
        surrogate = first.answers[-1]
        assert surrogate.exact is False
        assert surrogate.bounds == {"retention_us": [50.0, 200.0]}
        assert len(surrogate.provenance.corner_keys) == 2
        assert surrogate.provenance.source == "surrogate"
        assert surrogate.result is None
        # Mixed responses never serve grid aggregates.
        assert first.aggregates is None
        # The interpolated metrics lie inside the exact corner envelope.
        corners = [
            seeded_store.get(key) for key in surrogate.provenance.corner_keys
        ]
        lo, hi = sorted(c.memory_energy() for c in corners)
        assert lo <= surrogate.metrics["memory_energy_j"] <= hi
        # The exact job ran exactly once, asynchronously, and the re-query
        # is now an exact store hit with provenance naming the store.
        assert service.stats.backfills_scheduled == 1
        assert service.stats.backfills_completed == 1
        assert runner.jobs == 1
        assert second.exact
        exact = second.answers[-1]
        assert exact.provenance.source == "store"
        assert exact.provenance.job_key == surrogate.provenance.job_key
        assert exact.provenance.store_backend == "segment"

    def test_coalescing_onto_a_backfill(self, seeded_store):
        service, runner = make_seeded_service(seeded_store)
        off_grid = SEED_QUERY.with_options(retentions_us=(150.0,))
        exact_only = off_grid.with_options(allow_surrogate=False)

        async def scenario():
            # The surrogate query schedules a backfill; the exact query for
            # the same grid arrives while it is in flight and must coalesce
            # onto it rather than run a second simulation.
            first = await service.answer(off_grid)
            second_task = asyncio.create_task(service.answer(exact_only))
            second = await second_task
            await service.drain_backfills()
            return first, second

        first, second = asyncio.run(scenario())
        assert not first.exact and second.exact
        assert runner.jobs == 1
        assert service.stats.coalesced == 1

    def test_outside_hull_simulates_exactly(self, seeded_store):
        service, runner = make_seeded_service(seeded_store)
        outside = SEED_QUERY.with_options(retentions_us=(20.0,))

        async def scenario():
            return await service.answer(outside)

        response = asyncio.run(scenario())
        assert response.exact
        assert runner.jobs == 1
        assert service.stats.surrogate_answers == 0


class TestServedAnswerValidation:
    def test_clean_response_has_no_violations(self, seeded_store):
        service, _ = make_seeded_service(seeded_store, validate_answers=True)

        async def scenario():
            return await service.answer(SEED_QUERY)

        response = asyncio.run(scenario())
        assert service.stats.validation_failures == 0
        assert check_response(response, store=seeded_store) == []

    def test_mislabelled_exactness_is_flagged(self, seeded_store):
        response = answer_query(SEED_QUERY, store=seeded_store)
        response.answers[1].exact = False  # an exact answer lying about itself
        violations = check_response(response, store=seeded_store)
        assert any("source" in v for v in violations)

    def test_tampered_metric_is_flagged(self, seeded_store):
        response = answer_query(SEED_QUERY, store=seeded_store)
        response.answers[1].metrics["memory_energy_j"] *= 2
        violations = check_response(response, store=seeded_store)
        assert any("disagrees with the result payload" in v for v in violations)

    def test_surrogate_outside_envelope_is_flagged(self, seeded_store):
        lattice = SurrogateLattice(seeded_store, retentions_us=(50.0, 200.0))
        # 90us is off-grid and never backfilled by the other tests, so this
        # query is answered by interpolation even on the shared store.
        response = answer_query(
            SEED_QUERY.with_options(retentions_us=(90.0,)),
            store=seeded_store,
            lattice=lattice,
        )
        surrogate = response.answers[-1]
        assert not surrogate.exact
        surrogate.metrics["memory_energy_j"] *= 10
        violations = check_response(response, store=seeded_store)
        assert any("outside its corner envelope" in v for v in violations)


async def http_request(port, method, path, body=None, raw_body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = raw_body if raw_body is not None else (
        b"" if body is None else json.dumps(body).encode("utf-8")
    )
    head = f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
    if body is not None or raw_body is not None:
        head += f"Content-Length: {len(payload)}\r\n"
    writer.write(head.encode("ascii") + b"\r\n" + payload)
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    status = int(data.split(b" ", 2)[1])
    return status, json.loads(data.split(b"\r\n\r\n", 1)[1])


class TestHttpFrontEnd:
    def run_http(self, scenario, service=None):
        service = service if service is not None else SweepService()

        async def main():
            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]
            try:
                return await scenario(service, port)
            finally:
                server.close()
                await server.wait_closed()

        return asyncio.run(main())

    def test_malformed_requests_get_4xx(self):
        async def scenario(service, port):
            results = {}
            results["bad_json"] = await http_request(
                port, "POST", "/v1/query", raw_body=b"{nope"
            )
            results["unknown_field"] = await http_request(
                port, "POST", "/v1/query", body={"applications": ["fft"], "x": 1}
            )
            results["bad_policy"] = await http_request(
                port, "POST", "/v1/query",
                body={"applications": ["fft"], "data_policies": ["smart"]},
            )
            results["duplicates"] = await http_request(
                port, "POST", "/v1/query", body={"applications": ["fft", "fft"]}
            )
            results["no_body"] = await http_request(port, "POST", "/v1/query")
            results["not_found"] = await http_request(port, "GET", "/v2/query")
            results["bad_method"] = await http_request(port, "GET", "/v1/query")
            return results

        results = self.run_http(scenario)
        assert results["bad_json"][0] == 400
        assert "not valid JSON" in results["bad_json"][1]["error"]
        assert results["unknown_field"][0] == 400
        assert "unknown query fields" in results["unknown_field"][1]["error"]
        assert results["bad_policy"][0] == 400
        assert "unknown data policy" in results["bad_policy"][1]["error"]
        assert results["duplicates"][0] == 400
        assert "duplicate applications" in results["duplicates"][1]["error"]
        assert results["no_body"][0] == 400
        assert results["not_found"][0] == 404
        assert results["bad_method"][0] == 405

    def test_health_schema_stats(self, seeded_store):
        service, _ = make_seeded_service(seeded_store)

        async def scenario(service, port):
            health = await http_request(port, "GET", "/v1/health")
            schema = await http_request(port, "GET", "/v1/schema")
            stats = await http_request(port, "GET", "/v1/stats")
            return health, schema, stats

        health, schema, stats = self.run_http(scenario, service)
        assert health[0] == 200 and health[1]["status"] == "ok"
        assert health[1]["store_backend"] == "segment"
        assert health[1]["surrogate"] is True
        assert schema[0] == 200 and schema[1]["title"] == "QueryRequest"
        assert stats[0] == 200 and stats[1]["queries"] == 0

    def test_query_over_http_is_memoised(self, seeded_store):
        service, runner = make_seeded_service(seeded_store)

        async def scenario(service, port):
            return await http_request(
                port, "POST", "/v1/query", body=SEED_QUERY.to_dict()
            )

        status, body = self.run_http(scenario, service)
        assert status == 200
        assert body["exact"] is True
        assert runner.jobs == 0  # served entirely from the store
        assert len(body["answers"]) == 3
        assert all(a["provenance"]["source"] == "store" for a in body["answers"])
        assert body["aggregates"]


class TestCliServe:
    def test_rejects_bad_arguments(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["serve", "--store", str(tmp_path / "missing")]) == 2
        assert main(["serve", "--jobs", "0"]) == 2

    def test_duplicate_applications_rejected_at_the_parser(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--applications", "fft,fft"])

    def test_answer_query_facade_matches_service(self, seeded_store):
        # The sync facade and the async service answer from the same store
        # with the same provenance stamps.
        response = answer_query(SEED_QUERY, store=seeded_store)
        assert response.exact
        assert all(a.provenance.source == "store" for a in response.answers)
        normalised = [
            a.normalised for a in response.answers if a.label != "SRAM baseline"
        ]
        assert all(n is not None and 0 < n["memory"] < 1 for n in normalised)
