"""Unit tests for the refresh timer wheel."""

from __future__ import annotations

import pytest

from repro.utils.events import EventQueue
from repro.utils.wheel import RefreshWheel


@pytest.fixture
def queue():
    return EventQueue()


def drain_all(queue, until=None):
    return queue.run(until=until)


class TestScheduling:
    def test_exact_timer_fires_at_its_deadline(self, queue):
        wheel = RefreshWheel(queue, bucket_cycles=16)
        fired = []
        wheel.schedule(37, 37, lambda t, p: fired.append((t, p)), payload="x")
        queue.run()
        assert fired == [(37, "x")]

    def test_deadline_before_ready_rejected(self, queue):
        wheel = RefreshWheel(queue, bucket_cycles=16)
        with pytest.raises(ValueError):
            wheel.schedule(10, 9, lambda t, p: None)

    def test_invalid_bucket_width_rejected(self, queue):
        with pytest.raises(ValueError):
            RefreshWheel(queue, bucket_cycles=0)

    def test_len_and_next_deadline(self, queue):
        wheel = RefreshWheel(queue, bucket_cycles=16)
        assert len(wheel) == 0
        assert wheel.next_deadline() is None
        wheel.schedule(40, 50, lambda t, p: None)
        wheel.schedule(20, 30, lambda t, p: None)
        assert len(wheel) == 2
        assert wheel.next_deadline() == 30

    def test_earlier_deadline_rearms_the_queue_event(self, queue):
        wheel = RefreshWheel(queue, bucket_cycles=16)
        fired = []
        wheel.schedule(100, 100, lambda t, p: fired.append(p), payload="late")
        wheel.schedule(10, 10, lambda t, p: fired.append(p), payload="early")
        queue.run(until=10)
        assert fired == ["early"]
        queue.run()
        assert fired == ["early", "late"]


class TestBatching:
    def test_one_queue_event_drains_a_shared_deadline(self, queue):
        wheel = RefreshWheel(queue, bucket_cycles=16)
        fired = []
        for label in ("a", "b", "c"):
            wheel.schedule(40, 40, lambda t, p: fired.append(p), payload=label)
        executed = queue.run()
        assert executed == 1  # one drain serves all three timers
        assert fired == ["a", "b", "c"]

    def test_lazy_timers_ride_along_with_an_exact_one(self, queue):
        wheel = RefreshWheel(queue, bucket_cycles=64)
        fired = []
        # A lazy timer ready at 30 with slack to 60 is served by the exact
        # timer's drain at 40 -- after its ready time, before its deadline.
        wheel.schedule(30, 60, lambda t, p: fired.append((t, "lazy")))
        wheel.schedule(40, 40, lambda t, p: fired.append((t, "exact")))
        executed = queue.run()
        assert executed == 1
        assert [entry[1] for entry in fired] == ["lazy", "exact"]
        assert all(t == 40 for t, _ in fired)

    def test_not_ready_timers_stay_for_a_later_drain(self, queue):
        wheel = RefreshWheel(queue, bucket_cycles=64)
        fired = []
        wheel.schedule(40, 40, lambda t, p: fired.append((t, "exact")))
        # Same bucket, but not ready until 50: must not be served at 40.
        wheel.schedule(50, 60, lambda t, p: fired.append((t, "later")))
        queue.run(until=40)
        assert fired == [(40, "exact")]
        assert len(wheel) == 1
        queue.run()
        assert fired == [(40, "exact"), (60, "later")]

    def test_timer_is_never_served_after_its_deadline(self, queue):
        wheel = RefreshWheel(queue, bucket_cycles=8)
        served = []
        wheel.schedule(10, 14, lambda t, p: served.append(t))
        wheel.schedule(11, 30, lambda t, p: served.append(t))
        queue.run()
        assert all(
            fire <= deadline
            for fire, deadline in zip(served, (14, 30))
        )

    def test_reschedule_during_drain_rearms_once(self, queue):
        wheel = RefreshWheel(queue, bucket_cycles=16)
        fired = []

        def recurring(cycle, payload):
            fired.append(cycle)
            if len(fired) < 3:
                wheel.schedule(cycle + 100, cycle + 100, recurring)

        wheel.schedule(100, 100, recurring)
        queue.run()
        assert fired == [100, 200, 300]

    def test_drain_order_is_bucket_then_insertion(self, queue):
        wheel = RefreshWheel(queue, bucket_cycles=8)
        fired = []
        # Two buckets' worth of timers, all ready well before any deadline.
        wheel.schedule(4, 20, lambda t, p: fired.append(p), payload="b2-first")
        wheel.schedule(3, 12, lambda t, p: fired.append(p), payload="b1-first")
        wheel.schedule(5, 21, lambda t, p: fired.append(p), payload="b2-second")
        wheel.schedule(2, 13, lambda t, p: fired.append(p), payload="b1-second")
        # The drain at 12 visits buckets up to 12 // 8 only: the ready
        # timers parked in the later bucket wait for their own deadline.
        queue.run(until=12)
        assert fired == ["b1-first", "b1-second"]
        queue.run()
        assert fired == ["b1-first", "b1-second", "b2-first", "b2-second"]


class TestControllerIntegration:
    def test_shared_wheel_coalesces_controllers(self, tiny_architecture):
        """All 64 controllers' first timers drain from a few queue events."""
        from repro.config.parameters import SimulationConfig
        from repro.hierarchy.hierarchy import CacheHierarchy
        from repro.refresh.controller import build_refresh_controllers
        from tests.conftest import make_refresh_config

        refresh = make_refresh_config(tiny_architecture, retention_cycles=400)
        config = SimulationConfig.edram(refresh, tiny_architecture)
        hierarchy = CacheHierarchy(tiny_architecture)
        events = EventQueue()
        controllers = build_refresh_controllers(hierarchy, config, events)
        wheels = {controller.wheel for controller in controllers}
        assert len(wheels) == 1
        assert hierarchy.refresh_wheel is next(iter(wheels))
        for controller in controllers:
            controller.start(0)
        # One timer per sentry group was scheduled, but the queue holds far
        # fewer events than that (a single armed drain, in fact).
        assert len(hierarchy.refresh_wheel) > len(controllers)
        assert len(events) == 1

    def test_standalone_controller_builds_its_own_wheel(self, tiny_architecture):
        from repro.hierarchy.hierarchy import CacheHierarchy
        from repro.refresh.refrint import RefrintRefreshController
        from repro.refresh.policies import ValidPolicy
        from tests.conftest import make_refresh_config

        hierarchy = CacheHierarchy(tiny_architecture)
        events = EventQueue()
        refresh = make_refresh_config(tiny_architecture, retention_cycles=400)
        controller = RefrintRefreshController(
            "l3", 0, hierarchy.banks[0].cache, ValidPolicy(), refresh,
            hierarchy, events,
        )
        assert controller.wheel is not None
        controller.start(0)
        assert controller.next_disturbance_cycle() is not None


class TestDueProbe:
    """Per-group due-time probes: skip-and-rearm instead of serving."""

    def test_probe_none_serves_the_entry(self, queue):
        wheel = RefreshWheel(queue, bucket_cycles=16)
        fired = []
        wheel.schedule(
            20, 25, lambda t, p: fired.append((t, p)), payload="g",
            probe=lambda cycle, payload: None,
        )
        queue.run()
        assert fired == [(25, "g")]
        assert wheel.skips == 0

    def test_probe_reschedules_without_serving(self, queue):
        wheel = RefreshWheel(queue, bucket_cycles=16)
        fired = []
        answers = iter([90, None])  # first service: nothing due until 90

        def probe(cycle, payload):
            return next(answers)

        wheel.schedule(
            20, 24, lambda t, p: fired.append((t, p)), payload="g", probe=probe
        )
        queue.run(until=50)
        assert fired == []
        assert wheel.skips == 1
        assert len(wheel) == 1
        # Slack (deadline - ready == 4) is preserved across the re-bucket.
        assert wheel.next_deadline() == 94
        queue.run()
        assert fired == [(94, "g")]

    def test_skipped_entry_keeps_payload_and_probe(self, queue):
        wheel = RefreshWheel(queue, bucket_cycles=8)
        seen = []

        def probe(cycle, payload):
            seen.append((cycle, payload))
            return cycle + 30 if len(seen) < 3 else None

        fired = []
        wheel.schedule(10, 10, lambda t, p: fired.append(p), "grp", probe)
        queue.run()
        assert [p for _, p in seen] == ["grp", "grp", "grp"]
        assert wheel.skips == 2
        assert fired == ["grp"]

    def test_entries_without_probe_are_unaffected(self, queue):
        wheel = RefreshWheel(queue, bucket_cycles=16)
        fired = []
        wheel.schedule(10, 10, lambda t, p: fired.append("plain"))
        wheel.schedule(
            10, 10, lambda t, p: fired.append("probed"),
            probe=lambda cycle, payload: None,
        )
        queue.run()
        assert fired == ["plain", "probed"]


class TestRefrintProbeEquivalence:
    """The Refrint group probe skips exactly the no-due-work scans."""

    def test_probe_skips_are_unobservable(self, tiny_architecture, monkeypatch):
        # A simulation with due probes active must be byte-identical to the
        # same simulation with every entry forced through the handlers
        # (probe disabled), and the probed run must actually skip scans --
        # otherwise an over-eager probe could diverge identically in every
        # replay mode and no equivalence test would notice.
        import json

        from repro.config.parameters import (
            DataPolicySpec, RefreshConfig, SimulationConfig, TimingPolicyKind,
        )
        from repro.config.presets import scaled_retention_cycles
        from repro.core.simulator import RefrintSimulator
        from repro.refresh.refrint import RefrintRefreshController
        from repro.workloads.suite import build_application

        architecture = tiny_architecture
        retention = scaled_retention_cycles(50.0)
        refresh = RefreshConfig(
            retention_cycles=retention,
            sentry_margin_cycles=RefreshConfig.derive_sentry_margin(
                architecture.l3_bank.num_lines, retention
            ),
            timing_policy=TimingPolicyKind.REFRINT,
            l3_data_policy=DataPolicySpec.writeback(4, 4),
        )
        config = SimulationConfig.edram(refresh, architecture)
        workload = build_application("fft", architecture, length_scale=0.02)

        wheels = []
        original_init = RefreshWheel.__init__

        def tracking_init(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            wheels.append(self)

        monkeypatch.setattr(RefreshWheel, "__init__", tracking_init)

        probed = RefrintSimulator(config).run(workload)
        assert wheels and sum(w.skips for w in wheels) > 0, (
            "the probe never skipped a scan; the test exercises nothing"
        )

        wheels.clear()
        monkeypatch.setattr(
            RefrintRefreshController,
            "_group_probe",
            lambda self, cycle, payload: None,  # always serve the handler
        )
        unprobed = RefrintSimulator(config).run(workload)
        assert wheels and sum(w.skips for w in wheels) == 0

        canonical = lambda r: json.dumps(r.to_dict(), sort_keys=True)  # noqa: E731
        assert canonical(probed) == canonical(unprobed)
