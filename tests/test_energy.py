"""Unit tests for the energy tables, accounting and system model."""

from __future__ import annotations

import pytest

from repro.config.parameters import CellTechnology
from repro.config.presets import paper_architecture
from repro.energy.accounting import EnergyAccount, EnergyBreakdown, normalise
from repro.energy.model import ActivitySummary, SystemEnergyModel
from repro.energy.tables import (
    EDRAM_LEAKAGE_RATIO,
    default_tables,
    edram_tables,
    geometry_for_level,
    instances_for_level,
    sram_tables,
)
from repro.utils.statistics import Counter


class TestTables:
    def test_edram_has_quarter_leakage_same_access_energy(self):
        for level, sram in sram_tables().items():
            edram = edram_tables()[level]
            assert edram.leakage_power_w == pytest.approx(
                sram.leakage_power_w * EDRAM_LEAKAGE_RATIO
            )
            assert edram.read_energy_nj == sram.read_energy_nj
            assert edram.write_energy_nj == sram.write_energy_nj

    def test_refresh_energy_equals_read_energy(self):
        """Table 5.2: refresh energy is modelled as one access energy."""
        for table in edram_tables().values():
            assert table.refresh_energy_nj == table.read_energy_nj

    def test_levels_get_monotonically_bigger_tables(self):
        tables = sram_tables()
        assert tables["l1d"].read_energy_nj < tables["l2"].read_energy_nj
        assert tables["l2"].read_energy_nj < tables["l3"].read_energy_nj
        assert tables["l2"].leakage_power_w < tables["l3"].leakage_power_w

    def test_instances_per_level(self):
        arch = paper_architecture()
        assert instances_for_level(arch, "l1d") == 16
        assert instances_for_level(arch, "l2") == 16
        assert instances_for_level(arch, "l3") == 16
        with pytest.raises(KeyError):
            instances_for_level(arch, "l4")

    def test_geometry_lookup(self):
        arch = paper_architecture()
        assert geometry_for_level(arch, "l2") is arch.l2
        with pytest.raises(KeyError):
            geometry_for_level(arch, "dram")

    def test_l3_dominates_chip_leakage(self):
        """Calibration: the shared L3 should carry most on-chip leakage."""
        arch = paper_architecture()
        tables = sram_tables()
        total = sum(
            tables[level].leakage_power_w * instances_for_level(arch, level)
            for level in ("l1i", "l1d", "l2", "l3")
        )
        l3 = tables["l3"].leakage_power_w * instances_for_level(arch, "l3")
        assert 0.5 < l3 / total < 0.8


class TestAccounting:
    def test_levels_and_components_sum_to_same_total(self):
        account = EnergyAccount()
        account.add_dynamic("l1d", 1.0)
        account.add_dynamic("l1i", 0.5)
        account.add_leakage("l2", 2.0)
        account.add_refresh("l3", 0.25)
        account.add_dram_access(0.75)
        breakdown = account.breakdown()
        assert breakdown.memory_total() == pytest.approx(4.5)
        assert sum(breakdown.by_level.values()) == pytest.approx(4.5)
        assert sum(breakdown.by_component.values()) == pytest.approx(4.5)
        assert breakdown.by_level["l1"] == pytest.approx(1.5)

    def test_system_total_includes_cores_and_network(self):
        account = EnergyAccount()
        account.add_dynamic("l1d", 1.0)
        account.add_core(2.0)
        account.add_network(0.5)
        assert account.system_total() == pytest.approx(3.5)
        assert account.memory_total() == pytest.approx(1.0)

    def test_negative_contribution_rejected(self):
        account = EnergyAccount()
        with pytest.raises(ValueError):
            account.add_dynamic("l1d", -1.0)
        with pytest.raises(ValueError):
            account.add_core(-1.0)

    def test_unknown_component_rejected(self):
        account = EnergyAccount()
        with pytest.raises(ValueError):
            account.add_memory("l1d", "magic", 1.0)

    def test_merge(self):
        left = EnergyAccount()
        left.add_dynamic("l1d", 1.0)
        right = EnergyAccount()
        right.add_dynamic("l1d", 2.0)
        right.add_core(1.0)
        left.merge(right)
        assert left.memory_total() == pytest.approx(3.0)
        assert left.system_total() == pytest.approx(4.0)

    def test_normalise(self):
        baseline = EnergyAccount()
        baseline.add_leakage("l3", 8.0)
        baseline.add_dynamic("l1d", 2.0)
        baseline.add_core(10.0)
        subject = EnergyAccount()
        subject.add_leakage("l3", 2.0)
        subject.add_dynamic("l1d", 2.0)
        subject.add_core(10.0)
        ratios = normalise(subject.breakdown(), baseline.breakdown())
        assert ratios["memory"] == pytest.approx(0.4)
        assert ratios["level:l3"] == pytest.approx(0.2)
        assert ratios["system"] == pytest.approx(0.7)


class TestBreakdownDegenerateCases:
    def test_empty_breakdown_fractions_are_zero_not_nan(self):
        empty = EnergyBreakdown()
        assert empty.memory_total() == 0.0
        assert empty.system_total() == 0.0
        for level in ("l1", "l2", "l3", "dram"):
            assert empty.level_fraction(level) == 0.0
        for component in ("dynamic", "leakage", "refresh", "dram"):
            assert empty.component_fraction(component) == 0.0

    def test_fraction_of_absent_key_is_zero(self):
        breakdown = EnergyBreakdown(
            by_level={"l1": 3.0}, by_component={"dynamic": 3.0}
        )
        assert breakdown.level_fraction("l3") == 0.0
        assert breakdown.component_fraction("refresh") == 0.0
        assert breakdown.level_fraction("l1") == pytest.approx(1.0)
        assert breakdown.component_fraction("dynamic") == pytest.approx(1.0)

    def test_fractions_sum_to_one_when_populated(self):
        breakdown = EnergyBreakdown(
            by_level={"l1": 1.0, "l2": 2.0, "l3": 3.0, "dram": 4.0}
        )
        total = sum(
            breakdown.level_fraction(level) for level in ("l1", "l2", "l3", "dram")
        )
        assert total == pytest.approx(1.0)

    def test_normalise_rejects_empty_baseline(self):
        subject = EnergyBreakdown(by_level={"l1": 1.0})
        with pytest.raises(ValueError, match="must be positive"):
            normalise(subject, EnergyBreakdown())

    def test_normalise_rejects_memory_free_baseline(self):
        # A baseline with core energy but no memory energy cannot anchor
        # the Fig. 6.1/6.2 memory fractions.
        baseline = EnergyBreakdown(system={"core": 5.0})
        subject = EnergyBreakdown(by_level={"l1": 1.0})
        with pytest.raises(ValueError, match="must be positive"):
            normalise(subject, baseline)

    def test_normalise_of_empty_subject_is_all_zero(self):
        baseline = EnergyBreakdown(
            by_level={"l1": 2.0}, by_component={"dynamic": 2.0}, system={"core": 1.0}
        )
        ratios = normalise(EnergyBreakdown(), baseline)
        assert ratios["memory"] == 0.0
        assert ratios["system"] == 0.0
        assert all(value == 0.0 for value in ratios.values())


class TestSystemEnergyModel:
    def activity(self, **counts) -> ActivitySummary:
        counters = Counter(counts)
        return ActivitySummary(
            counters=counters, execution_cycles=10_000, busy_core_cycles=80_000
        )

    def test_sram_model_has_no_refresh_energy(self):
        arch = paper_architecture()
        model = SystemEnergyModel(arch, CellTechnology.SRAM)
        account = model.account_for(self.activity(l1d_reads=1000, l3_reads=10))
        assert account.component_total("refresh") == 0.0
        assert account.component_total("dynamic") > 0.0
        assert account.component_total("leakage") > 0.0

    def test_sram_model_rejects_refresh_counts(self):
        arch = paper_architecture()
        model = SystemEnergyModel(arch, CellTechnology.SRAM)
        with pytest.raises(ValueError):
            model.account_for(self.activity(l3_refreshes=5))

    def test_edram_leakage_is_quarter_of_sram(self):
        arch = paper_architecture()
        activity = self.activity(l1d_reads=100)
        sram = SystemEnergyModel(arch, CellTechnology.SRAM).account_for(activity)
        edram = SystemEnergyModel(arch, CellTechnology.EDRAM).account_for(activity)
        assert edram.component_total("leakage") == pytest.approx(
            sram.component_total("leakage") * EDRAM_LEAKAGE_RATIO
        )

    def test_refresh_energy_counts(self):
        arch = paper_architecture()
        model = SystemEnergyModel(arch, CellTechnology.EDRAM)
        account = model.account_for(self.activity(l3_refreshes=1000))
        expected = 1000 * model.tables.cache("l3").refresh_energy_nj * 1e-9
        assert account.component_total("refresh") == pytest.approx(expected)

    def test_dram_energy_counts(self):
        arch = paper_architecture()
        model = SystemEnergyModel(arch, CellTechnology.SRAM)
        account = model.account_for(self.activity(dram_accesses=500))
        expected = 500 * model.tables.dram_access_energy_nj * 1e-9
        assert account.component_total("dram") == pytest.approx(expected)

    def test_network_energy_counts(self):
        arch = paper_architecture()
        model = SystemEnergyModel(arch, CellTechnology.SRAM)
        account = model.account_for(
            self.activity(network_router_hops=100, network_link_hops=100)
        )
        assert account.breakdown().system["network"] > 0.0

    def test_longer_execution_means_more_leakage(self):
        arch = paper_architecture()
        model = SystemEnergyModel(arch, CellTechnology.SRAM)
        short = model.account_for(
            ActivitySummary(Counter(), execution_cycles=1000, busy_core_cycles=0)
        )
        long = model.account_for(
            ActivitySummary(Counter(), execution_cycles=2000, busy_core_cycles=0)
        )
        assert long.component_total("leakage") == pytest.approx(
            2 * short.component_total("leakage")
        )
