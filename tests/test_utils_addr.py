"""Unit and property tests for address arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.addr import (
    block_address,
    block_offset,
    interleaved_bank,
    is_power_of_two,
    log2_int,
    set_index,
    tag_bits,
)


def test_is_power_of_two():
    assert is_power_of_two(1)
    assert is_power_of_two(64)
    assert not is_power_of_two(0)
    assert not is_power_of_two(-4)
    assert not is_power_of_two(48)


def test_log2_int():
    assert log2_int(1) == 0
    assert log2_int(64) == 6
    with pytest.raises(ValueError):
        log2_int(3)


def test_block_address_and_offset():
    assert block_address(0x1234, 64) == 0x1200
    assert block_offset(0x1234, 64) == 0x34


def test_interleaved_bank_spreads_consecutive_blocks():
    banks = [interleaved_bank(block * 64, 64, 16) for block in range(32)]
    assert banks[:16] == list(range(16))
    assert banks[16:] == list(range(16))


@given(address=st.integers(min_value=0, max_value=2**48), block=st.sampled_from([32, 64, 128]))
def test_block_decomposition_roundtrip(address, block):
    assert block_address(address, block) + block_offset(address, block) == address
    assert block_address(address, block) % block == 0


@given(
    address=st.integers(min_value=0, max_value=2**48),
    block=st.sampled_from([64]),
    sets=st.sampled_from([16, 64, 256]),
)
def test_set_and_tag_identify_block(address, block, sets):
    """Two addresses map to the same (set, tag) iff they share a block."""
    same_block = block_address(address, block) + (address % block)
    assert set_index(address, block, sets) == set_index(same_block, block, sets)
    assert tag_bits(address, block, sets) == tag_bits(same_block, block, sets)
    other = address + block
    assert (
        set_index(other, block, sets) != set_index(address, block, sets)
        or tag_bits(other, block, sets) != tag_bits(address, block, sets)
    )


@given(address=st.integers(min_value=0, max_value=2**48))
def test_interleaved_bank_in_range(address):
    assert 0 <= interleaved_bank(address, 64, 16) < 16
