"""Tests for the parameter sweep, class averaging and figure/table generation."""

from __future__ import annotations

import json

import pytest

from repro.config.parameters import DataPolicySpec, TimingPolicyKind
from repro.config.presets import scaled_architecture
from repro.core.classes import average_by_class, class_members, class_of
from repro.core.results import average_results
from repro.core.sweep import (
    PolicyPoint,
    default_policy_points,
    run_sweep,
)
from repro.experiments.figures import (
    figure_6_1,
    figure_6_2,
    figure_6_3,
    figure_6_4,
    render_figure,
)
from repro.experiments.runner import ExperimentRunner, ExperimentScale, headline_summary
from repro.experiments.tables import (
    application_binning_table,
    applications_table,
    architecture_table,
    cell_comparison_table,
    policy_taxonomy_table,
    render_table,
    sweep_table,
)
from repro.workloads.suite import build_suite

#: A deliberately small sweep so the whole module runs in tens of seconds.
SMALL_POINTS = [
    PolicyPoint(50.0, TimingPolicyKind.PERIODIC, DataPolicySpec.all_lines()),
    PolicyPoint(50.0, TimingPolicyKind.REFRINT, DataPolicySpec.valid()),
    PolicyPoint(50.0, TimingPolicyKind.REFRINT, DataPolicySpec.writeback(32, 32)),
]


@pytest.fixture(scope="module")
def small_sweep():
    arch = scaled_architecture()
    workloads = build_suite(arch, length_scale=0.06, names=["fft", "blackscholes"])
    return run_sweep(workloads, architecture=arch, points=SMALL_POINTS)


class TestPolicyPoints:
    def test_default_grid_is_table_5_4(self):
        points = default_policy_points()
        assert len(points) == 42
        labels = {point.label for point in points}
        assert "50us/P.all" in labels
        assert "200us/R.WB(32,32)" in labels

    def test_point_labels(self):
        point = PolicyPoint(50.0, TimingPolicyKind.REFRINT, DataPolicySpec.writeback(4, 4))
        assert point.policy_label == "R.WB(4,4)"
        assert point.label == "50us/R.WB(4,4)"

    def test_point_materialises_config(self):
        arch = scaled_architecture()
        point = PolicyPoint(100.0, TimingPolicyKind.PERIODIC, DataPolicySpec.valid())
        config = point.simulation_config(arch)
        assert config.is_edram
        assert config.refresh.timing_policy is TimingPolicyKind.PERIODIC

    def test_paper_architecture_uses_real_retention(self):
        from repro.config.presets import paper_architecture

        point = PolicyPoint(50.0, TimingPolicyKind.REFRINT, DataPolicySpec.valid())
        refresh = point.refresh_config(paper_architecture())
        assert refresh.retention_cycles == 50_000


class TestSweep:
    def test_sweep_contains_all_points_and_baselines(self, small_sweep):
        assert set(small_sweep.applications) == {"fft", "blackscholes"}
        for name in small_sweep.applications:
            assert small_sweep.baseline(name).label == "SRAM"
            for point in SMALL_POINTS:
                assert small_sweep.result(name, point).label == point.policy_label

    def test_normalised_metrics_are_sensible(self, small_sweep):
        for point in SMALL_POINTS:
            memory = small_sweep.normalised_memory_energy(point)
            time = small_sweep.normalised_execution_time(point)
            for name in small_sweep.applications:
                assert 0.0 < memory[name] < 1.0
                assert 0.8 < time[name] < 3.0

    def test_retention_helpers(self, small_sweep):
        assert small_sweep.retention_times() == [50.0]
        assert len(small_sweep.points_for_retention(50.0)) == 3

    def test_to_dict_is_json_serialisable(self, small_sweep):
        text = json.dumps(small_sweep.to_dict())
        assert "baselines" in json.loads(text)


class TestClassAveraging:
    def test_class_lookup(self):
        assert class_of("fft") == 1
        assert "barnes" in class_members(2)
        with pytest.raises(KeyError):
            class_members(4)

    def test_average_by_class(self):
        per_app = {"fft": 0.4, "fmm": 0.6, "barnes": 1.0, "blackscholes": 2.0}
        averages = average_by_class(per_app)
        assert averages["class1"] == pytest.approx(0.5)
        assert averages["class2"] == pytest.approx(1.0)
        assert averages["class3"] == pytest.approx(2.0)
        assert averages["all"] == pytest.approx(1.0)

    def test_average_results_helper(self):
        assert average_results([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            average_results([])


class TestTables:
    def test_policy_taxonomy_lists_all_policies(self):
        table = policy_taxonomy_table()
        text = render_table(table)
        for label in ("Periodic", "Refrint", "All", "Valid", "Dirty", "WB(n,m)"):
            assert label in text

    def test_architecture_table_matches_paper(self):
        text = render_table(architecture_table())
        assert "16 core CMP" in text
        assert "1024 KB per bank, 16 banks" in text
        assert "Directory MESI protocol at L3" in text

    def test_cell_comparison_table(self):
        text = render_table(cell_comparison_table())
        assert "0.25" in text
        assert "access energy" in text

    def test_applications_table_lists_all_eleven(self):
        table = applications_table()
        assert len(table.rows) == 11
        text = render_table(table)
        assert "SPLASH-2" in text and "PARSEC" in text

    def test_sweep_table_counts_42(self):
        text = render_table(sweep_table())
        assert "42" in text

    def test_binning_table_matches_classes(self):
        text = render_table(application_binning_table())
        assert "Class 1" in text and "fluidanimate" in text


class TestFigures:
    def test_figure_6_1_stacks_levels(self, small_sweep):
        figure = figure_6_1(small_sweep)
        assert [series.name for series in figure.series] == ["L1", "L2", "L3", "DRAM"]
        assert len(figure.bar_labels) == len(SMALL_POINTS)
        totals = figure.totals()
        assert all(0.0 < total < 1.0 for total in totals)

    def test_figure_6_2_stacks_components(self, small_sweep):
        figure = figure_6_2(small_sweep)
        assert [series.name for series in figure.series] == [
            "Dynamic", "Leakage", "Refresh", "Dram",
        ]
        # Figures 6.1 and 6.2 are two views of the same totals.
        assert figure.totals() == pytest.approx(figure_6_1(small_sweep).totals())

    def test_figure_6_3_and_6_4_single_series(self, small_sweep):
        energy = figure_6_3(small_sweep)
        time = figure_6_4(small_sweep)
        assert len(energy.series) == 1 and len(time.series) == 1
        assert all(0.0 < v < 1.0 for v in energy.series[0].values)
        assert all(v > 0.8 for v in time.series[0].values)

    def test_figure_class_filter(self, small_sweep):
        figure = figure_6_2(small_sweep, applications=["fft"])
        assert "fft" in figure.title or "class" in figure.title

    def test_render_figure_contains_all_bars(self, small_sweep):
        text = render_figure(figure_6_1(small_sweep))
        for point in SMALL_POINTS:
            assert point.label in text

    def test_unknown_application_filter_rejected(self, small_sweep):
        with pytest.raises(KeyError):
            figure_6_1(small_sweep, applications=["doom"])


class TestRunnerAndHeadline:
    def test_headline_summary_orders_policies(self, small_sweep):
        summary = headline_summary(small_sweep, retention_us=50.0)
        assert 0.0 < summary["refrint_wb32_memory"] < summary["periodic_all_memory"] < 1.0
        assert summary["refrint_wb32_time"] < summary["periodic_all_time"]

    def test_headline_requires_needed_points(self, small_sweep):
        with pytest.raises(ValueError):
            headline_summary(small_sweep, retention_us=200.0)

    def test_experiment_scale_from_environment(self, monkeypatch):
        monkeypatch.setenv("REFRINT_APPS", "fft,lu")
        monkeypatch.setenv("REFRINT_LENGTH_SCALE", "0.25")
        monkeypatch.setenv("REFRINT_RETENTIONS", "50")
        scale = ExperimentScale.from_environment()
        assert scale.applications == ("fft", "lu")
        assert scale.length_scale == 0.25
        assert scale.retention_times_us == (50.0,)

    def test_experiment_scale_full(self):
        scale = ExperimentScale.full()
        assert len(scale.applications) == 11

    def test_runner_caches_summary(self, tmp_path):
        scale = ExperimentScale(
            applications=("blackscholes",),
            length_scale=0.05,
            retention_times_us=(50.0,),
            include_all_data_policies=False,
        )
        cache = tmp_path / "sweep.json"
        runner = ExperimentRunner(scale=scale, cache_path=cache)
        sweep = runner.sweep()
        assert cache.exists()
        saved = json.loads(cache.read_text())
        assert "baselines" in saved
        # Re-requesting the sweep does not re-simulate (same object back).
        assert runner.sweep() is sweep
