"""Property-based tests of hierarchy-wide invariants.

These exercise the protocol and the refresh controllers with randomly
generated operation sequences and assert the invariants the design must
never violate: inclusion, directory consistency, no decayed data served,
and conservation of the dirty-data accounting.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.parameters import (
    DataPolicySpec,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.hierarchy.hierarchy import CacheHierarchy
from repro.mem.line import MESIState
from repro.refresh.controller import build_refresh_controllers
from repro.utils.events import EventQueue
from tests.conftest import make_refresh_config, make_tiny_architecture

#: Small pool of block-aligned addresses so operations collide frequently.
addresses = st.integers(min_value=0, max_value=255).map(lambda n: 0x4000 + n * 64)
cores = st.integers(min_value=0, max_value=15)
operations = st.tuples(
    st.sampled_from(["read", "write", "ifetch"]), cores, addresses
)


def directory_is_consistent(hierarchy: CacheHierarchy) -> bool:
    """Every private copy is recorded in the home directory entry."""
    for caches in hierarchy.cores:
        for set_idx, line in caches.l2.valid_lines():
            block = caches.l2.block_address_of(set_idx, line)
            bank = hierarchy.protocol.home_bank(block)
            l3_line = bank.cache.probe(block)
            if l3_line is None or not l3_line.valid:
                return False
            holders = set(l3_line.sharers)
            if l3_line.owner is not None:
                holders.add(l3_line.owner)
            if caches.core_id not in holders:
                return False
            if line.state is MESIState.MODIFIED and l3_line.owner != caches.core_id:
                return False
    return True


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(operations, min_size=1, max_size=120))
def test_property_inclusion_and_directory_consistency_sram(ops):
    hierarchy = CacheHierarchy(make_tiny_architecture())
    cycle = 0
    for kind, core, address in ops:
        if kind == "read":
            hierarchy.read(core, address, cycle)
        elif kind == "write":
            hierarchy.write(core, address, cycle)
        else:
            hierarchy.instruction_fetch(core, address, cycle)
        cycle += 10
    assert hierarchy.check_inclusion() == []
    assert directory_is_consistent(hierarchy)


@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(operations, min_size=1, max_size=80),
    timing=st.sampled_from([TimingPolicyKind.PERIODIC, TimingPolicyKind.REFRINT]),
    data=st.sampled_from(
        [
            DataPolicySpec.all_lines(),
            DataPolicySpec.valid(),
            DataPolicySpec.dirty(),
            DataPolicySpec.writeback(2, 2),
        ]
    ),
)
def test_property_invariants_hold_under_refresh_policies(ops, timing, data):
    """Inclusion, directory consistency and no decay under any policy mix."""
    architecture = make_tiny_architecture()
    refresh = make_refresh_config(
        architecture, timing=timing, data=data, retention_cycles=500
    )
    config = SimulationConfig.edram(refresh, architecture)
    hierarchy = CacheHierarchy(architecture)
    events = EventQueue()
    for controller in build_refresh_controllers(hierarchy, config, events):
        controller.start(0)
    cycle = 0
    for kind, core, address in ops:
        events.run(until=cycle)
        if kind == "read":
            hierarchy.read(core, address, cycle)
        elif kind == "write":
            hierarchy.write(core, address, cycle)
        else:
            hierarchy.instruction_fetch(core, address, cycle)
        cycle += 25
    events.run(until=cycle + 2000)
    assert hierarchy.check_inclusion() == []
    assert directory_is_consistent(hierarchy)
    assert hierarchy.counters.get("decay_violations") == 0


@settings(max_examples=15, deadline=None)
@given(ops=st.lists(operations, min_size=1, max_size=80))
def test_property_flush_leaves_no_dirty_data(ops):
    hierarchy = CacheHierarchy(make_tiny_architecture())
    cycle = 0
    for kind, core, address in ops:
        if kind == "write":
            hierarchy.write(core, address, cycle)
        else:
            hierarchy.read(core, address, cycle)
        cycle += 10
    hierarchy.flush_dirty(cycle)
    dirty = hierarchy.dirty_lines()
    assert dirty["l2"] == 0
    assert dirty["l3"] == 0


@settings(max_examples=10, deadline=None)
@given(ops=st.lists(operations, min_size=5, max_size=60))
def test_property_counters_are_internally_consistent(ops):
    """Hits + misses equals the number of lookups issued per level."""
    hierarchy = CacheHierarchy(make_tiny_architecture())
    reads = writes = 0
    cycle = 0
    for kind, core, address in ops:
        if kind == "write":
            hierarchy.write(core, address, cycle)
            writes += 1
        elif kind == "read":
            hierarchy.read(core, address, cycle)
            reads += 1
        else:
            hierarchy.instruction_fetch(core, address, cycle)
        cycle += 10
    counters = hierarchy.counters
    data_lookups = counters["l1d_hits"] + counters["l1d_misses"]
    assert data_lookups == reads + writes
    assert counters["dram_reads"] <= counters["l2_misses"]
