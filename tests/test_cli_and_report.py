"""Tests for the command-line interface and the Markdown report generator."""

from __future__ import annotations

import argparse
import io
import json

import pytest

from repro.cli import (
    main,
    parse_applications,
    parse_data_policy,
    parse_timing_policy,
)
from repro.config.parameters import DataPolicyKind, TimingPolicyKind
from repro.config.presets import scaled_architecture
from repro.core.sweep import PolicyPoint, run_sweep
from repro.config.parameters import DataPolicySpec
from repro.experiments.report import sweep_report
from repro.workloads.suite import build_suite


class TestArgumentParsing:
    def test_parse_data_policy(self):
        assert parse_data_policy("valid").kind is DataPolicyKind.VALID
        assert parse_data_policy("all").kind is DataPolicyKind.ALL
        assert parse_data_policy("dirty").kind is DataPolicyKind.DIRTY
        wb = parse_data_policy("WB(16,8)")
        assert wb.kind is DataPolicyKind.WRITEBACK
        assert (wb.dirty_refreshes, wb.clean_refreshes) == (16, 8)
        with pytest.raises(argparse.ArgumentTypeError):
            parse_data_policy("smart")

    def test_parse_timing_policy(self):
        assert parse_timing_policy("periodic") is TimingPolicyKind.PERIODIC
        assert parse_timing_policy("R") is TimingPolicyKind.REFRINT
        with pytest.raises(argparse.ArgumentTypeError):
            parse_timing_policy("lazy")

    def test_parse_applications(self):
        assert parse_applications("fft, lu") == ["fft", "lu"]
        assert len(parse_applications("all")) == 11
        with pytest.raises(argparse.ArgumentTypeError):
            parse_applications("fft,doom")


class TestCommands:
    def test_tables_command(self):
        out = io.StringIO()
        assert main(["tables"], out=out) == 0
        text = out.getvalue()
        assert "Table 3.1" in text
        assert "Table 6.1" in text
        assert "WB(n,m)" in text

    def test_simulate_command(self):
        out = io.StringIO()
        code = main(
            [
                "simulate", "--application", "blackscholes",
                "--timing", "refrint", "--data", "valid",
                "--retention-us", "50", "--length-scale", "0.05",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "memory energy vs SRAM" in text
        assert "DRAM accesses" in text

    def test_sweep_command_writes_outputs(self, tmp_path):
        out = io.StringIO()
        json_path = tmp_path / "sweep.json"
        report_path = tmp_path / "sweep.md"
        code = main(
            [
                "sweep", "--applications", "blackscholes",
                "--length-scale", "0.05", "--retentions", "50",
                "--json", str(json_path), "--report", str(report_path),
            ],
            out=out,
        )
        assert code == 0
        assert json_path.exists() and report_path.exists()
        data = json.loads(json_path.read_text())
        assert "baselines" in data and "results" in data
        report = report_path.read_text()
        assert "Figure 6.1" in report and "Figure 6.4" in report
        assert "Headline comparison" in report


    @pytest.fixture(scope="class")
    def cli_store(self, tmp_path_factory):
        """One stored CLI campaign, shared by the resume and validate tests."""
        store = tmp_path_factory.mktemp("cli") / "store"
        argv = [
            "sweep", "--applications", "blackscholes",
            "--length-scale", "0.05", "--retentions", "50",
            "--store", str(store),
        ]
        out = io.StringIO()
        assert main(argv, out=out) == 0
        return store, argv, out.getvalue()

    def test_sweep_command_store_and_resume(self, cli_store):
        store, argv, first = cli_store
        assert "simulated" in first and store.exists()
        out = io.StringIO()
        assert main(argv + ["--resume"], out=out) == 0
        second = out.getvalue()
        assert "0 simulated" in second
        assert "(cached)" in second

    def test_validate_command_passes_on_clean_store(self, cli_store, tmp_path):
        store, _argv, _ = cli_store
        json_path = tmp_path / "validation.json"
        out = io.StringIO()
        code = main(
            [
                "validate", "--store", str(store),
                "--applications", "blackscholes",
                "--length-scale", "0.05", "--retentions", "50",
                "--json", str(json_path),
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "Counter validation" in text
        assert "0 invariant violations" in text
        data = json.loads(json_path.read_text())
        assert data["ok"] is True
        assert data["summary"]["violations"] == 0
        assert data["summary"]["missing"] == 0
        assert data["summary"]["runs"] == data["summary"]["cells_scanned"] > 0

    def test_validate_command_strict_missing(self, cli_store, tmp_path):
        store, _argv, _ = cli_store
        # Ask for an application the store does not hold: every cell of
        # that grid slice is missing.  Lenient mode reports but passes ...
        argv = [
            "validate", "--store", str(store),
            "--applications", "blackscholes,fft",
            "--length-scale", "0.05", "--retentions", "50",
        ]
        out = io.StringIO()
        assert main(argv, out=out) == 0
        assert "missing cells" in out.getvalue()
        # ... strict mode gates on completeness.
        assert main(argv + ["--strict-missing"], out=io.StringIO()) == 1

    def test_validate_command_rejects_missing_directory(self, tmp_path, capsys):
        code = main(
            ["validate", "--store", str(tmp_path / "nope")], out=io.StringIO()
        )
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_sweep_resume_requires_store(self, capsys):
        assert main(["sweep", "--resume"], out=io.StringIO()) == 2
        # Like argparse errors, validation errors land on stderr.
        assert "--store" in capsys.readouterr().err


class TestReport:
    @pytest.fixture(scope="class")
    def tiny_sweep(self):
        arch = scaled_architecture()
        workloads = build_suite(arch, length_scale=0.05, names=["fft"])
        points = [
            PolicyPoint(50.0, TimingPolicyKind.PERIODIC, DataPolicySpec.all_lines()),
            PolicyPoint(50.0, TimingPolicyKind.REFRINT, DataPolicySpec.writeback(32, 32)),
        ]
        return run_sweep(workloads, architecture=arch, points=points)

    def test_report_contains_all_figures_and_applications(self, tiny_sweep):
        report = sweep_report(tiny_sweep, title="Test report")
        assert report.startswith("# Test report")
        for marker in ("Figure 6.1", "Figure 6.2", "Figure 6.3", "Figure 6.4"):
            assert marker in report
        assert "| fft |" in report
        assert "Headline comparison" in report
        assert "Counter validation" in report
        assert "All invariants held" in report

    def test_report_is_valid_markdown_tables(self, tiny_sweep):
        report = sweep_report(tiny_sweep)
        table_lines = [line for line in report.splitlines() if line.startswith("|")]
        assert table_lines
        for line in table_lines:
            assert line.count("|") >= 3
